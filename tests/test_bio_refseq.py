"""Tests for the synthetic RefSeq database."""

from __future__ import annotations

import pytest

from repro.bio.alphabet import is_amino_acid_sequence
from repro.bio.fasta import parse_fasta
from repro.bio.refseq import RefSeqDatabase, sample_of_size


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            RefSeqDatabase(n_records=0)
        with pytest.raises(ValueError):
            RefSeqDatabase(n_releases=0)
        with pytest.raises(ValueError):
            RefSeqDatabase(revision_fraction=1.5)

    def test_deterministic_from_seed(self):
        a = RefSeqDatabase(seed=3, n_records=10)
        b = RefSeqDatabase(seed=3, n_records=10)
        for acc in a.accessions():
            assert a.fetch(acc).sequence == b.fetch(acc).sequence

    def test_different_seeds_differ(self):
        a = RefSeqDatabase(seed=3, n_records=10)
        b = RefSeqDatabase(seed=4, n_records=10)
        assert any(
            a.fetch(acc).sequence != b.fetch(acc).sequence for acc in a.accessions()
        )

    def test_sequences_are_valid_proteins(self, small_db):
        for acc in small_db.accessions()[:10]:
            assert is_amino_acid_sequence(small_db.fetch(acc).sequence)

    def test_sequences_have_markov_structure(self, small_db):
        """Hydrophobicity clustering: same-class successors above chance."""
        hydro = set("AILMFWVC")
        same = total = 0
        for acc in small_db.accessions():
            seq = small_db.fetch(acc).sequence
            for a, b in zip(seq, seq[1:]):
                total += 1
                if (a in hydro) == (b in hydro):
                    same += 1
        # Unbiased expectation ~52%; the chain's bias pushes well above.
        assert same / total > 0.6


class TestVersioning:
    def test_same_release_identical_bytes(self, small_db):
        """UC1 premise: downloading the same data twice gives identical data."""
        acc = small_db.accessions()[0]
        assert (
            small_db.download_fasta([acc], release=1)
            == small_db.download_fasta([acc], release=1)
        )

    def test_some_records_revised_across_releases(self, small_db):
        revised = small_db.revised_between(1, small_db.n_releases)
        assert revised, "expected at least one revision across releases"

    def test_revision_bumps_version(self, small_db):
        revised = small_db.revised_between(1, small_db.n_releases)
        acc = revised[0]
        assert small_db.fetch(acc, 1).version < small_db.fetch(
            acc, small_db.n_releases
        ).version

    def test_unrevised_records_stable(self, small_db):
        revised = set(small_db.revised_between(1, small_db.n_releases))
        stable = [a for a in small_db.accessions() if a not in revised]
        assert stable
        for acc in stable[:5]:
            assert (
                small_db.fetch(acc, 1).sequence
                == small_db.fetch(acc, small_db.n_releases).sequence
            )

    def test_release_out_of_range(self, small_db):
        with pytest.raises(ValueError):
            small_db.fetch(small_db.accessions()[0], release=99)

    def test_unknown_accession(self, small_db):
        with pytest.raises(KeyError):
            small_db.fetch("RP_999999")


class TestQueries:
    def test_query_organism_filters(self, small_db):
        organisms = {small_db.fetch(a).organism for a in small_db.accessions()}
        org = sorted(organisms)[0]
        records = small_db.query_organism(org)
        assert records
        assert all(r.organism == org for r in records)

    def test_download_fasta_parses_back(self, small_db):
        accs = small_db.accessions()[:3]
        records = parse_fasta(small_db.download_fasta(accs))
        assert len(records) == 3
        assert records[0].accession.startswith(accs[0])


class TestSampleOfSize:
    def test_reaches_target(self, small_db):
        accs, text = sample_of_size(small_db, 1000)
        assert len(text) >= 1000
        assert accs

    def test_deterministic(self, small_db):
        assert sample_of_size(small_db, 800) == sample_of_size(small_db, 800)

    def test_exhaustion_raises(self, small_db):
        with pytest.raises(ValueError, match="exhausted"):
            sample_of_size(small_db, 10_000_000)

    def test_invalid_target(self, small_db):
        with pytest.raises(ValueError):
            sample_of_size(small_db, 0)
