"""A4 — distributed PReServ scalability (§7 future work, implemented).

Parallel submission into several store instances: throughput should scale
near-linearly with the instance count while submitters keep every instance
busy — the property motivating the paper's distributed design.  Also
benchmarks consolidation of a distributed corpus into one store.
"""

from __future__ import annotations

import pytest

from repro.figures.distributed import run_scaling, scaling_table, simulate_submission
from repro.figures.microbench import pregenerated_record
from repro.store.backends import MemoryBackend
from repro.store.distributed import StoreRouter, consolidate


@pytest.fixture(scope="module")
def points():
    return run_scaling(store_counts=(1, 2, 4, 8), n_submitters=8, n_records=600)


def test_bench_parallel_submission_scaling(benchmark, points, report):
    benchmark.pedantic(
        lambda: simulate_submission(4, n_submitters=8, n_records=600),
        rounds=5,
        iterations=1,
    )
    report("A4: distributed PReServ — parallel submission scaling", scaling_table(points))

    by_stores = {p.stores: p for p in points}
    # Throughput grows monotonically with instances.
    rates = [by_stores[n].records_per_second for n in (1, 2, 4, 8)]
    assert rates == sorted(rates)
    # Near-linear up to 4 instances with 8 submitters (hash skew allows slack).
    assert by_stores[2].records_per_second > 1.6 * by_stores[1].records_per_second
    assert by_stores[4].records_per_second > 2.6 * by_stores[1].records_per_second
    # A single instance is exactly the serial 18 ms pipeline.
    assert by_stores[1].makespan_s == pytest.approx(600 * 0.018, rel=0.01)
    for p in points:
        benchmark.extra_info[f"rps_{p.stores}_stores"] = round(p.records_per_second)


def test_bench_consolidation(benchmark):
    """Wall-clock cost of merging a 3-store corpus into one."""

    def build_router():
        router = StoreRouter({f"s{i}": MemoryBackend() for i in range(3)})
        for i in range(300):
            router.put(pregenerated_record(i).assertion)
        return router

    def merge():
        router = build_router()
        target = MemoryBackend()
        return consolidate(router, target)

    moved_p, moved_g = benchmark.pedantic(merge, rounds=5, iterations=1)
    assert moved_p == 300
    assert moved_g == 0
