"""Query-side caching for the PReServ read path.

PReServ's query port is dominated by *repeated* traffic: provenance
navigators re-issue the same ``prep-query`` documents (list the interaction
records, fetch a session's members, poll the counts) far more often than the
store's contents change.  This module caches two things:

* **query plans** — a ``prep-query`` body parsed once into a
  :class:`QueryPlan` (resolved handler + canonical parameters + result-cache
  key), keyed by the body's compact serialized form, so repeated identical
  queries skip parsing and dispatch entirely;
* **result documents** — the fully built (and frozen, hence
  serialization-cached — see :meth:`repro.soa.xmldoc.XmlElement.freeze`)
  ``prep-result`` response for a plan, per backend.

**Invalidation contract.**  Correctness rests on the store's *write
generation*: every successful ``put``/``put_many`` bumps
:attr:`repro.store.interface.ProvenanceStoreInterface.generation` by at
least one.  A cached result is stored together with the generation observed
when it was built and is served only while the backend reports the *same*
generation; any write — single put, bulk ingest, broadcast group assertion,
replayed segment — moves the counter and silently expires every result for
that backend.  Plans carry no store state, so they never need invalidating.
A backend that does not expose ``generation`` is never result-cached (plans
still are).  Routers generalise the contract to a *generation vector*: a
federated result is valid iff no member store advanced (see
:meth:`repro.store.distributed.StoreRouter.generations`).  Sharded backends
narrow it the other way: key-scoped plans carry the interaction scope they
depend on (:attr:`QueryPlan.scope_key`), and a backend exposing
``generation_token(scope)`` may answer with the owning *shard's* write
generation, so ingest into other shards leaves scoped results warm instead
of expiring the whole store's cache.

Two aliasing rules round out the contract.  Submitted assertions are
*snapshots*: mutating an assertion's ``content`` in place after ``put``
already diverges from what the persistent backends durably wrote (they
serialized at put time), so the cache — which likewise captures put-time
state — does not attempt to detect it.  Served result documents are
*frozen by contract*: ``freeze()`` makes structural extension raise, but
Python cannot cheaply police direct ``attrs``/``children`` edits, so
callers must treat responses as read-only.

Both caches are bounded LRU maps; result caches are held per backend in a
:class:`weakref.WeakKeyDictionary` so dropping a backend drops its cache.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Hashable, Optional, Tuple, TypeVar

from repro.core.prep import PrepQuery
from repro.soa.xmldoc import XmlElement

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LruMap(Generic[K, V]):
    """A small bounded mapping with least-recently-used eviction."""

    def __init__(self, max_entries: int):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[K, V]" = OrderedDict()

    def get(self, key: K) -> Optional[V]:
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class QueryPlan:
    """A parsed, dispatch-ready query: what re-parsing would recompute."""

    query: PrepQuery
    handler: Callable[..., object]
    #: canonical identity of the query (type + sorted params) — the result
    #: cache key, shared by every body that parses to the same query.
    result_key: Tuple[str, Tuple[Tuple[str, str], ...]]
    #: the interaction scope this query depends on (None = whole store);
    #: sharded backends turn it into a per-shard freshness token.
    scope_key: Optional[str] = None

    @staticmethod
    def key_for(query: PrepQuery) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        return (query.query_type, tuple(sorted(query.params.items())))


@dataclass
class CacheStats:
    """Hit/miss counters, reported by benchmarks and asserted in tests."""

    plan_hits: int = 0
    plan_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    #: lookups that found an entry from an older write generation.
    result_invalidations: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
            "result_invalidations": self.result_invalidations,
        }


@dataclass
class _CachedResult:
    token: object
    response: XmlElement


def _freshness_token(backend: object, plan: QueryPlan) -> Optional[object]:
    """The invalidation token a result for ``plan`` must be stored under.

    Backends exposing :meth:`generation_token` get scope-aware tokens (a
    sharded store hands key-scoped plans the owning shard's generation, so
    writes elsewhere keep the entry warm); otherwise the store-wide
    ``generation`` counter is used.  ``None`` means the backend offers no
    invalidation signal and must never be result-cached.
    """
    getter = getattr(backend, "generation_token", None)
    if getter is not None:
        return getter(plan.scope_key)
    return getattr(backend, "generation", None)


class QueryCache:
    """Plan + result cache for one :class:`~repro.store.plugins.QueryPlugIn`.

    The plug-in may serve several backends (the translator passes the
    backend per call), so result entries live in per-backend LRU maps keyed
    weakly by the backend object.
    """

    def __init__(self, max_plans: int = 512, max_results: int = 2048):
        self.max_plans = max_plans
        self.max_results = max_results
        self._plans: LruMap[str, QueryPlan] = LruMap(max_plans)
        self._results: "weakref.WeakKeyDictionary[object, LruMap]" = (
            weakref.WeakKeyDictionary()
        )
        self.stats = CacheStats()

    # -- plans --------------------------------------------------------------
    def plan_for(
        self,
        body: XmlElement,
        build: Callable[[XmlElement], QueryPlan],
    ) -> QueryPlan:
        """The cached plan for ``body``, parsing via ``build`` on a miss."""
        key = body.to_xml_string()
        plan = self._plans.get(key)
        if plan is not None:
            self.stats.plan_hits += 1
            return plan
        self.stats.plan_misses += 1
        plan = build(body)
        self._plans.put(key, plan)
        return plan

    # -- results ------------------------------------------------------------
    def lookup_result(self, backend: object, plan: QueryPlan) -> Optional[XmlElement]:
        """The memoized response for ``plan``, iff its token is still fresh."""
        token = _freshness_token(backend, plan)
        if token is None:
            self.stats.result_misses += 1
            return None
        per_backend = self._results.get(backend)
        entry = per_backend.get(plan.result_key) if per_backend is not None else None
        if entry is not None and entry.token == token:
            self.stats.result_hits += 1
            return entry.response
        if entry is not None:
            self.stats.result_invalidations += 1
        self.stats.result_misses += 1
        return None

    def store_result(
        self, backend: object, plan: QueryPlan, response: XmlElement
    ) -> XmlElement:
        """Memoize ``response``; returns the element the caller should serve.

        The cached entry is a frozen deep copy (so its re-serialization is
        cached).  Freezing the original in place would recursively freeze
        assertion ``content`` subtrees that result documents embed *by
        reference* — store-owned state the asserter may still be extending.
        """
        token = _freshness_token(backend, plan)
        if token is None:
            return response  # no invalidation signal -> never cache results
        per_backend = self._results.get(backend)
        if per_backend is None:
            per_backend = LruMap(self.max_results)
            self._results[backend] = per_backend
        frozen = response.copy().freeze()
        per_backend.put(plan.result_key, _CachedResult(token, frozen))
        return frozen

    def clear(self) -> None:
        self._plans.clear()
        for per_backend in list(self._results.values()):
            per_backend.clear()


@dataclass
class GenerationVector:
    """A multi-store freshness token: valid iff *no* member advanced.

    Routers and federated clients cache merged results under the tuple of
    member generations; one integer-tuple comparison revalidates the whole
    federation.  ``epoch`` is the placement epoch the vector was observed
    under (0 for single stores and never-rebalanced fleets): a migration
    cutover bumps it, so every cached merge built under the old placement
    — in particular the moved slice's plans — invalidates at the flip
    even if no member generation moved.
    """

    generations: Tuple[int, ...] = field(default_factory=tuple)
    epoch: int = 0

    @classmethod
    def of(cls, stores: Dict[str, object]) -> "GenerationVector":
        return cls(
            generations=tuple(
                getattr(stores[name], "generation", -1) for name in sorted(stores)
            )
        )

    def fresh(self, other: "GenerationVector") -> bool:
        return (
            self.generations == other.generations
            and self.epoch == other.epoch
        )
