"""E3/E4 — Figure 5: execution comparison and semantic validity vs store size.

Regenerates both curves over stores of increasing size and checks the shape
criteria: both linear (r > 0.99), semantic slope ~11x script-comparison
slope, script retrieval+map ~15 ms per interaction record.

The benchmark times the real (wall-clock) use-case implementations over a
fixed store, demonstrating they are linear and performant in practice too.
"""

from __future__ import annotations

import pytest

from repro.app.experiment import Experiment, ExperimentConfig
from repro.core.client import ProvenanceQueryClient
from repro.figures.fig5 import fig5_table, run_fig5
from repro.figures.synthstore import populate_store
from repro.registry.client import RegistryClient
from repro.usecases.comparison import categorise_scripts
from repro.usecases.semantic import validate_session

#: Matches the paper's x axis, which reaches 4000 interaction records.
SIZES = (250, 500, 1000, 2000, 4000)


@pytest.fixture(scope="module")
def series():
    return run_fig5(sizes=SIZES)


@pytest.fixture(scope="module")
def populated():
    exp = Experiment(ExperimentConfig())
    spec = populate_store(exp.backend, 500, script_for=exp.script_for)
    return exp, spec


def test_bench_fig5_shape(benchmark, series, report):
    from repro.figures.fig5 import measure_point

    benchmark.pedantic(lambda: measure_point(250), rounds=5, iterations=1)
    report("E3/E4: Figure 5 — use-case query performance", fig5_table(series))

    script_fit = series.script_fit()
    semantic_fit = series.semantic_fit()
    benchmark.extra_info["script_r"] = round(script_fit.correlation, 5)
    benchmark.extra_info["semantic_r"] = round(semantic_fit.correlation, 5)
    benchmark.extra_info["slope_ratio"] = round(series.slope_ratio(), 2)

    # Paper: both plots linear with r > 0.99.
    assert script_fit.is_linear
    assert semantic_fit.is_linear
    # Paper: ~15 ms to retrieve and map one script.
    assert 0.014 <= script_fit.slope <= 0.017
    # Paper: semantic-validity slope about 11x higher.
    assert 9.0 <= series.slope_ratio() <= 12.0


def test_bench_uc1_script_comparison_real(benchmark, populated):
    """Wall-clock script categorisation over a 500-record store."""
    exp, _ = populated

    def categorise():
        return categorise_scripts(ProvenanceQueryClient(exp.bus))

    result = benchmark.pedantic(categorise, rounds=5, iterations=1)
    assert result.interactions_scanned == 500


def test_bench_uc2_semantic_validation_real(benchmark, populated):
    """Wall-clock semantic validation of one 50-record session."""
    exp, spec = populated
    store = ProvenanceQueryClient(exp.bus, client_endpoint="bench-uc2-store")
    registry = RegistryClient(exp.bus, client_endpoint="bench-uc2-registry")
    ontology = registry.get_ontology()

    def validate():
        return validate_session(store, registry, spec.sessions[0], ontology=ontology)

    report = benchmark.pedantic(validate, rounds=5, iterations=1)
    assert report.valid
