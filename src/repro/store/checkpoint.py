"""Index checkpoints: O(live-tail) recovery for the persistent backends.

Both persistent backends rebuild their in-memory :class:`StoreIndex` by
replaying their on-disk history on every open, so restart time grows with
*lifetime* writes — the one cost in the store stack that scaled with how
long the store had lived rather than how much it currently holds.  This
module is the fix: a **snapshot** is a versioned, checksummed, compressed
file capturing the store's replayable record stream ``[(sequence,
assertion), ...]`` up to a **sequence watermark**, so

    open = load newest valid snapshot + replay only the log tail
           with sequence >= watermark.

Once a snapshot is durable (and its retention window allows it — see
below), the log prefix it covers is *truncatable*: compaction can finally
drop bytes that are merely old, not just dead, and the snapshots become
the store's compressed cold storage while the append log holds only the
hot tail.

Snapshot container format (``snapshot-<watermark>.psnap``)::

    b"PSNAP1\\n"                         magic + format version
    uint32 LE                            header length
    JSON header                          {"watermark", "codec", "raw_len",
                                          "payload_len", "payload_crc",
                                          "meta": {...}}
    payload                              codec-compressed pickle stream

The payload is compressed through the :mod:`repro.compress` registry
(``"gzip"`` by default; the from-scratch ``"gz-like"``/``"bz-like"``
codecs are selectable where fidelity to the paper's algorithm families
matters more than speed) and CRC32-checked end to end, and the file is
written with the stack's established write-new → fsync → rename →
fsync-directory discipline — a crash at any point leaves either no new
snapshot or a complete one, never a torn one.

Fallback ladder (the loader's contract): the newest snapshot that passes
every check wins; a corrupt, truncated or version-mismatched snapshot is
skipped in favor of the next older one; with no usable snapshot at all
the caller falls back to a full-history replay.  Truncation composes
safely with the ladder because a backend only truncates history covered
by the *oldest retained* snapshot — every rung of the ladder can still
reach every record, either from a snapshot or from the log.

Payload pickling note: snapshots are local files the store writes for
itself, inside its own data directory, with the same trust level as the
log they summarize — the classic setting where :mod:`pickle` is
appropriate.  The container's CRC rejects corruption; it is not an
authentication boundary.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.compress import get_compressor
from repro.store.kvlog import fsync_dir, mkdir_durable

#: container magic; the trailing digit is the format version.
MAGIC = b"PSNAP1\n"

#: snapshot file name pattern (watermark-stamped, so lexicographic order
#: is watermark order and the newest snapshot is the last glob entry).
SNAPSHOT_FILE = "snapshot-{:016d}.psnap"

#: default compressor registry name for snapshot payloads.
DEFAULT_CODEC = "gzip"

#: default number of snapshots retained (and hence the truncation lag):
#: history may only be truncated below the *oldest* retained snapshot's
#: watermark, so a single rotted snapshot never loses data.
DEFAULT_RETAIN = 2

_HEADER_LEN = struct.Struct("<I")


class SnapshotError(Exception):
    """A snapshot file failed a structural, checksum or version check."""


@dataclass(frozen=True)
class Snapshot:
    """One loaded-and-verified snapshot."""

    path: Path
    watermark: int
    codec: str
    payload: bytes  # decompressed
    meta: Dict[str, object] = field(default_factory=dict)


def snapshot_dir_for(store_path: "os.PathLike[str] | str") -> Path:
    """Where a store at ``store_path`` keeps its snapshots.

    Directory layouts (sharded logs, file-system stores) get a
    ``checkpoints`` subdirectory; single-file layouts get a sibling
    ``<file>.ckpt`` directory.  Both are invisible to the stores' own
    file discovery (``log.*.kv`` / ``*.xml`` globs).
    """
    path = Path(store_path)
    if path.is_dir():
        return path / "checkpoints"
    return path.with_suffix(path.suffix + ".ckpt")


def sweep_snapshot_debris(directory: Path, sync: bool = True) -> int:
    """Remove ``*.psnap.tmp`` files a crash mid-write left behind.

    The rename never happened, so the temp file holds an unacknowledged
    partial snapshot no loader ever reads.  Returns the count swept.
    """
    swept = 0
    for tmp in directory.glob("*.psnap.tmp"):
        tmp.unlink(missing_ok=True)
        swept += 1
    if swept and sync:
        fsync_dir(directory)
    return swept


def write_snapshot(
    directory: "os.PathLike[str] | str",
    watermark: int,
    payload: bytes,
    codec: str = DEFAULT_CODEC,
    meta: Optional[Dict[str, object]] = None,
    sync: bool = True,
    retain: int = DEFAULT_RETAIN,
) -> Path:
    """Durably write one snapshot; returns its path.

    Write-new → fsync → rename → fsync-directory, like every commit in
    the store stack, then prunes snapshots beyond ``retain`` (oldest
    first) and sweeps stale temp files.  ``retain`` < 1 is rejected —
    a store must never prune its only recovery point.
    """
    if watermark < 0:
        raise ValueError("watermark must be >= 0")
    if retain < 1:
        raise ValueError("retain must be >= 1")
    directory = Path(directory)
    mkdir_durable(directory, sync=sync)
    sweep_snapshot_debris(directory, sync=False)
    compressed = get_compressor(codec).compress(payload)
    header = json.dumps(
        {
            "watermark": watermark,
            "codec": codec,
            "raw_len": len(payload),
            "payload_len": len(compressed),
            "payload_crc": zlib.crc32(compressed),
            "meta": meta or {},
        },
        separators=(",", ":"),
    ).encode("utf-8")
    path = directory / SNAPSHOT_FILE.format(watermark)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(MAGIC)
        handle.write(_HEADER_LEN.pack(len(header)))
        handle.write(header)
        handle.write(compressed)
        handle.flush()
        if sync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if sync:
        fsync_dir(directory)
    prune_snapshots(directory, retain=retain, sync=sync)
    return path


def list_snapshots(directory: "os.PathLike[str] | str") -> List[Path]:
    """Snapshot paths, oldest first (no validation performed)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("snapshot-*.psnap"))


def read_snapshot(path: "os.PathLike[str] | str") -> Snapshot:
    """Load and fully verify one snapshot file.

    Raises :class:`SnapshotError` on any structural, version, checksum
    or decompression failure — the loader's fallback ladder catches it.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"{path.name}: unreadable ({exc})") from exc
    if not blob.startswith(MAGIC):
        raise SnapshotError(f"{path.name}: bad magic (not a PSNAP1 snapshot)")
    pos = len(MAGIC)
    if len(blob) < pos + _HEADER_LEN.size:
        raise SnapshotError(f"{path.name}: truncated before header length")
    (header_len,) = _HEADER_LEN.unpack_from(blob, pos)
    pos += _HEADER_LEN.size
    if len(blob) < pos + header_len:
        raise SnapshotError(f"{path.name}: truncated header")
    try:
        header = json.loads(blob[pos : pos + header_len].decode("utf-8"))
        watermark = int(header["watermark"])
        codec = str(header["codec"])
        raw_len = int(header["raw_len"])
        payload_len = int(header["payload_len"])
        payload_crc = int(header["payload_crc"])
        meta = dict(header.get("meta") or {})
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"{path.name}: malformed header ({exc})") from exc
    pos += header_len
    compressed = blob[pos : pos + payload_len]
    if len(compressed) != payload_len or len(blob) != pos + payload_len:
        raise SnapshotError(f"{path.name}: truncated or oversized payload")
    if zlib.crc32(compressed) != payload_crc:
        raise SnapshotError(f"{path.name}: payload CRC mismatch")
    try:
        payload = get_compressor(codec).decompress(compressed)
    except Exception as exc:
        raise SnapshotError(
            f"{path.name}: payload does not decompress under {codec!r} "
            f"({exc})"
        ) from exc
    if len(payload) != raw_len:
        raise SnapshotError(
            f"{path.name}: decompressed to {len(payload)} bytes, header "
            f"promised {raw_len}"
        )
    return Snapshot(
        path=path, watermark=watermark, codec=codec, payload=payload, meta=meta
    )


def load_latest_snapshot(
    directory: "os.PathLike[str] | str",
) -> Optional[Snapshot]:
    """The newest snapshot that verifies, or None (the fallback ladder).

    Corrupt/stale rungs are skipped silently — the caller's replay
    dedupes whatever an older snapshot does not cover, so falling back
    is always correct, merely slower.
    """
    for path in reversed(list_snapshots(directory)):
        try:
            return read_snapshot(path)
        except SnapshotError:
            continue
    return None


def prune_snapshots(
    directory: "os.PathLike[str] | str", retain: int = DEFAULT_RETAIN, sync: bool = True
) -> List[Path]:
    """Delete snapshots beyond the ``retain`` newest; returns the kept paths."""
    if retain < 1:
        raise ValueError("retain must be >= 1")
    paths = list_snapshots(directory)
    doomed, kept = paths[:-retain], paths[-retain:]
    for path in doomed:
        path.unlink(missing_ok=True)
    if doomed and sync:
        fsync_dir(Path(directory))
    return kept


def truncatable_watermark(
    directory: "os.PathLike[str] | str", retain: int = DEFAULT_RETAIN
) -> int:
    """The highest sequence below which history may be safely truncated.

    Truncation requires a *full retention set*: at least ``retain`` valid
    snapshots, and only history below the oldest of the ``retain`` newest
    is droppable.  Every retained snapshot covers everything below that
    oldest watermark (each snapshot covers all history below its own,
    and the others' watermarks are >= it), so the truncated prefix stays
    ``retain``-way redundant — losing the newest snapshot to corruption
    never loses records.  0 when fewer valid snapshots exist (nothing
    may be truncated yet).
    """
    if retain < 1:
        raise ValueError("retain must be >= 1")
    valid: List[int] = []
    for path in reversed(list_snapshots(directory)):
        try:
            valid.append(read_snapshot(path).watermark)
        except SnapshotError:
            continue
        if len(valid) == retain:
            return valid[-1]
    return 0


@dataclass
class CheckpointStats:
    """One backend's checkpoint/recovery counters (admin-visible)."""

    #: snapshots written by this process.
    snapshots_taken: int = 0
    #: watermark of the newest snapshot (written or loaded), 0 if none.
    last_watermark: int = 0
    #: compressed bytes of the newest snapshot written.
    last_snapshot_bytes: int = 0
    #: log bytes dropped by prefix truncation, lifetime of this process.
    bytes_truncated: int = 0
    #: how the last open rebuilt the index.
    recovery_mode: str = "cold"  # "cold" | "full-replay" | "snapshot+tail"
    #: records replayed from the log tail at open (past the watermark).
    tail_records: int = 0
    #: records restored from the snapshot at open.
    snapshot_records: int = 0
    #: wall seconds the last open spent rebuilding the index.
    open_s: float = 0.0

    def as_wire(self) -> Dict[str, str]:
        """Flat string attrs for the fleet admin op."""
        return {
            "snapshots": str(self.snapshots_taken),
            "watermark": str(self.last_watermark),
            "snapshot-bytes": str(self.last_snapshot_bytes),
            "truncated-bytes": str(self.bytes_truncated),
            "recovery-mode": self.recovery_mode,
            "tail-records": str(self.tail_records),
            "snapshot-records": str(self.snapshot_records),
            "open-s": f"{self.open_s:.6f}",
        }


def load_index_checkpoint(
    directory: "os.PathLike[str] | str",
) -> "Optional[tuple]":
    """The newest snapshot that fully restores, as ``(watermark, entries,
    index)`` — or None when every rung of the ladder fails.

    This is the complete fallback ladder in one call: container damage
    (bad magic, torn file, CRC mismatch, codec failure) *and* payload
    damage (a container that verifies but whose record stream no longer
    unpickles or mis-counts) each skip to the next older snapshot; with
    none left the caller does a full-history replay.  ``entries`` is the
    restored ``[(sequence, assertion), ...]`` stream in insertion order;
    ``index`` is a fresh :class:`~repro.store.interface.StoreIndex` built
    by re-adding every record, so its generation and derived tables are
    exactly what a full replay of the same records produces.
    """
    from repro.store.interface import StoreIndex

    for path in reversed(list_snapshots(directory)):
        try:
            snapshot = read_snapshot(path)
            seqs, index_blob = unpack_entries(snapshot.payload)
            index = StoreIndex()
            restored = index.restore(index_blob)
            if len(seqs) != len(restored):
                raise SnapshotError(
                    f"{path.name}: {len(seqs)} sequences for "
                    f"{len(restored)} restored records"
                )
            return snapshot.watermark, list(zip(seqs, restored)), index
        except Exception:
            # Payload damage surfaces as arbitrary unpickling exceptions;
            # every failure mode means the same thing — this rung is
            # unusable, try the next.
            continue
    return None


def pack_entries(seqs: List[int], index_blob: bytes) -> bytes:
    """Assemble a backend snapshot payload: packed sequence array + the
    :meth:`StoreIndex.serialize` blob the sequences are aligned with."""
    return (
        struct.pack("<Q", len(seqs))
        + struct.pack(f"<{len(seqs)}Q", *seqs)
        + index_blob
    )


def unpack_entries(payload: bytes) -> "tuple[List[int], bytes]":
    """Invert :func:`pack_entries`; raises :class:`SnapshotError` on damage."""
    if len(payload) < 8:
        raise SnapshotError("snapshot payload shorter than its own count")
    (count,) = struct.unpack_from("<Q", payload)
    end = 8 + 8 * count
    if len(payload) < end:
        raise SnapshotError(
            f"snapshot payload promises {count} sequences but is truncated"
        )
    seqs = list(struct.unpack_from(f"<{count}Q", payload, 8))
    return seqs, payload[end:]


__all__ = [
    "CheckpointStats",
    "DEFAULT_CODEC",
    "DEFAULT_RETAIN",
    "MAGIC",
    "Snapshot",
    "SnapshotError",
    "list_snapshots",
    "load_index_checkpoint",
    "load_latest_snapshot",
    "pack_entries",
    "prune_snapshots",
    "read_snapshot",
    "snapshot_dir_for",
    "sweep_snapshot_debris",
    "truncatable_watermark",
    "unpack_entries",
]
