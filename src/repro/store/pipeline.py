"""Staged decode→commit ingest: the store's pipelined data plane.

The paper's headline number is sustained recording throughput, and the
blocking ingest path wastes exactly the overlap a store engine lives on:
while the backend's group commit sits in ``fsync`` (GIL released, CPU
idle), the next batch's XML could already be decoding — and while the CPU
decodes, the disk could already be syncing the previous batch.
:class:`PipelinedIngest` is that overlap, packaged as a small two-stage
engine:

* **decode** — batch *k+1* is transformed (e.g. p-assertion XML →
  assertion objects) on a small worker pool while batch *k* commits;
* **commit** — a single committer thread applies batches **in submission
  order**, so a pipelined store replays byte-identically to a blocking
  ``put_many`` loop fed the same batches.

Knobs (the module's configuration surface — threaded through
``StorePlugIn(pipeline_depth=...)``, ``PReServActor(pipeline_depth=...)``,
``ProvenanceRecordClient.record_many(pipeline_depth=...)`` and
``ExperimentConfig.store_pipeline_depth``):

``depth``
    The bound on batches in flight (submitted but not yet committed or
    dropped).  :meth:`PipelinedIngest.submit` **blocks** once ``depth``
    batches are in flight — backpressure, so a slow backend bounds queue
    growth instead of buffering the whole stream.  ``depth=1`` still
    overlaps the producer's next batch preparation with one in-flight
    commit; larger depths let decode run further ahead of a bursty disk.
``decode``
    Optional callable applied to each submitted batch on the worker pool;
    ``None`` submits batches pre-decoded (the commit overlap remains).
``workers``
    Decode pool size (default ``min(depth, cpu_count, 4)``); ignored
    without ``decode``.

(The former ``gil_switch_s`` interpreter-tuning knob — a workaround for
decode and commit threads fighting over one GIL — is gone: the process
fleet (:mod:`repro.fleet`) removes that contention at the source by
giving each worker its own interpreter.)

Ordering and failure contract:

* batches commit in exactly the order they were submitted, whatever order
  their decodes finish in;
* the **first** error (decode or commit, earliest submitted batch wins)
  is sticky: every batch submitted after the failing one is *dropped*,
  never committed — a failure at batch *k* can never commit batch *k+1*,
  so a store fed through a failing pipeline always holds a prefix of the
  submitted stream (per the backend's own batch-durability contract);
* the error is re-raised by :meth:`submit`, :meth:`flush` and
  :meth:`close` — no batch is ever dropped silently;
* :meth:`close` (or leaving the ``with`` block) joins the committer and
  the decode pool, so no write is in flight once it returns.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass
class PipelineStats:
    """Counters of one engine's lifetime (read them via ``engine.stats``)."""

    batches_submitted: int = 0
    batches_committed: int = 0
    #: batches never committed because an earlier batch failed.
    batches_dropped: int = 0
    #: sum of the commit callbacks' integer returns (``put_many`` counts).
    records_committed: int = 0
    #: high-water mark of batches in flight — bounded by ``depth``.
    max_in_flight: int = 0
    #: wall time spent inside decode callbacks (summed across workers).
    decode_s: float = 0.0
    #: wall time the committer spent inside commit callbacks.
    commit_s: float = 0.0


class _Batch:
    __slots__ = ("index", "raw", "future")

    def __init__(self, index: int, raw: Any, future: Optional[Future]):
        self.index = index
        self.raw = raw
        self.future = future


#: queue sentinel that tells the committer to exit.
_SHUTDOWN = None


class PipelinedIngest:
    """A bounded, order-preserving decode→commit pipeline (see module doc).

    One producer thread calls :meth:`submit`/:meth:`flush`/:meth:`close`;
    the commit callback runs only on the internal committer thread, so a
    backend whose write path is single-threaded (every backend here) is
    driven serially, exactly as the actor layer drives it.
    """

    def __init__(
        self,
        commit: Callable[[Any], Any],
        decode: Optional[Callable[[Any], Any]] = None,
        depth: int = 4,
        workers: Optional[int] = None,
        name: str = "ingest",
    ):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self._commit_fn = commit
        self._decode_fn = decode
        self.depth = depth
        self.stats = PipelineStats()
        # Backpressure: one slot per in-flight batch, acquired by submit()
        # and released only once the batch is committed or dropped.
        self._slots = threading.BoundedSemaphore(depth)
        self._queue: "queue.Queue[Optional[_Batch]]" = queue.Queue()
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._error: Optional[BaseException] = None
        self._error_index: Optional[int] = None
        self._in_flight = 0
        self._finished = 0
        self._closed = False
        self._pool: Optional[ThreadPoolExecutor] = None
        if decode is not None:
            self._pool = ThreadPoolExecutor(
                max_workers=workers or min(depth, os.cpu_count() or 2, 4),
                thread_name_prefix=f"{name}-decode",
            )
        self._committer = threading.Thread(
            target=self._commit_loop, name=f"{name}-commit", daemon=True
        )
        self._committer.start()

    # -- producer side -----------------------------------------------------
    def submit(self, raw: Any) -> int:
        """Enqueue one batch; returns its submission index.

        Blocks while ``depth`` batches are in flight.  Raises the
        pipeline's first error if one already occurred (the submitted
        batch is then *not* enqueued).
        """
        if self._closed:
            raise ValueError("submit on closed PipelinedIngest")
        self._slots.acquire()
        with self._lock:
            if self._error is not None:
                # Undo the reservation: this batch will never be queued.
                self._slots.release()
                raise self._error
            index = self.stats.batches_submitted
            self.stats.batches_submitted += 1
            self._in_flight += 1
            if self._in_flight > self.stats.max_in_flight:
                self.stats.max_in_flight = self._in_flight
        future = (
            self._pool.submit(self._timed_decode, raw)
            if self._pool is not None
            else None
        )
        self._queue.put(_Batch(index, raw, future))
        return index

    def flush(self) -> None:
        """Block until every submitted batch committed (or dropped).

        Re-raises the pipeline's first error, if any — so a caller that
        flushes between logical units (e.g. one wire message) maps the
        failure to the unit that caused it.
        """
        with self._done:
            while self._finished < self.stats.batches_submitted:
                self._done.wait()
            if self._error is not None:
                raise self._error

    def close(self, raise_error: bool = True) -> None:
        """Drain, stop the committer, join the decode pool.

        Idempotent.  With ``raise_error`` (the default) the first
        pipeline error is re-raised after shutdown completes, so errors
        surface even when the producer never called :meth:`flush`.
        """
        if not self._closed:
            self._closed = True
            self._queue.put(_SHUTDOWN)
            self._committer.join()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
        if raise_error and self._error is not None:
            raise self._error

    def __enter__(self) -> "PipelinedIngest":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        # Don't mask an exception already propagating out of the block.
        self.close(raise_error=exc_type is None)

    @property
    def error(self) -> Optional[BaseException]:
        """The sticky first error (decode or commit), or None."""
        return self._error

    @property
    def error_index(self) -> Optional[int]:
        """Submission index of the batch the first error struck, or None.

        Everything below this index committed; it and everything after it
        did not — the prefix boundary a caller resumes from.
        """
        return self._error_index

    # -- worker / committer side -------------------------------------------
    def _timed_decode(self, raw: Any) -> Any:
        start = time.perf_counter()
        try:
            return self._decode_fn(raw)  # type: ignore[misc]
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.stats.decode_s += elapsed

    def _commit_loop(self) -> None:
        while True:
            batch = self._queue.get()
            if batch is _SHUTDOWN:
                return
            try:
                if self._error is not None:
                    # An earlier batch failed: this one must never commit.
                    if batch.future is not None:
                        batch.future.cancel()
                    with self._lock:
                        self.stats.batches_dropped += 1
                else:
                    if batch.future is not None:
                        decoded = batch.future.result()
                    else:
                        decoded = batch.raw
                    start = time.perf_counter()
                    result = self._commit_fn(decoded)
                    elapsed = time.perf_counter() - start
                    with self._lock:
                        self.stats.commit_s += elapsed
                        self.stats.batches_committed += 1
                        if isinstance(result, int):
                            self.stats.records_committed += result
            except BaseException as exc:
                with self._lock:
                    if self._error is None:
                        self._error = exc
                        self._error_index = batch.index
            finally:
                with self._done:
                    self._in_flight -= 1
                    self._finished += 1
                    self._done.notify_all()
                self._slots.release()
