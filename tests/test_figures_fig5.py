"""Figure 5 regeneration and the synthetic store generator."""

from __future__ import annotations

import pytest

from repro.app.experiment import Experiment, ExperimentConfig
from repro.core.client import ProvenanceQueryClient
from repro.core.prep import ProtocolTracker
from repro.figures.fig5 import fig5_table, measure_point, run_fig5
from repro.figures.synthstore import populate_store
from repro.registry.client import RegistryClient
from repro.usecases.semantic import validate_session


@pytest.fixture(scope="module")
def series():
    return run_fig5(sizes=(100, 200, 400))


class TestSynthStore:
    def make_exp(self):
        return Experiment(ExperimentConfig())

    def test_record_structure_matches_real_instrumentation(self):
        """Synthetic records mirror what the interceptor produces."""
        exp = self.make_exp()
        populate_store(exp.backend, 10, script_for=exp.script_for)
        tracker = ProtocolTracker()
        for assertion in exp.backend.all_assertions():
            tracker.observe(assertion)
        assert tracker.undocumented() == []
        for key in exp.backend.interaction_keys():
            scripts = exp.backend.actor_state_passertions(key, state_type="script")
            assert len(scripts) == 1

    def test_scripts_are_the_real_service_scripts(self):
        exp = self.make_exp()
        populate_store(exp.backend, 10, script_for=exp.script_for)
        encode_keys = [
            k for k in exp.backend.interaction_keys() if k.receiver == "encode-by-groups"
        ]
        script = exp.backend.actor_state_passertions(
            encode_keys[0], state_type="script"
        )[0]
        assert script.content.text == exp.script_for("encode-by-groups")

    def test_session_partitioning(self):
        exp = self.make_exp()
        spec = populate_store(exp.backend, 45, script_for=exp.script_for, session_size=20)
        assert len(spec.sessions) == 3
        assert sum(
            len(exp.backend.group_members(s)) for s in spec.sessions
        ) == 45

    def test_count_matches_request(self):
        exp = self.make_exp()
        spec = populate_store(exp.backend, 37, script_for=exp.script_for)
        assert spec.interaction_records == 37
        assert exp.backend.counts().interaction_records == 37

    def test_clean_store_semantically_valid(self):
        exp = self.make_exp()
        spec = populate_store(exp.backend, 25, script_for=exp.script_for)
        store = ProvenanceQueryClient(exp.bus)
        registry = RegistryClient(exp.bus)
        for session in spec.sessions:
            report = validate_session(store, registry, session)
            assert report.valid

    def test_planted_violations_found(self):
        exp = self.make_exp()
        spec = populate_store(
            exp.backend, 25, script_for=exp.script_for, violation_every=2
        )
        assert spec.violations
        store = ProvenanceQueryClient(exp.bus)
        registry = RegistryClient(exp.bus)
        found = []
        for session in spec.sessions:
            report = validate_session(store, registry, session)
            found.extend(v.interaction_id for v in report.violations)
        assert sorted(found) == sorted(spec.violations)

    def test_invalid_args_rejected(self):
        exp = self.make_exp()
        with pytest.raises(ValueError):
            populate_store(exp.backend, -1, script_for=exp.script_for)
        with pytest.raises(ValueError):
            populate_store(exp.backend, 1, script_for=exp.script_for, session_size=0)


class TestFigure5Shape:
    def test_both_curves_linear(self, series):
        assert series.script_fit().is_linear
        assert series.semantic_fit().is_linear

    def test_slope_ratio_near_eleven(self, series):
        """Paper: semantic-validity slope ~11x script comparison."""
        assert 9.0 <= series.slope_ratio() <= 12.0

    def test_script_cost_near_15ms_per_record(self, series):
        """Paper: ~15 ms to retrieve and map one script."""
        slope = series.script_fit().slope
        assert 0.014 <= slope <= 0.017

    def test_semantic_time_dominated_by_registry_calls(self):
        point = measure_point(100)
        assert point.semantic_registry_calls > 9 * 0.9 * 100 * 0.9

    def test_monotone_in_store_size(self, series):
        xs = series.xs()
        script = [p.script_comparison_s for p in series.points]
        semantic = [p.semantic_validity_s for p in series.points]
        assert xs == sorted(xs)
        assert script == sorted(script)
        assert semantic == sorted(semantic)

    def test_table_renders(self, series):
        text = fig5_table(series)
        assert "slope ratio" in text
        assert "ms/record" in text
