"""PReServ: Provenance Recording for Services.

The store side of the architecture (paper Section 5, Figure 3):

* :mod:`repro.store.interface` — the Provenance Store Interface and the
  shared in-memory index,
* :mod:`repro.store.backends` — memory / file-system / database backends,
* :mod:`repro.store.kvlog` — the embedded log-structured KV database
  (Berkeley DB substitute) underlying the database backend,
* :mod:`repro.store.plugins` — Store and Query plug-ins,
* :mod:`repro.store.querycache` — generation-validated query plan and
  result caching for the read path,
* :mod:`repro.store.service` — the message translator and the PReServ actor.
"""

from repro.store.interface import (
    DuplicateAssertionError,
    ProvenanceStoreInterface,
    StoreCounts,
    StoreIndex,
)
from repro.store.backends import FileSystemBackend, KVLogBackend, MemoryBackend
from repro.store.kvlog import CorruptRecordError, KVLog
from repro.store.plugins import PlugIn, QueryPlugIn, StorePlugIn
from repro.store.querycache import CacheStats, GenerationVector, QueryCache, QueryPlan
from repro.store.service import (
    MessageTranslator,
    PAPER_RECORD_ROUND_TRIP_S,
    PReServActor,
)
from repro.store.distributed import (
    CrossLink,
    FederatedQueryClient,
    StoreRouter,
    consolidate,
)
from repro.store.curation import (
    ArchiveError,
    RetentionPolicy,
    apply_retention,
    export_archive,
    import_archive,
    verify_archive,
)

__all__ = [
    "ArchiveError",
    "CacheStats",
    "CorruptRecordError",
    "CrossLink",
    "GenerationVector",
    "QueryCache",
    "QueryPlan",
    "FederatedQueryClient",
    "RetentionPolicy",
    "StoreRouter",
    "apply_retention",
    "consolidate",
    "export_archive",
    "import_archive",
    "verify_archive",
    "DuplicateAssertionError",
    "FileSystemBackend",
    "KVLog",
    "KVLogBackend",
    "MemoryBackend",
    "MessageTranslator",
    "PAPER_RECORD_ROUND_TRIP_S",
    "PReServActor",
    "PlugIn",
    "ProvenanceStoreInterface",
    "QueryPlugIn",
    "StoreCounts",
    "StoreIndex",
    "StorePlugIn",
]
