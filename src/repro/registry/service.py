"""The Grimoires registry actor.

"The registry provides an interface that supports metadata publication and
metadata-based service discovery." (Section 6)

Operations are deliberately fine-grained — service lookup, interface
retrieval, operation retrieval, message retrieval, part retrieval, metadata
fetch — because the paper's semantic-validation cost is structured as ~10
registry calls per interaction; the client mirrors that call pattern.
"""

from __future__ import annotations

from typing import Dict, List

from repro.registry.ontology import Ontology
from repro.registry.wsdl import PartKey, ServiceDescription
from repro.soa.actor import Actor
from repro.soa.envelope import Fault
from repro.soa.xmldoc import XmlElement


class GrimoiresRegistry(Actor):
    """UDDI-style registry with per-part metadata and an ontology."""

    def __init__(self, ontology: Ontology, endpoint: str = "registry"):
        super().__init__(endpoint, description="Grimoires service registry")
        self.ontology = ontology
        self._services: Dict[str, ServiceDescription] = {}
        self._metadata: Dict[str, Dict[str, str]] = {}

    # -- direct (in-process) API -----------------------------------------
    def publish(self, description: ServiceDescription) -> None:
        if description.service in self._services:
            raise ValueError(f"service {description.service!r} already published")
        self._services[description.service] = description

    def unpublish(self, service: str) -> None:
        self._services.pop(service, None)

    def annotate(self, key: PartKey, name: str, value: str) -> None:
        """Attach metadata ``name=value`` to a message part."""
        self._require_part(key)
        self._metadata.setdefault(key.as_string(), {})[name] = value

    def metadata_of(self, key: PartKey) -> Dict[str, str]:
        return dict(self._metadata.get(key.as_string(), {}))

    def services(self) -> List[str]:
        return sorted(self._services)

    def description_of(self, service: str) -> ServiceDescription:
        try:
            return self._services[service]
        except KeyError:
            raise KeyError(f"service {service!r} not published") from None

    def _require_part(self, key: PartKey) -> None:
        desc = self.description_of(key.service)
        op = desc.operation(key.operation)
        names = {p.name for p in op.parts(key.direction)}
        if key.part not in names:
            raise KeyError(
                f"no part {key.part!r} in {key.direction} of "
                f"{key.service}#{key.operation}"
            )

    # -- service operations (the 10-call surface) ---------------------------
    def op_lookup_service(self, payload: XmlElement) -> XmlElement:
        """Does the registry know this service?  Returns its summary."""
        service = payload.attrs.get("service", "")
        desc = self._services.get(service)
        if desc is None:
            raise Fault("not-found", f"service {service!r} not published")
        return XmlElement(
            "service-summary",
            attrs={
                "service": desc.service,
                "operations": str(len(desc.operations)),
            },
        )

    def op_get_interface(self, payload: XmlElement) -> XmlElement:
        """The full abstract WSDL of a service."""
        service = payload.attrs.get("service", "")
        desc = self._services.get(service)
        if desc is None:
            raise Fault("not-found", f"service {service!r} not published")
        return desc.to_xml()

    def op_get_operation(self, payload: XmlElement) -> XmlElement:
        service = payload.attrs.get("service", "")
        operation = payload.attrs.get("operation", "")
        try:
            return self.description_of(service).operation(operation).to_xml()
        except KeyError as exc:
            raise Fault("not-found", str(exc)) from exc

    def op_get_message(self, payload: XmlElement) -> XmlElement:
        """The parts of one direction of one operation."""
        service = payload.attrs.get("service", "")
        operation = payload.attrs.get("operation", "")
        direction = payload.attrs.get("direction", "")
        try:
            op = self.description_of(service).operation(operation)
            parts = op.parts(direction)
        except (KeyError, ValueError) as exc:
            raise Fault("not-found", str(exc)) from exc
        root = XmlElement(
            "message",
            attrs={"service": service, "operation": operation, "direction": direction},
        )
        for part in parts:
            root.add(part.to_xml())
        return root

    def op_get_part(self, payload: XmlElement) -> XmlElement:
        key = self._part_key_from(payload)
        try:
            self._require_part(key)
        except KeyError as exc:
            raise Fault("not-found", str(exc)) from exc
        return XmlElement("part-ref", attrs={"key": key.as_string()})

    def op_get_metadata(self, payload: XmlElement) -> XmlElement:
        key = self._part_key_from(payload)
        try:
            self._require_part(key)
        except KeyError as exc:
            raise Fault("not-found", str(exc)) from exc
        root = XmlElement("metadata", attrs={"key": key.as_string()})
        for name in sorted(self._metadata.get(key.as_string(), {})):
            root.element("entry", self._metadata[key.as_string()][name], name=name)
        return root

    def op_find_by_metadata(self, payload: XmlElement) -> XmlElement:
        """Metadata-based discovery: parts annotated with name=value."""
        name = payload.attrs.get("name", "")
        value = payload.attrs.get("value", "")
        root = XmlElement("discovery-result")
        for key_str in sorted(self._metadata):
            if self._metadata[key_str].get(name) == value:
                root.element("part-ref", key=key_str)
        return root

    def op_get_ontology(self, payload: XmlElement) -> XmlElement:
        return self.ontology.to_xml()

    def op_subsumes(self, payload: XmlElement) -> XmlElement:
        general = payload.attrs.get("general", "")
        specific = payload.attrs.get("specific", "")
        try:
            result = self.ontology.subsumes(general, specific)
        except KeyError as exc:
            raise Fault("not-found", str(exc)) from exc
        return XmlElement("subsumes", attrs={"result": "true" if result else "false"})

    @staticmethod
    def _part_key_from(payload: XmlElement) -> PartKey:
        key_str = payload.attrs.get("key")
        if key_str:
            return PartKey.parse(key_str)
        return PartKey(
            service=payload.attrs.get("service", ""),
            operation=payload.attrs.get("operation", ""),
            direction=payload.attrs.get("direction", ""),
            part=payload.attrs.get("part", ""),
        )
