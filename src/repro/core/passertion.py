"""P-assertion data model and XML mapping.

The unit of provenance: "an assertion, by an actor, pertaining to the
provenance of some data".  Two kinds plus the grouping assertion:

* :class:`InteractionPAssertion` — documents one message of one interaction,
  from one *view* (the sender's or the receiver's),
* :class:`ActorStatePAssertion` — documents actor-internal state in the
  context of an interaction (a script's content, CPU used, ...),
* :class:`GroupAssertion` — places interactions into a named group
  (session, thread, or custom kinds).

All types serialize to/from the XML document model so they can be stored,
shipped in PReP messages, and queried independently of the technology that
produced them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.soa.xmldoc import XmlElement


class ViewKind(enum.Enum):
    """Whose view of an interaction a p-assertion documents."""

    SENDER = "sender"
    RECEIVER = "receiver"


class GroupKind(enum.Enum):
    """Well-understood interaction groupings from the paper."""

    #: A workflow run.
    SESSION = "session"
    #: A sequential succession of activities.
    THREAD = "thread"
    CUSTOM = "custom"


@dataclass(frozen=True, order=True)
class InteractionKey:
    """Globally identifies one interaction: message id + the two parties.

    The paper requires that provenance "maintain a link between the inputs
    and the outputs of each workflow run in an accurate manner ... even if
    multiple workflows were run simultaneously"; the three-part key provides
    that unambiguous identity.
    """

    interaction_id: str
    sender: str
    receiver: str

    def __post_init__(self) -> None:
        for name in ("interaction_id", "sender", "receiver"):
            if not getattr(self, name):
                raise ValueError(f"InteractionKey.{name} must be non-empty")

    def to_xml(self) -> XmlElement:
        return XmlElement(
            "interaction-key",
            attrs={
                "id": self.interaction_id,
                "sender": self.sender,
                "receiver": self.receiver,
            },
        )

    @classmethod
    def from_xml(cls, el: XmlElement) -> "InteractionKey":
        if el.name != "interaction-key":
            raise ValueError(f"expected <interaction-key>, got <{el.name}>")
        return cls(
            interaction_id=el.attrs["id"],
            sender=el.attrs["sender"],
            receiver=el.attrs["receiver"],
        )


@dataclass(frozen=True)
class PAssertion:
    """Common identity of all p-assertions.

    ``local_id`` disambiguates multiple assertions by the same asserter about
    the same interaction view; the store keys assertions by
    ``(interaction_key, view, asserter, local_id)``.
    """

    interaction_key: InteractionKey
    view: ViewKind
    asserter: str
    local_id: str

    def __post_init__(self) -> None:
        if not self.asserter:
            raise ValueError("asserter must be non-empty")
        if not self.local_id:
            raise ValueError("local_id must be non-empty")

    @property
    def store_key(self) -> Tuple[InteractionKey, str, str, str]:
        return (self.interaction_key, self.view.value, self.asserter, self.local_id)

    def _base_xml(self, kind: str) -> XmlElement:
        root = XmlElement("p-assertion", attrs={"kind": kind})
        root.add(self.interaction_key.to_xml())
        root.element("view", self.view.value)
        root.element("asserter", self.asserter)
        root.element("local-id", self.local_id)
        return root

    def to_xml(self) -> XmlElement:  # pragma: no cover - abstract-ish
        raise NotImplementedError


@dataclass(frozen=True)
class InteractionPAssertion(PAssertion):
    """Documentation of a message as seen from one side of an interaction."""

    operation: str
    content: XmlElement = field(compare=False)

    KIND = "interaction"

    def to_xml(self) -> XmlElement:
        root = self._base_xml(self.KIND)
        root.element("operation", self.operation)
        root.element("content").add(self.content)
        return root


@dataclass(frozen=True)
class ActorStatePAssertion(PAssertion):
    """Documentation of actor-internal state in an interaction's context.

    ``state_type`` names what is documented — e.g. ``script`` (the paper's
    use case 1 records the invoked script's content), ``resource-usage``,
    ``workflow``.
    """

    state_type: str
    content: XmlElement = field(compare=False)

    KIND = "actor-state"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.state_type:
            raise ValueError("state_type must be non-empty")

    def to_xml(self) -> XmlElement:
        root = self._base_xml(self.KIND)
        root.element("state-type", self.state_type)
        root.element("content").add(self.content)
        return root


@dataclass(frozen=True)
class GroupAssertion:
    """Asserts that an interaction belongs to a group.

    Groups give p-assertions execution structure: a *session* collects the
    interactions of one workflow run; a *thread* collects a sequential chain
    of activities.  Membership is asserted incrementally, one interaction
    per assertion, by the asserting actor.
    """

    group_id: str
    kind: GroupKind
    member: InteractionKey
    asserter: str
    #: position of the member within the group, for ordered kinds (threads).
    sequence: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.group_id:
            raise ValueError("group_id must be non-empty")
        if not self.asserter:
            raise ValueError("asserter must be non-empty")
        if self.sequence is not None and self.sequence < 0:
            raise ValueError("sequence must be non-negative")

    def to_xml(self) -> XmlElement:
        attrs = {"id": self.group_id, "kind": self.kind.value}
        if self.sequence is not None:
            attrs["sequence"] = str(self.sequence)
        root = XmlElement("group-assertion", attrs=attrs)
        root.add(self.member.to_xml())
        root.element("asserter", self.asserter)
        return root

    @classmethod
    def from_xml(cls, el: XmlElement) -> "GroupAssertion":
        if el.name != "group-assertion":
            raise ValueError(f"expected <group-assertion>, got <{el.name}>")
        seq = el.attrs.get("sequence")
        return cls(
            group_id=el.attrs["id"],
            kind=GroupKind(el.attrs["kind"]),
            member=InteractionKey.from_xml(el.require("interaction-key")),
            asserter=el.require("asserter").text,
            sequence=int(seq) if seq is not None else None,
        )


def parse_passertion(el: XmlElement) -> PAssertion:
    """Reconstruct a p-assertion from its XML form."""
    if el.name != "p-assertion":
        raise ValueError(f"expected <p-assertion>, got <{el.name}>")
    kind = el.attrs.get("kind")
    key = InteractionKey.from_xml(el.require("interaction-key"))
    view = ViewKind(el.require("view").text)
    asserter = el.require("asserter").text
    local_id = el.require("local-id").text
    content_wrapper = el.require("content")
    content = next(content_wrapper.iter_elements(), None)
    if content is None:
        raise ValueError("p-assertion <content> is empty")
    if kind == InteractionPAssertion.KIND:
        return InteractionPAssertion(
            interaction_key=key,
            view=view,
            asserter=asserter,
            local_id=local_id,
            operation=el.require("operation").text,
            content=content,
        )
    if kind == ActorStatePAssertion.KIND:
        return ActorStatePAssertion(
            interaction_key=key,
            view=view,
            asserter=asserter,
            local_id=local_id,
            state_type=el.require("state-type").text,
            content=content,
        )
    raise ValueError(f"unknown p-assertion kind {kind!r}")
