"""Synthetic, versioned stand-in for the RefSeq protein database.

The paper's bioinformatician "downloads sequence data of microbial proteins
from the database RefSeq".  We cannot ship RefSeq, so this module builds a
deterministic synthetic database exercising the same code path:

* records carry accession, version, organism and an amino-acid sequence;
* sequences are drawn from an order-1 Markov model whose transition matrix
  is biased toward hydrophobicity-class runs, so the sequences carry genuine
  statistical structure for the compressors to find;
* the database is *versioned by release*: the same accession can resolve to
  byte-identical data in two releases (UC1's "same sequence data, downloaded
  again") while other releases may revise sequences.

Everything is reproducible from a single integer seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bio.alphabet import AMINO_ACIDS
from repro.bio.fasta import FastaRecord, write_fasta
from repro.simkit.rng import derive_seed

#: Approximate natural amino-acid background frequencies (UniProt-like),
#: ordered to match :data:`AMINO_ACIDS`.
BACKGROUND_FREQUENCIES: Dict[str, float] = {
    "A": 0.083, "C": 0.014, "D": 0.055, "E": 0.067, "F": 0.039,
    "G": 0.071, "H": 0.023, "I": 0.059, "K": 0.058, "L": 0.097,
    "M": 0.024, "N": 0.041, "P": 0.047, "Q": 0.039, "R": 0.055,
    "S": 0.066, "T": 0.053, "V": 0.069, "W": 0.011, "Y": 0.029,
}

#: Hydrophobic residues; runs of these create compressible local structure.
_HYDROPHOBIC = frozenset("AILMFWVC")

_MICROBES = (
    "Escherichia coli",
    "Bacillus subtilis",
    "Haemophilus influenzae",
    "Mycoplasma genitalium",
    "Thermus thermophilus",
    "Synechocystis sp.",
    "Deinococcus radiodurans",
    "Aquifex aeolicus",
)


@dataclass(frozen=True)
class SequenceRecord:
    """One protein record as returned by a database query."""

    accession: str
    version: int
    organism: str
    sequence: str

    @property
    def versioned_accession(self) -> str:
        return f"{self.accession}.{self.version}"

    def to_fasta(self) -> FastaRecord:
        header = f"{self.versioned_accession} {self.organism}"
        return FastaRecord(header=header, sequence=self.sequence)


def _markov_sequence(rng: random.Random, length: int, cluster_bias: float = 3.0) -> str:
    """Draw an amino-acid sequence from a hydrophobicity-clustered Markov chain.

    From a hydrophobic residue, hydrophobic successors are ``cluster_bias``
    times more likely than background (and symmetrically for polar residues),
    producing the context-dependent correlations compression exploits.
    """
    symbols = list(AMINO_ACIDS)
    base = [BACKGROUND_FREQUENCIES[s] for s in symbols]
    weights_from_hydrophobic = [
        w * (cluster_bias if s in _HYDROPHOBIC else 1.0) for s, w in zip(symbols, base)
    ]
    weights_from_polar = [
        w * (1.0 if s in _HYDROPHOBIC else cluster_bias) for s, w in zip(symbols, base)
    ]
    out: List[str] = []
    prev_hydrophobic = rng.random() < 0.4
    for _ in range(length):
        weights = weights_from_hydrophobic if prev_hydrophobic else weights_from_polar
        sym = rng.choices(symbols, weights=weights, k=1)[0]
        out.append(sym)
        prev_hydrophobic = sym in _HYDROPHOBIC
    return "".join(out)


class RefSeqDatabase:
    """A deterministic, versioned protein sequence database.

    ``releases`` numbered 1..n; a fraction of records is revised (sequence
    regenerated, version bumped) at each release boundary.  Query results are
    stable: the same (accession, release) pair always yields identical bytes.
    """

    def __init__(
        self,
        seed: int = 7,
        n_records: int = 64,
        n_releases: int = 3,
        mean_length: int = 320,
        revision_fraction: float = 0.15,
    ):
        if n_records < 1:
            raise ValueError("n_records must be >= 1")
        if n_releases < 1:
            raise ValueError("n_releases must be >= 1")
        if not 0.0 <= revision_fraction <= 1.0:
            raise ValueError("revision_fraction must be in [0, 1]")
        self.seed = seed
        self.n_releases = n_releases
        self._by_release: List[Dict[str, SequenceRecord]] = []
        rng = random.Random(derive_seed(seed, "refseq"))
        release_1: Dict[str, SequenceRecord] = {}
        for i in range(n_records):
            accession = f"RP_{i:06d}"
            organism = rng.choice(_MICROBES)
            length = max(40, int(rng.gauss(mean_length, mean_length / 4)))
            release_1[accession] = SequenceRecord(
                accession=accession,
                version=1,
                organism=organism,
                sequence=_markov_sequence(rng, length),
            )
        self._by_release.append(release_1)
        for _release in range(2, n_releases + 1):
            prev = self._by_release[-1]
            cur: Dict[str, SequenceRecord] = {}
            for accession, rec in prev.items():
                if rng.random() < revision_fraction:
                    length = max(40, int(rng.gauss(mean_length, mean_length / 4)))
                    cur[accession] = SequenceRecord(
                        accession=accession,
                        version=rec.version + 1,
                        organism=rec.organism,
                        sequence=_markov_sequence(rng, length),
                    )
                else:
                    cur[accession] = rec
            self._by_release.append(cur)

    # -- query API -------------------------------------------------------
    def accessions(self) -> List[str]:
        return sorted(self._by_release[0])

    def fetch(self, accession: str, release: Optional[int] = None) -> SequenceRecord:
        """Fetch one record from ``release`` (default: latest)."""
        table = self._release_table(release)
        try:
            return table[accession]
        except KeyError:
            raise KeyError(f"unknown accession {accession!r}") from None

    def query_organism(
        self, organism: str, release: Optional[int] = None
    ) -> List[SequenceRecord]:
        table = self._release_table(release)
        return sorted(
            (rec for rec in table.values() if rec.organism == organism),
            key=lambda r: r.accession,
        )

    def download_fasta(
        self, accessions: Sequence[str], release: Optional[int] = None
    ) -> str:
        """The remote-download call of the paper, rendered as FASTA text."""
        records = [self.fetch(a, release) for a in accessions]
        return write_fasta([r.to_fasta() for r in records])

    def revised_between(self, release_a: int, release_b: int) -> List[str]:
        """Accessions whose sequence differs between two releases."""
        ta = self._release_table(release_a)
        tb = self._release_table(release_b)
        return sorted(
            acc for acc in ta if ta[acc].sequence != tb[acc].sequence
        )

    def _release_table(self, release: Optional[int]) -> Dict[str, SequenceRecord]:
        if release is None:
            release = self.n_releases
        if not 1 <= release <= self.n_releases:
            raise ValueError(
                f"release {release} out of range 1..{self.n_releases}"
            )
        return self._by_release[release - 1]


def sample_of_size(
    db: RefSeqDatabase,
    target_bytes: int,
    release: Optional[int] = None,
    organism: Optional[str] = None,
) -> Tuple[List[str], str]:
    """Pick accessions until the concatenated sample reaches ``target_bytes``.

    This mirrors Collate Sample's need to "provide enough data for the
    statistical methods employed by the compression algorithms".  Returns
    (accessions used, concatenated sequence text).
    """
    if target_bytes < 1:
        raise ValueError("target_bytes must be >= 1")
    if organism is not None:
        pool = [r.accession for r in db.query_organism(organism, release)]
    else:
        pool = db.accessions()
    chosen: List[str] = []
    total = 0
    for accession in pool:
        if total >= target_bytes:
            break
        rec = db.fetch(accession, release)
        chosen.append(accession)
        total += len(rec.sequence)
    if total < target_bytes:
        raise ValueError(
            f"database exhausted at {total} bytes; need {target_bytes}"
        )
    text = "".join(db.fetch(a, release).sequence for a in chosen)
    return chosen, text
