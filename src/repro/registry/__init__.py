"""Grimoires-style service registry with semantic annotations.

The paper's use case 2 relies on "the Grimoires registry, an extension of
the UDDI registry, designed to support semantic annotations of service
descriptions": every WSDL message part is annotated with a semantic type
from an application ontology, and validation checks type compatibility along
the provenance trace.

* :mod:`repro.registry.ontology` — the semantic-type ontology (a typed DAG
  with subsumption),
* :mod:`repro.registry.wsdl` — WSDL-like service/operation/message/part
  descriptions,
* :mod:`repro.registry.service` — the registry actor (publish, lookup,
  metadata attachment, metadata-based discovery),
* :mod:`repro.registry.client` — a bus client making one registry call per
  method (the unit Figure 5's cost model counts).
"""

from repro.registry.ontology import Ontology, build_experiment_ontology
from repro.registry.wsdl import (
    MessagePart,
    OperationDescription,
    PartKey,
    ServiceDescription,
)
from repro.registry.service import GrimoiresRegistry
from repro.registry.client import RegistryClient

__all__ = [
    "GrimoiresRegistry",
    "MessagePart",
    "Ontology",
    "OperationDescription",
    "PartKey",
    "RegistryClient",
    "ServiceDescription",
    "build_experiment_ontology",
]
