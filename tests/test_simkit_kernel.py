"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.simkit.kernel import (
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


class TestEvents:
    def test_event_starts_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.fired

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_succeed_fires_callbacks_at_current_time(self, sim):
        ev = sim.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append((sim.now, e.value)))
        ev.succeed("payload")
        sim.run()
        assert seen == [(0.0, "payload")]

    def test_succeed_with_delay(self, sim):
        ev = sim.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(sim.now))
        ev.succeed(delay=2.5)
        sim.run()
        assert seen == [2.5]

    def test_double_trigger_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.event().succeed(delay=-1)


class TestTimeoutsAndClock:
    def test_timeouts_fire_in_order(self, sim):
        order = []
        for delay in (3.0, 1.0, 2.0):
            sim.timeout(delay).callbacks.append(
                lambda e, d=delay: order.append(d)
            )
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_equal_times_fifo(self, sim):
        order = []
        for tag in "abc":
            sim.timeout(1.0).callbacks.append(lambda e, t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_stops_clock_exactly(self, sim):
        sim.timeout(10.0)
        final = sim.run(until=4.0)
        assert final == 4.0
        assert sim.now == 4.0

    def test_run_until_beyond_queue_advances_clock(self, sim):
        sim.timeout(1.0)
        assert sim.run(until=5.0) == 5.0

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")

    def test_step_on_empty_queue_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-0.1)


class TestProcesses:
    def test_process_advances_clock(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield sim.timeout(5)
            trace.append(sim.now)
            yield sim.timeout(2)
            trace.append(sim.now)
            return "done"

        p = sim.process(proc())
        result = sim.run_until_complete(p)
        assert result == "done"
        assert trace == [0.0, 5.0, 7.0]

    def test_process_receives_event_value(self, sim):
        ev = sim.event()
        got = []

        def proc():
            value = yield ev
            got.append(value)

        sim.process(proc())
        ev.succeed(41, delay=1.0)
        sim.run()
        assert got == [41]

    def test_failed_event_raises_inside_process(self, sim):
        ev = sim.event()

        def proc():
            try:
                yield ev
            except ValueError as exc:
                return f"caught {exc}"

        p = sim.process(proc())
        ev.fail(ValueError("boom"))
        assert sim.run_until_complete(p) == "caught boom"

    def test_uncaught_process_exception_propagates(self, sim):
        def proc():
            yield sim.timeout(1)
            raise RuntimeError("exploded")

        p = sim.process(proc())
        with pytest.raises(RuntimeError, match="exploded"):
            sim.run_until_complete(p)

    def test_process_waits_on_process(self, sim):
        def child():
            yield sim.timeout(3)
            return 99

        def parent():
            value = yield sim.process(child())
            return value + 1

        assert sim.run_until_complete(sim.process(parent())) == 100

    def test_yield_non_event_raises(self, sim):
        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(SimulationError, match="must yield Events"):
            sim.run()

    def test_interrupt_delivers_cause(self, sim):
        caught = []

        def victim():
            try:
                yield sim.timeout(100)
            except Interrupt as exc:
                caught.append((sim.now, exc.cause))

        def attacker(target):
            yield sim.timeout(2)
            target.interrupt("stop now")

        v = sim.process(victim())
        sim.process(attacker(v))
        sim.run()
        assert caught == [(2.0, "stop now")]

    def test_interrupt_finished_process_raises(self, sim):
        def quick():
            yield sim.timeout(0)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_deadlock_detected_by_run_until_complete(self, sim):
        def stuck():
            yield sim.event()  # never triggered

        p = sim.process(stuck())
        with pytest.raises(SimulationError, match="did not complete"):
            sim.run_until_complete(p)


class TestCombinators:
    def test_all_of_waits_for_every_event(self, sim):
        def proc():
            t1, t2, t3 = sim.timeout(1), sim.timeout(5), sim.timeout(3)
            yield sim.all_of([t1, t2, t3])
            return sim.now

        assert sim.run_until_complete(sim.process(proc())) == 5.0

    def test_all_of_empty_fires_immediately(self, sim):
        def proc():
            yield sim.all_of([])
            return sim.now

        assert sim.run_until_complete(sim.process(proc())) == 0.0

    def test_any_of_fires_on_first(self, sim):
        def proc():
            yield sim.any_of([sim.timeout(4), sim.timeout(1)])
            return sim.now

        assert sim.run_until_complete(sim.process(proc())) == 1.0

    def test_determinism_same_seed_same_trace(self):
        def build_and_run():
            sim = Simulator()
            trace = []

            def worker(name, delays):
                for d in delays:
                    yield sim.timeout(d)
                    trace.append((name, sim.now))

            sim.process(worker("a", [1, 2, 3]))
            sim.process(worker("b", [2, 2, 2]))
            sim.run()
            return trace

        assert build_and_run() == build_and_run()
