"""The Provenance Store Interface.

"Each of these backends implements the same API, the Provenance Store
Interface.  This abstraction makes it easy to integrate new backend stores
without having to change already developed PlugIns and provides an API that
maps directly to the PReP protocol specification." (Section 5)

Backends persist assertions however they like; querying is served from an
in-memory :class:`StoreIndex` every backend maintains (and rebuilds on open,
for the persistent ones).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.core.passertion import (
    ActorStatePAssertion,
    GroupAssertion,
    InteractionKey,
    InteractionPAssertion,
    PAssertion,
    ViewKind,
)

Assertion = Union[PAssertion, GroupAssertion]


def interaction_scope(key: InteractionKey) -> str:
    """Canonical scope string for one interaction's records.

    Shared by the sharded write path (shard placement of persisted records)
    and the query cache (scoped freshness tokens), so both sides agree on
    which shard owns an interaction.
    """
    return f"{key.interaction_id}|{key.sender}|{key.receiver}"


@dataclass(frozen=True)
class StoreCounts:
    """Store statistics, as reported by the ``count`` query."""

    interaction_passertions: int
    actor_state_passertions: int
    group_assertions: int
    #: distinct interaction keys with at least one p-assertion — the paper's
    #: "number of interaction records" (Figure 5's x axis).
    interaction_records: int

    @property
    def total(self) -> int:
        return (
            self.interaction_passertions
            + self.actor_state_passertions
            + self.group_assertions
        )


class DuplicateAssertionError(Exception):
    """A p-assertion with an identical store key was already recorded."""


@runtime_checkable
class ResyncCapable(Protocol):
    """The resync surface a store exposes to replication peers.

    Implemented by the log-backed backends and by
    :class:`~repro.fleet.remote.RemoteStore` (so the supervisor's resync
    ladder works against local and socket-served stores alike).  The
    contract both methods share: every committed record has a sequence
    strictly below :meth:`sequence_watermark`, so a peer that saved the
    watermark at time T later pulls exactly what it missed with
    ``scan_suffix(after=watermark)`` — and ``after=0`` streams the whole
    store, *including* history whose log prefix has since been truncated
    under a checkpoint (the stream serves index-visible state, not raw
    log bytes).
    """

    def sequence_watermark(self) -> int:
        """The next sequence number this store will assign."""
        ...  # pragma: no cover - protocol

    def scan_suffix(
        self, after: int = 0, limit: int = 1024
    ) -> List[Tuple[int, str]]:
        """Up to ``limit`` ``(sequence, assertion_xml)`` with sequence >=
        ``after``, in global insertion order."""
        ...  # pragma: no cover - protocol


class StoreIndex:
    """In-memory indexes over the assertions of one store.

    Maintains: per-interaction p-assertions (by view), actor-state
    p-assertions (by state type), group membership (both directions), and
    insertion order.
    """

    def __init__(self) -> None:
        self._order: List[Assertion] = []
        self._seen_keys: Set[Tuple[InteractionKey, str, str, str]] = set()
        self._interactions: Dict[InteractionKey, List[InteractionPAssertion]] = {}
        self._actor_state: Dict[InteractionKey, List[ActorStatePAssertion]] = {}
        self._groups: Dict[str, GroupKindMembers] = {}
        self._by_group_member: Dict[InteractionKey, Set[str]] = {}
        # Running counters and a cached sorted key view: counts() and
        # interaction_keys() sit inside the Figure-5 query loop, so neither
        # may recompute from scratch per call.
        self._n_interactions = 0
        self._n_actor_state = 0
        self._n_groups = 0
        self._all_keys: Set[InteractionKey] = set()
        self._sorted_keys: Optional[List[InteractionKey]] = None
        # Cached sorted views over group membership, invalidated on mutation
        # (the interaction_keys() treatment applied to the group tables).
        self._groups_of_cache: Dict[InteractionKey, List[str]] = {}
        self._group_ids_cache: Dict[Optional[str], List[str]] = {}
        #: Write generation: bumped on every successful mutation, so read
        #: caches can validate with one integer comparison.
        self.generation = 0

    def add(self, assertion: Assertion) -> None:
        if isinstance(assertion, GroupAssertion):
            entry = self._groups.get(assertion.group_id)
            if entry is None:
                entry = self._groups[assertion.group_id] = GroupKindMembers(
                    kind=assertion.kind.value
                )
                self._group_ids_cache.clear()
            if entry.kind != assertion.kind.value:
                raise ValueError(
                    f"group {assertion.group_id!r} asserted with kinds "
                    f"{entry.kind!r} and {assertion.kind.value!r}"
                )
            changed = False
            if entry.add(assertion.member, assertion.sequence):
                self._n_groups += 1
                changed = True
            memberships = self._by_group_member.setdefault(assertion.member, set())
            if assertion.group_id not in memberships:
                memberships.add(assertion.group_id)
                self._groups_of_cache.pop(assertion.member, None)
                changed = True
            self._order.append(assertion)
            # Idempotent re-assertions change nothing a query can observe,
            # so they must not spuriously expire every cached result.
            if changed:
                self.generation += 1
            return
        if assertion.store_key in self._seen_keys:
            raise DuplicateAssertionError(
                f"duplicate p-assertion {assertion.store_key}"
            )
        self._seen_keys.add(assertion.store_key)
        if isinstance(assertion, InteractionPAssertion):
            self._interactions.setdefault(assertion.interaction_key, []).append(
                assertion
            )
            self._n_interactions += 1
        elif isinstance(assertion, ActorStatePAssertion):
            self._actor_state.setdefault(assertion.interaction_key, []).append(
                assertion
            )
            self._n_actor_state += 1
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown assertion type {type(assertion)}")
        if assertion.interaction_key not in self._all_keys:
            self._all_keys.add(assertion.interaction_key)
            self._sorted_keys = None
        self._order.append(assertion)
        self.generation += 1

    # -- lookups -----------------------------------------------------------
    def interaction_keys(self) -> List[InteractionKey]:
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._all_keys)
        return list(self._sorted_keys)

    def interaction_passertions(
        self, key: InteractionKey, view: Optional[ViewKind] = None
    ) -> List[InteractionPAssertion]:
        found = self._interactions.get(key, [])
        if view is None:
            return list(found)
        return [p for p in found if p.view == view]

    def actor_state_passertions(
        self,
        key: InteractionKey,
        view: Optional[ViewKind] = None,
        state_type: Optional[str] = None,
    ) -> List[ActorStatePAssertion]:
        found = self._actor_state.get(key, [])
        return [
            p
            for p in found
            if (view is None or p.view == view)
            and (state_type is None or p.state_type == state_type)
        ]

    def group_members(self, group_id: str) -> List[InteractionKey]:
        entry = self._groups.get(group_id)
        return entry.ordered_members() if entry else []

    def groups_of(self, key: InteractionKey) -> List[str]:
        cached = self._groups_of_cache.get(key)
        if cached is None:
            memberships = self._by_group_member.get(key)
            if memberships is None:
                return []  # don't grow the cache for keys with no memberships
            cached = sorted(memberships)
            self._groups_of_cache[key] = cached
        return list(cached)

    def group_ids(self, kind: Optional[str] = None) -> List[str]:
        # A group's kind is fixed at creation, so the per-kind sorted view
        # only invalidates when a new group id appears (see add()).  Empty
        # results are not cached: ``kind`` is client-controlled, and caching
        # misses would let query traffic grow the dict without bound.
        cached = self._group_ids_cache.get(kind)
        if cached is None:
            cached = sorted(
                gid
                for gid, entry in self._groups.items()
                if kind is None or entry.kind == kind
            )
            if cached:
                self._group_ids_cache[kind] = cached
        return list(cached)

    def group_kind(self, group_id: str) -> Optional[str]:
        entry = self._groups.get(group_id)
        return entry.kind if entry else None

    def group_kinds(self, group_ids: Optional[Iterable[str]] = None) -> Dict[str, str]:
        """Bulk kind lookup: ``{group_id: kind}`` in one pass.

        With ``group_ids`` None, covers every group in the store; unknown
        ids are omitted from the result.
        """
        if group_ids is None:
            return {gid: entry.kind for gid, entry in self._groups.items()}
        groups = self._groups
        out: Dict[str, str] = {}
        for gid in group_ids:
            entry = groups.get(gid)
            if entry is not None:
                out[gid] = entry.kind
        return out

    def all_assertions(self) -> Iterator[Assertion]:
        return iter(self._order)

    def counts(self) -> StoreCounts:
        return StoreCounts(
            interaction_passertions=self._n_interactions,
            actor_state_passertions=self._n_actor_state,
            group_assertions=self._n_groups,
            interaction_records=len(self._all_keys),
        )

    # -- checkpointing -------------------------------------------------------
    #: serialize() format tag; restore() rejects anything else.
    SERIAL_FORMAT = "store-index/1"

    @property
    def record_count(self) -> int:
        """Records in insertion order — including idempotent group
        re-assertions, so this can exceed ``counts().total``."""
        return len(self._order)

    def serialize(self) -> bytes:
        """The index as a replayable record stream (for checkpoints).

        We snapshot ``_order`` — the complete insertion-ordered assertion
        stream — rather than the derived tables: :meth:`restore` re-adds
        each record through :meth:`add`, so every derived structure,
        counter, and the write ``generation`` come out exactly as a full
        replay of the same records would produce them.  That equivalence
        is what makes snapshot-then-tail recovery indistinguishable from
        full replay.
        """
        import pickle

        return pickle.dumps(
            (self.SERIAL_FORMAT, self._order), protocol=pickle.HIGHEST_PROTOCOL
        )

    def restore(self, blob: bytes) -> List[Assertion]:
        """Replay a :meth:`serialize` blob into this (empty) index.

        Returns the restored assertions in insertion order so the caller
        can cross-check the count against its own bookkeeping.  Raises
        ``ValueError`` on a format-tag mismatch and whatever :mod:`pickle`
        raises on damage — callers treat any failure as "snapshot
        unusable" and fall down the recovery ladder.
        """
        import pickle

        if self._order:
            raise ValueError("restore() requires an empty index")
        tag, order = pickle.loads(blob)
        if tag != self.SERIAL_FORMAT:
            raise ValueError(
                f"snapshot index format {tag!r} != {self.SERIAL_FORMAT!r}"
            )
        for assertion in order:
            self.add(assertion)
        return list(order)


class GroupKindMembers:
    """Membership of one group: kind plus (optionally sequenced) members."""

    def __init__(self, kind: str):
        self.kind = kind
        self.members: List[Tuple[Optional[int], InteractionKey]] = []
        self._member_set: Set[InteractionKey] = set()
        self._ordered: Optional[List[InteractionKey]] = None

    def add(self, member: InteractionKey, sequence: Optional[int]) -> bool:
        """Add a member; returns False for idempotent re-assertions."""
        if member in self._member_set:
            return False  # membership assertions are idempotent
        self._member_set.add(member)
        self.members.append((sequence, member))
        self._ordered = None
        return True

    def ordered_members(self) -> List[InteractionKey]:
        if self._ordered is None:

            def sort_key(item: Tuple[Optional[int], InteractionKey]):
                seq, member = item
                return (0, seq, member) if seq is not None else (1, 0, member)

            self._ordered = [m for _, m in sorted(self.members, key=sort_key)]
        return list(self._ordered)


class ProvenanceStoreInterface(ABC):
    """The backend API the plug-ins program against.

    Every write bumps the index's **write generation** (see
    :attr:`generation`); read-side caches key their entries on it and
    revalidate with a single integer comparison — the invalidation contract
    :mod:`repro.store.querycache` builds on.
    """

    def __init__(self) -> None:
        self._index = StoreIndex()
        #: Background maintenance attached by the store factory
        #: (``make_backend(..., auto_compact=...)``): a
        #: :class:`repro.store.maintenance.CompactionScheduler`, or None.
        #: :meth:`close` stops it before releasing backend resources.
        self.maintenance: Optional[object] = None

    @property
    def generation(self) -> int:
        """Monotonically increasing write counter (bumped by put/put_many)."""
        return self._index.generation

    def generation_token(self, scope: Optional[str] = None) -> object:
        """Freshness token for a cached result, optionally scope-narrowed.

        ``scope`` is the canonical interaction-scope string of a key-scoped
        query (see :func:`interaction_scope` in this module), or ``None``
        for store-wide queries.  The default ignores the scope and
        returns the whole-store generation; sharded backends override this
        to return a per-shard token so unrelated writes keep scoped results
        cached.  Tokens are opaque — caches must compare them only for
        equality.
        """
        return self._index.generation

    # -- write path ---------------------------------------------------------
    def put(self, assertion: Assertion) -> None:
        """Record one assertion: index it, then persist it."""
        self._index.add(assertion)
        self._persist(assertion)

    def put_many(self, assertions: Iterable[Assertion]) -> int:
        """Record a batch of assertions; returns how many were stored.

        Semantically identical to calling :meth:`put` once per assertion —
        duplicate detection and group idempotence behave the same, and an
        *indexing* failure partway through still persists the assertions
        indexed before it (exactly what a ``put`` loop would have durably
        written) before the exception propagates.  Backends override
        :meth:`_persist_many` to turn the batch into a single group commit;
        if the group commit itself fails, which subset became durable is
        backend-specific (a sharded log commits per shard, so the durable
        subset need not be a prefix) — treat the whole batch as in doubt.
        """
        accepted: List[Assertion] = []
        try:
            for assertion in assertions:
                self._index.add(assertion)
                accepted.append(assertion)
        except BaseException as exc:
            # Persist the accepted prefix, but never let a persist failure
            # mask the indexing error that actually stopped the batch: the
            # original exception propagates, with the persist failure
            # chained as its cause.
            if accepted:
                try:
                    self._persist_many(accepted)
                except BaseException as persist_exc:
                    raise exc from persist_exc
            raise
        if accepted:
            self._persist_many(accepted)
        return len(accepted)

    def pipelined_ingest(
        self,
        depth: int = 4,
        decode: Optional[Callable[[Any], Any]] = None,
        workers: Optional[int] = None,
    ) -> "Any":
        """A :class:`~repro.store.pipeline.PipelinedIngest` over this store.

        The engine's commit stage is this backend's :meth:`put_many` —
        driven from the engine's single committer thread, satisfying the
        backends' serial-write-path contract — while ``decode`` (if any)
        runs on worker threads one batch ahead.  Use as a context manager
        so no write is in flight once the block exits::

            with backend.pipelined_ingest(depth=4) as engine:
                for batch in batches:
                    engine.submit(batch)
                engine.flush()
        """
        from repro.store.pipeline import PipelinedIngest

        return PipelinedIngest(
            commit=self.put_many, decode=decode, depth=depth, workers=workers
        )

    @abstractmethod
    def _persist(self, assertion: Assertion) -> None:
        """Backend-specific durability for one assertion."""

    def _persist_many(self, assertions: Sequence[Assertion]) -> None:
        """Backend-specific durability for a batch (default: one by one)."""
        for assertion in assertions:
            self._persist(assertion)

    def close(self) -> None:
        """Release backend resources; stops attached background maintenance.

        Subclasses that hold resources must call ``super().close()`` first
        so an in-flight background compaction finishes (or is joined)
        before the resources it uses disappear.
        """
        if self.maintenance is not None:
            self.maintenance.stop()

    # -- read path (delegated to the index) ----------------------------------
    def interaction_keys(self) -> List[InteractionKey]:
        return self._index.interaction_keys()

    def interaction_passertions(
        self, key: InteractionKey, view: Optional[ViewKind] = None
    ) -> List[InteractionPAssertion]:
        return self._index.interaction_passertions(key, view)

    def actor_state_passertions(
        self,
        key: InteractionKey,
        view: Optional[ViewKind] = None,
        state_type: Optional[str] = None,
    ) -> List[ActorStatePAssertion]:
        return self._index.actor_state_passertions(key, view, state_type)

    def passertion_counts(self, key: InteractionKey) -> Tuple[int, int]:
        """``(interaction, actor-state)`` p-assertion counts for one key.

        One store call where asking for the two lists separately costs
        two — over the socket transport that halves the round trips the
        federated ``counts()`` path pays per key.  Composed from the
        public per-key reads so wrapping/overriding stores keep their
        semantics (a store that rejects reads rejects this too).
        """
        return (
            len(self.interaction_passertions(key)),
            len(self.actor_state_passertions(key)),
        )

    def group_members(self, group_id: str) -> List[InteractionKey]:
        return self._index.group_members(group_id)

    def groups_of(self, key: InteractionKey) -> List[str]:
        return self._index.groups_of(key)

    def group_ids(self, kind: Optional[str] = None) -> List[str]:
        return self._index.group_ids(kind)

    def group_kind(self, group_id: str) -> Optional[str]:
        return self._index.group_kind(group_id)

    def group_kinds(self, group_ids: Optional[Iterable[str]] = None) -> Dict[str, str]:
        return self._index.group_kinds(group_ids)

    def all_assertions(self) -> Iterator[Assertion]:
        return self._index.all_assertions()

    def counts(self) -> StoreCounts:
        return self._index.counts()
