"""Tests for the semantic-type ontology."""

from __future__ import annotations

import pytest

from repro.registry.ontology import (
    Ontology,
    T_AA_SEQUENCE,
    T_DATA,
    T_ENCODED,
    T_NT_SEQUENCE,
    T_PERMUTATION,
    T_SAMPLE,
    T_SEQUENCE,
    build_experiment_ontology,
)
from repro.soa.xmldoc import parse_xml


class TestOntology:
    def test_add_and_query(self):
        onto = Ontology()
        onto.add_type("thing")
        onto.add_type("animal", ["thing"])
        onto.add_type("dog", ["animal"])
        assert onto.subsumes("thing", "dog")
        assert onto.subsumes("animal", "dog")
        assert not onto.subsumes("dog", "animal")

    def test_subsumption_reflexive(self):
        onto = Ontology()
        onto.add_type("x")
        assert onto.subsumes("x", "x")

    def test_unknown_parent_rejected(self):
        onto = Ontology()
        with pytest.raises(KeyError):
            onto.add_type("child", ["ghost"])

    def test_cycle_rejected(self):
        onto = Ontology()
        onto.add_type("a")
        onto.add_type("b", ["a"])
        with pytest.raises(ValueError, match="cycle"):
            onto.add_type("a", ["b"])

    def test_multiple_inheritance(self):
        onto = Ontology()
        onto.add_type("a")
        onto.add_type("b")
        onto.add_type("c", ["a", "b"])
        assert onto.subsumes("a", "c") and onto.subsumes("b", "c")
        assert onto.ancestors("c") == {"a", "b"}

    def test_unknown_type_in_subsumes_raises(self):
        onto = Ontology()
        onto.add_type("x")
        with pytest.raises(KeyError):
            onto.subsumes("x", "ghost")

    def test_compatible_is_directional(self):
        onto = Ontology()
        onto.add_type("general")
        onto.add_type("specific", ["general"])
        assert onto.compatible(produced="specific", consumed="general")
        assert not onto.compatible(produced="general", consumed="specific")

    def test_xml_roundtrip(self):
        onto = build_experiment_ontology()
        restored = Ontology.from_xml(parse_xml(onto.to_xml().serialize()))
        assert restored.types() == onto.types()
        for t in onto.types():
            assert restored.parents(t) == onto.parents(t)


class TestExperimentOntology:
    def setup_method(self):
        self.onto = build_experiment_ontology()

    def test_sequence_kinds_are_siblings(self):
        """The UC2 trap: neither sequence kind subsumes the other."""
        assert not self.onto.subsumes(T_AA_SEQUENCE, T_NT_SEQUENCE)
        assert not self.onto.subsumes(T_NT_SEQUENCE, T_AA_SEQUENCE)

    def test_sample_is_amino_acid_sequence(self):
        assert self.onto.subsumes(T_AA_SEQUENCE, T_SAMPLE)
        assert self.onto.subsumes(T_SEQUENCE, T_SAMPLE)

    def test_nucleotide_feeding_protein_service_incompatible(self):
        assert not self.onto.compatible(produced=T_NT_SEQUENCE, consumed=T_AA_SEQUENCE)

    def test_sample_feeding_protein_service_compatible(self):
        assert self.onto.compatible(produced=T_SAMPLE, consumed=T_AA_SEQUENCE)

    def test_permutation_is_encoded(self):
        assert self.onto.compatible(produced=T_PERMUTATION, consumed=T_ENCODED)

    def test_everything_is_data(self):
        for t in self.onto.types():
            assert self.onto.subsumes(T_DATA, t)
