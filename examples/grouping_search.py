#!/usr/bin/env python
"""The scientific application: which amino-acid grouping maximises
compressibility?

Section 2: "The results of this experiment can, for example, be used to
determine the amino acid groupings that maximise compressibility."  This
example sweeps every built-in reduced alphabet against several compressors
and reports the shuffle-normalised compressibility per combination,
with the permutation-derived standard deviation.

Run:  python examples/grouping_search.py
"""

from __future__ import annotations

from repro.bio.analysis import SizeRow, SizesTable, average_results
from repro.bio.encode import encode_by_groups
from repro.bio.groupings import available_groupings, get_grouping
from repro.bio.refseq import RefSeqDatabase, sample_of_size
from repro.bio.shuffle import permutations_of
from repro.compress.api import get_compressor

SAMPLE_BYTES = 3000
N_PERMUTATIONS = 5
CODECS = ("gz-like", "bz-like", "gzip", "bzip2")


def evaluate(sample: str, grouping_name: str, codec_name: str):
    scheme = get_grouping(grouping_name)
    encoded = encode_by_groups(sample, scheme)
    codec = get_compressor(codec_name)
    table = SizesTable()
    table.add(
        SizeRow(
            label="sample",
            codec=codec_name,
            original_size=len(encoded),
            compressed_size=codec.compressed_size(encoded.encode()),
        )
    )
    for i, perm in enumerate(permutations_of(encoded, N_PERMUTATIONS, seed=42)):
        table.add(
            SizeRow(
                label=f"perm-{i}",
                codec=codec_name,
                original_size=len(perm),
                compressed_size=codec.compressed_size(perm.encode()),
            )
        )
    return average_results(table)[codec_name]


def main() -> None:
    db = RefSeqDatabase(seed=7)
    accessions, sample = sample_of_size(db, SAMPLE_BYTES)
    print(f"sample: {len(sample)} residues from {len(accessions)} proteins")
    print(f"permutation standard: {N_PERMUTATIONS} shuffles per measurement\n")

    header = f"{'grouping':<12} {'groups':>6} " + "".join(
        f"{c:>18}" for c in CODECS
    )
    print(header)
    print("-" * len(header))

    best = None
    for grouping_name in available_groupings():
        scheme = get_grouping(grouping_name)
        row = [f"{grouping_name:<12} {scheme.n_groups:>6}"]
        for codec_name in CODECS:
            result = evaluate(sample, grouping_name, codec_name)
            row.append(
                f"  {result.compressibility:.4f}+/-{result.compressibility_std:.4f}"
            )
            if best is None or result.compressibility < best[2]:
                best = (grouping_name, codec_name, result.compressibility)
        print("".join(row))

    grouping, codec, value = best
    print(
        f"\nmost structure exposed by grouping {grouping!r} under {codec!r}: "
        f"compressibility {value:.4f}"
    )
    print("(< 1.0 means the real sequence compresses better than its "
          "shuffles: context structure detected)")


if __name__ == "__main__":
    main()
