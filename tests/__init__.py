"""Test package for the reproduction.

Being a package (rather than a loose directory) lets test modules share
factories via ``from tests.test_store_backends import ...`` regardless of
how pytest is invoked (``pytest`` or ``python -m pytest``).
"""
