"""Edge-path tests across modules: failure propagation, config plumbing."""

from __future__ import annotations

import pytest

from repro.simkit.kernel import Simulator


class TestCombinatorFailures:
    def test_all_of_propagates_child_failure(self, sim):
        def proc():
            good = sim.timeout(5)
            bad = sim.event()
            bad.fail(RuntimeError("child died"), delay=1)
            try:
                yield sim.all_of([good, bad])
            except RuntimeError as exc:
                return f"caught: {exc}"

        result = sim.run_until_complete(sim.process(proc()))
        assert result == "caught: child died"

    def test_any_of_propagates_first_failure(self, sim):
        def proc():
            slow = sim.timeout(10)
            bad = sim.event()
            bad.fail(ValueError("fast failure"), delay=1)
            try:
                yield sim.any_of([slow, bad])
            except ValueError:
                return sim.now

        assert sim.run_until_complete(sim.process(proc())) == 1.0

    def test_any_of_success_beats_later_failure(self, sim):
        def proc():
            quick = sim.timeout(1, value="won")
            bad = sim.event()
            bad.fail(ValueError("late"), delay=5)
            value = yield sim.any_of([quick, bad])
            return value

        assert sim.run_until_complete(sim.process(proc())) == "won"


class TestExperimentVirtualTime:
    def test_store_latency_config_charges_clock(self, experiment_factory):
        cheap = experiment_factory(store_latency_s=0.001)
        cheap_result = cheap.run()
        costly = experiment_factory(store_latency_s=0.2)
        costly_result = costly.run()
        assert costly_result.virtual_time_s > cheap_result.virtual_time_s

    def test_virtual_time_zero_without_recording(self, experiment_factory):
        from repro.core.recorder import RecordingMode

        exp = experiment_factory(recording=RecordingMode.NONE)
        result = exp.run()
        # Workflow services have no round-trip latency model; only the
        # default bandwidth cost (~0.1 ms per KB) is charged.
        assert result.virtual_time_s < 0.05


class TestCondorTimingAccessors:
    def test_wait_and_run_accounting(self):
        from repro.grid.condor import CondorScheduler, GridJob
        from repro.simkit.hosts import Network

        sim = Simulator()
        net = Network(sim)
        net.add_host("submit")
        worker = net.add_host("w0")
        sched = CondorScheduler(
            sim, net, submit_host="submit", workers=[worker],
            matchmaking_delay_s=1.0, per_job_overhead_s=0.25,
        )
        report = sched.run(
            [GridJob(name="a", duration_s=2.0), GridJob(name="b", duration_s=2.0)]
        )
        a, b = report.timing("a"), report.timing("b")
        assert a.wait_s == pytest.approx(1.25)
        assert a.run_s == pytest.approx(2.0)
        # b waited for the slot a held.
        assert b.wait_s > a.wait_s
        assert a.worker == "w0" and b.worker == "w0"


class TestFig5SessionSize:
    def test_session_size_controls_root_fraction(self):
        """Bigger sessions -> fewer unvalidated roots -> ratio closer to 11."""
        from repro.figures.fig5 import measure_point

        small = measure_point(200, session_size=10)
        large = measure_point(200, session_size=100)
        # Larger sessions mean more checked interactions (fewer roots).
        assert large.semantic_registry_calls > small.semantic_registry_calls
