"""PReServ as a service: the message translator and the store actor.

Mirrors Figure 3's layering: envelopes arrive at the :class:`PReServActor`;
the :class:`MessageTranslator` strips them and routes the body to a plug-in
by body element name; plug-ins call the Provenance Store Interface of the
configured backend.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional

from repro.soa.actor import Actor
from repro.soa.envelope import Fault
from repro.soa.xmldoc import XmlElement
from repro.store.interface import Assertion, ProvenanceStoreInterface
from repro.store.plugins import PlugIn, QueryPlugIn, StorePlugIn
from repro.store.querycache import QueryCache

#: The paper's measured record round trip on the testbed: ~18 ms.
PAPER_RECORD_ROUND_TRIP_S = 0.018


class MessageTranslator:
    """Routes stripped message bodies to plug-ins by element name."""

    def __init__(self, plugins: Optional[Iterable[PlugIn]] = None):
        self._routes: Dict[str, PlugIn] = {}
        for plugin in plugins or ():
            self.register(plugin)

    def register(self, plugin: PlugIn) -> None:
        for name in plugin.handles:
            if name in self._routes:
                raise ValueError(f"body element {name!r} already routed")
            self._routes[name] = plugin

    def dispatch(
        self, body: XmlElement, backend: ProvenanceStoreInterface
    ) -> XmlElement:
        plugin = self._routes.get(body.name)
        if plugin is None:
            raise Fault(
                "no-plugin", f"no plug-in accepts body element <{body.name}>"
            )
        return plugin.handle(body, backend)

    def routes(self) -> Dict[str, str]:
        return {name: type(p).__name__ for name, p in self._routes.items()}

    def plugins(self) -> list:
        """The registered plug-ins, each once, in registration order."""
        seen: list = []
        for plugin in self._routes.values():
            if plugin not in seen:
                seen.append(plugin)
        return seen


class PReServActor(Actor):
    """The provenance store web service.

    Exposes ``record`` and ``query`` operations (the paper's two ports);
    both run through the translator so new plug-ins extend the service
    without touching this class.
    """

    def __init__(
        self,
        backend: ProvenanceStoreInterface,
        endpoint: str = "preserv",
        translator: Optional[MessageTranslator] = None,
        enable_query_cache: bool = True,
        pipeline_depth: int = 1,
    ):
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        super().__init__(endpoint, description="PReServ provenance store")
        self.backend = backend
        #: ingest pipelining (see :mod:`repro.store.pipeline`): depth of the
        #: decode→commit pipeline used by the record port's StorePlugIn and
        #: by :meth:`bulk_ingest`; 1 keeps the blocking path.
        self.pipeline_depth = pipeline_depth
        if translator is None:
            query_plugin = QueryPlugIn(enable_cache=enable_query_cache)
            translator = MessageTranslator(
                [StorePlugIn(pipeline_depth=pipeline_depth), query_plugin]
            )
            self.query_cache: Optional[QueryCache] = query_plugin.cache
        else:
            if not enable_query_cache:
                raise ValueError(
                    "enable_query_cache only applies to the default translator; "
                    "configure caching on the supplied translator's QueryPlugIn"
                )
            if pipeline_depth != 1:
                raise ValueError(
                    "pipeline_depth only applies to the default translator; "
                    "configure pipelining on the supplied translator's "
                    "StorePlugIn"
                )
            self.query_cache = next(
                (
                    plugin.cache
                    for plugin in translator.plugins()
                    if isinstance(plugin, QueryPlugIn)
                ),
                None,
            )
        self.translator = translator

    @classmethod
    def with_store(
        cls,
        kind: str,
        path: Optional[str] = None,
        *,
        shards: int = 1,
        sync: bool = True,
        segment_size: int = 256,
        auto_compact: bool = False,
        **kwargs: object,
    ) -> "PReServActor":
        """Stand up an actor over a factory-built backend.

        The service-level way to configure storage — ``kind``/``path`` plus
        the sharding, durability and background-compaction knobs — without
        importing backend classes at the call site.  With
        ``auto_compact=True`` the attached scheduler lives as long as the
        actor's backend: :meth:`close` stops it.
        """
        from repro.store import make_backend

        backend = make_backend(
            kind,
            path,
            shards=shards,
            sync=sync,
            segment_size=segment_size,
            auto_compact=auto_compact,
        )
        return cls(backend, **kwargs)  # type: ignore[arg-type]

    def close(self) -> None:
        """Release the backend (stops attached background maintenance)."""
        self.backend.close()

    def maintenance_stats(self):
        """Background-compaction counters, or None when no scheduler runs.

        A :class:`repro.store.maintenance.CompactionStats` snapshot —
        ``compactions_run`` / ``bytes_reclaimed`` feed the figures layer.
        """
        scheduler = getattr(self.backend, "maintenance", None)
        return None if scheduler is None else scheduler.stats()

    def store_generation(self) -> int:
        """The backend's write generation (for client-side result caches)."""
        return self.backend.generation

    def store_generation_token(self, scope: Optional[str] = None) -> object:
        """Scoped freshness token (per-shard on a sharded backend)."""
        return self.backend.generation_token(scope)

    def store_shard_generations(self) -> tuple:
        """Per-shard write generations, ``(generation,)`` when unsharded."""
        shard_gens = getattr(self.backend, "shard_generations", None)
        if shard_gens is not None:
            return shard_gens()
        return (self.backend.generation,)

    def op_record(self, payload: XmlElement) -> XmlElement:
        if payload.name not in ("prep-record", "prep-record-batch"):
            raise Fault(
                "bad-request", f"record port got <{payload.name}>"
            )
        return self.translator.dispatch(payload, self.backend)

    def bulk_ingest(
        self,
        assertions: Iterable[Assertion],
        pipeline_depth: Optional[int] = None,
        batch_size: int = 256,
    ) -> int:
        """Local bulk load straight into the backend's group-commit path.

        Skips the wire codec (no envelopes, no XML round trip) but keeps
        full store semantics — duplicate detection, indexing, durability —
        via :meth:`ProvenanceStoreInterface.put_many`.  This is the
        admin-side ingest used to seed large stores.

        With a pipeline depth > 1 (the argument, falling back to the
        actor's configured :attr:`pipeline_depth`), the stream is sliced
        into ``batch_size`` group commits driven through a
        :class:`~repro.store.pipeline.PipelinedIngest`: the producer
        materializes batch k+1 from the (possibly generated) stream while
        batch k fsyncs, and memory is bounded by ``depth`` batches instead
        of the whole stream.  Commit order is stream order, so the store
        replays identically to the blocking path.
        """
        depth = self.pipeline_depth if pipeline_depth is None else pipeline_depth
        if depth <= 1:
            return self.backend.put_many(assertions)
        stream = iter(assertions)
        with self.backend.pipelined_ingest(depth=depth) as engine:
            while True:
                batch = list(itertools.islice(stream, batch_size))
                if not batch:
                    break
                engine.submit(batch)
            engine.flush()
            return engine.stats.records_committed

    def op_query(self, payload: XmlElement) -> XmlElement:
        if payload.name != "prep-query":
            raise Fault("bad-request", f"query port got <{payload.name}>")
        return self.translator.dispatch(payload, self.backend)
