"""Compaction sweep: background reclamation vs stop-the-world compaction.

The paper's PReServ records continuously into a Berkeley DB JE backend,
whose cleaner reclaims dead space in the background.  Our log-structured
substitutes reclaim only on request, so a store under *churn* (put /
delete / re-put of hot interactions) either grows without bound or stalls
ingest for stop-the-world ``compact()`` calls.  This sweep measures the
:mod:`repro.store.maintenance` answer on a workload shaped like a real
provenance store: a large **cold** bulk (old interactions, never touched
again) plus a small **hot** key set being overwritten by concurrent
recording sessions.

Three reclamation policies over the same churn, same shard count:

* ``none`` — ingest only; dead bytes accumulate forever (the footprint
  ratio column shows the unbounded growth);
* ``manual`` — every N batches all clients stop and one calls the
  whole-store ``compact()``: the pre-scheduler discipline.  Footprint is
  bounded, but every sweep rewrites the cold majority too, and the stall
  is on the ingest clock;
* ``scheduler`` — a :class:`~repro.store.maintenance.CompactionScheduler`
  polls per-shard dead-byte ratios in the background and compacts only
  the worst shard per tick.  Cold shards are never rewritten, and the
  two-phase :meth:`~repro.store.kvlog.KVLog.compact` keeps writers
  flowing during the rewrite.

The interesting columns: sustained ``records/s`` (scheduler should beat
the manual stall comfortably) and ``max footprint/live`` (both reclaiming
policies should hold it bounded; ``none`` should not).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.figures.stats import format_table
from repro.store.backends import scope_prefix
from repro.store.maintenance import CompactionScheduler
from repro.store.sharding import ShardedKVLog, pipe_partition, shard_index

POLICIES = ("none", "manual", "scheduler")


@dataclass(frozen=True)
class CompactionSweepPoint:
    """One policy's run over the churn workload."""

    policy: str
    shards: int
    clients: int
    records: int
    elapsed_s: float
    compactions: int
    bytes_reclaimed: int
    final_bytes: int
    final_dead_bytes: int
    #: worst sampled footprint/live ratio while the run was in flight.
    max_footprint_ratio: float

    @property
    def records_per_s(self) -> float:
        return self.records / self.elapsed_s if self.elapsed_s else float("inf")

    @property
    def final_footprint_ratio(self) -> float:
        live = self.final_bytes - self.final_dead_bytes
        return self.final_bytes / live if live > 0 else float("inf")


def _hot_prefix(client: int, shards: int) -> bytes:
    """A session prefix whose records land on shard ``client``.

    Pins each simulated session to its own shard so the churn is skewed
    the way real recording is: a few hot shards, the rest cold.
    """
    candidate = 0
    while True:
        prefix = scope_prefix(f"hot-session-{client}-{candidate}")
        if shard_index(prefix, shards) == client:
            return prefix
        candidate += 1


def _client_batches(
    client: int,
    shards: int,
    batches: int,
    records_per_batch: int,
    keyspace: int,
    value_bytes: int,
) -> List[List[Tuple[bytes, bytes]]]:
    """Pre-encoded churn batches: the same ``keyspace`` keys re-put forever."""
    prefix = _hot_prefix(client, shards)
    out: List[List[Tuple[bytes, bytes]]] = []
    counter = 0
    for _ in range(batches):
        batch = []
        for _ in range(records_per_batch):
            k = counter % keyspace
            batch.append(
                (
                    prefix + b"|key-%04d" % k,
                    b"v%06d" % counter + b"x" * value_bytes,
                )
            )
            counter += 1
        out.append(batch)
    return out


def run_compaction_sweep(
    tmp_dir: Path,
    policies: Sequence[str] = POLICIES,
    shards: int = 8,
    clients: int = 2,
    batches_per_client: int = 96,
    records_per_batch: int = 16,
    keyspace: int = 32,
    value_bytes: int = 2048,
    cold_records: int = 2000,
    cold_value_bytes: int = 2048,
    manual_every: int = 8,
    sync: bool = True,
    min_score: float = 0.30,
    min_reclaim_bytes: int = 16384,
    poll_interval_s: float = 0.002,
) -> List[CompactionSweepPoint]:
    """Run the churn workload once per policy; returns one point each."""
    if clients < 1 or clients > shards:
        raise ValueError("clients must be within [1, shards] (one hot shard each)")
    if batches_per_client < 1 or records_per_batch < 1 or keyspace < 1:
        raise ValueError("batches, records per batch and keyspace must be >= 1")
    if manual_every < 1:
        raise ValueError("manual_every must be >= 1")
    unknown = set(policies) - set(POLICIES)
    if unknown:
        raise ValueError(f"unknown policies {sorted(unknown)}; pick from {POLICIES}")
    sessions = [
        _client_batches(
            c, shards, batches_per_client, records_per_batch, keyspace, value_bytes
        )
        for c in range(clients)
    ]
    cold = [
        (scope_prefix(f"cold-{i}") + b"|%08d" % i, b"c" * cold_value_bytes)
        for i in range(cold_records)
    ]
    total_records = clients * batches_per_client * records_per_batch

    def one_run(policy: str, root: Path) -> CompactionSweepPoint:
        log = ShardedKVLog(root, shards=shards, sync=sync, partition=pipe_partition)
        scheduler: Optional[CompactionScheduler] = None
        manual_stats = [0, 0]  # compactions, bytes reclaimed
        samples: List[float] = []
        try:
            if cold:
                log.put_many(cold)  # the cold bulk loads off the clock
            if policy == "scheduler":
                scheduler = CompactionScheduler(
                    poll_interval_s=poll_interval_s,
                    min_score=min_score,
                    min_reclaim_bytes=min_reclaim_bytes,
                )
                scheduler.register(log, "churn")
                scheduler.start()
            stop_world = threading.Barrier(clients)
            failures: List[BaseException] = []

            def client(c: int) -> None:
                try:
                    for i, batch in enumerate(sessions[c]):
                        log.put_many(batch)
                        # The churn's delete leg: the key comes back with
                        # the next keyspace cycle (put / delete / re-put).
                        log.delete(batch[0][0])
                        if policy == "manual" and (i + 1) % manual_every == 0:
                            # Stop the world: every client waits while one
                            # runs the whole-store compaction, exactly the
                            # discipline a store without the scheduler
                            # needs to bound its footprint.
                            stop_world.wait(timeout=60.0)
                            if c == 0:
                                before = log.file_size()
                                log.compact()
                                manual_stats[0] += 1
                                manual_stats[1] += max(0, before - log.file_size())
                            stop_world.wait(timeout=60.0)
                        if c == 0:
                            size = log.file_size()
                            live = size - log.dead_bytes
                            if live > 0:
                                samples.append(size / live)
                except BaseException as exc:  # surfaced after join
                    failures.append(exc)
                    # Break any siblings parked at the barrier: a dead
                    # client must fail the sweep, not hang it.
                    stop_world.abort()

            threads = [
                threading.Thread(target=client, args=(c,)) for c in range(clients)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            if failures:
                raise failures[0]
            if scheduler is not None:
                scheduler.stop()
                stats = scheduler.stats()
                compactions, reclaimed = stats.compactions_run, stats.bytes_reclaimed
            else:
                compactions, reclaimed = manual_stats
            final_bytes = log.file_size()
            final_dead = log.dead_bytes
        finally:
            if scheduler is not None:
                scheduler.stop()
            log.close()
        return CompactionSweepPoint(
            policy=policy,
            shards=shards,
            clients=clients,
            records=total_records,
            elapsed_s=elapsed,
            compactions=compactions,
            bytes_reclaimed=reclaimed,
            final_bytes=final_bytes,
            final_dead_bytes=final_dead,
            max_footprint_ratio=max(samples) if samples else 0.0,
        )

    return [one_run(policy, tmp_dir / f"churn-{policy}") for policy in policies]


def compaction_table(points: List[CompactionSweepPoint]) -> str:
    base_point = next((p for p in points if p.policy == "manual"), None)
    base = base_point.records_per_s if base_point else 0.0
    headers = [
        "policy",
        "records/s",
        "vs manual",
        "compactions",
        "reclaimed MB",
        "final MB",
        "max foot/live",
    ]
    rows = [
        [
            p.policy,
            f"{p.records_per_s:.0f}",
            f"{p.records_per_s / base:.2f}x" if base else "-",
            p.compactions,
            f"{p.bytes_reclaimed / 1e6:.1f}",
            f"{p.final_bytes / 1e6:.1f}",
            f"{p.max_footprint_ratio:.2f}",
        ]
        for p in points
    ]
    return format_table(headers, rows)


@dataclass(frozen=True)
class FoldSweepPoint:
    """File-system backend: single-put debris before/after background folds."""

    puts: int
    segment_size: int
    files_before: int
    files_after: int
    folds: int
    elapsed_s: float


def run_fold_sweep(
    tmp_dir: Path,
    puts: int = 256,
    segment_size: int = 64,
    sync: bool = False,
) -> FoldSweepPoint:
    """Fine-grained FS ingest, then scheduler-driven segment folding."""
    from repro.core.passertion import (
        InteractionKey,
        InteractionPAssertion,
        ViewKind,
    )
    from repro.soa.xmldoc import XmlElement
    from repro.store.backends import FileSystemBackend

    store = FileSystemBackend(tmp_dir / "fs", segment_size=segment_size, sync=sync)
    try:
        for i in range(puts):
            content = XmlElement("doc")
            content.add(f"message {i}")
            store.put(
                InteractionPAssertion(
                    interaction_key=InteractionKey(
                        interaction_id=f"fold-{i}", sender="s", receiver="r"
                    ),
                    view=ViewKind.SENDER,
                    asserter="bench",
                    local_id=f"fold-{i}",
                    operation="record",
                    content=content,
                )
            )
        files_before = len(list((tmp_dir / "fs").glob("*.xml")))
        scheduler = CompactionScheduler(
            poll_interval_s=0.001, min_score=0.05, min_reclaim_bytes=1
        )
        scheduler.register(store, "fs")
        start = time.perf_counter()
        folds = scheduler.drain()
        elapsed = time.perf_counter() - start
        files_after = len(list((tmp_dir / "fs").glob("*.xml")))
    finally:
        store.close()
    return FoldSweepPoint(
        puts=puts,
        segment_size=segment_size,
        files_before=files_before,
        files_after=files_after,
        folds=folds,
        elapsed_s=elapsed,
    )


def fold_table(point: FoldSweepPoint) -> str:
    headers = ["puts", "segment", "files before", "files after", "folds", "fold s"]
    rows = [
        [
            point.puts,
            point.segment_size,
            point.files_before,
            point.files_after,
            point.folds,
            f"{point.elapsed_s:.3f}",
        ]
    ]
    return format_table(headers, rows)
