"""Background store maintenance: the compaction scheduler.

The paper's evaluated PReServ leans on Berkeley DB JE, whose cleaner
threads reclaim dead space continuously while the store keeps serving.
Our log-structured substitutes only reclaim when someone asks: the KVLog
layouts accumulate dead bytes until ``compact()`` and the file-system
backend accumulates one-file-per-put debris until ``fold_segments()``.
:class:`CompactionScheduler` is that someone — a background thread that

* polls every registered store for *reclamation pressure*,
* picks the **single worst target per tick** (one shard, one fold run —
  never a stop-the-world sweep),
* rate-limits itself (a minimum interval between compactions and an
  optional bytes-per-second budget), and
* relies on the two-phase :meth:`~repro.store.kvlog.KVLog.compact` and the
  rename-then-delete fold of
  :meth:`~repro.store.backends.FileSystemBackend.fold_segments`, so the
  ingest path is never stalled for a rewrite.

The scheduler is store-agnostic.  Anything exposing the **reclaim
protocol** can register::

    reclaim_candidates() -> [(target, score, reclaimable_bytes, cost_bytes)]
    reclaim(target) -> bytes_reclaimed

``score`` is the store's own pressure measure in [0, 1] (dead-byte ratio
for the log layouts, foldable-backlog fraction for the file-system
backend); ``reclaimable_bytes`` gates tiny targets below
``min_reclaim_bytes``; ``cost_bytes`` — roughly the bytes a reclamation
must read+write — feeds the bytes-per-second limiter.  :class:`KVLog`,
:class:`ShardedKVLog`, :class:`KVLogBackend` and :class:`FileSystemBackend`
all implement the protocol.

Stores may additionally expose the **checkpoint protocol**::

    checkpoint_candidates() -> [(target, score, reclaimable_bytes, cost_bytes)]
    run_checkpoint(target) -> bytes_truncated

Checkpoint candidates compete with reclaim candidates for the same
single-action-per-tick slot under the same thresholds, so a tick either
compacts *or* snapshots — never both.  The persistent backends publish a
checkpoint candidate once their un-snapshotted log tail outgrows their
``checkpoint_bytes`` bound (see
:meth:`~repro.store.backends.KVLogBackend.checkpoint`).

Wiring: ``make_backend(..., auto_compact=True)`` attaches and starts a
scheduler whose lifetime is tied to the backend (``backend.close()`` stops
it); ``sharded_store_fleet(..., auto_compact=True)`` shares one scheduler
across the fleet so at most one member compacts at a time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CompactionEvent:
    """One completed maintenance action (background tick or manual :meth:`tick`).

    ``kind`` is ``"compact"`` for dead-byte reclamation via the reclaim
    protocol and ``"checkpoint"`` for an index snapshot + log-prefix
    truncation via the checkpoint protocol; ``reclaimed`` then counts the
    prefix bytes the truncation dropped.
    """

    store: str
    target: object
    score: float
    reclaimed: int
    cost_bytes: int
    elapsed_s: float
    kind: str = "compact"


@dataclass
class CompactionStats:
    """Scheduler counters, surfaced to the figures layer."""

    compactions_run: int = 0
    bytes_reclaimed: int = 0
    checkpoints_run: int = 0
    checkpoint_bytes_truncated: int = 0
    ticks: int = 0
    skipped_rate_limited: int = 0
    errors: int = 0
    last_error: Optional[str] = None
    last_event: Optional[CompactionEvent] = None
    #: per-store ``(compactions_run, bytes_reclaimed)``.
    per_store: Dict[str, Tuple[int, int]] = field(default_factory=dict)


class CompactionScheduler:
    """Shard-aware background compaction over registered stores.

    Each tick polls every store's :meth:`reclaim_candidates` and compacts
    the single candidate with the highest score that clears both
    thresholds (``min_score`` and ``min_reclaim_bytes``).  One target per
    tick keeps the maintenance I/O footprint small and predictable; the
    rate limits bound it further:

    * ``min_interval_s`` — at least this long between compactions;
    * ``max_bytes_per_s`` — after compacting a target that cost ``C``
      bytes of rewrite I/O, wait at least ``C / max_bytes_per_s`` before
      the next one (None disables the budget).

    A target whose reclamation *fails* is put on an ``error_backoff_s``
    cooldown (and the failure recorded in the stats), so one sick store
    can never starve its siblings' maintenance.

    ``clock`` is injectable for tests.  Thread-safe; ``start``/``stop``
    are idempotent, and the scheduler usable purely synchronously via
    :meth:`tick`/:meth:`drain` without ever starting the thread.
    """

    def __init__(
        self,
        *,
        poll_interval_s: float = 0.05,
        min_score: float = 0.30,
        min_reclaim_bytes: int = 4096,
        min_interval_s: float = 0.0,
        max_bytes_per_s: Optional[float] = None,
        error_backoff_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be > 0")
        if not 0.0 <= min_score <= 1.0:
            raise ValueError("min_score must be within [0, 1]")
        if min_reclaim_bytes < 0:
            raise ValueError("min_reclaim_bytes must be >= 0")
        if min_interval_s < 0:
            raise ValueError("min_interval_s must be >= 0")
        if max_bytes_per_s is not None and max_bytes_per_s <= 0:
            raise ValueError("max_bytes_per_s must be > 0 (or None)")
        if error_backoff_s < 0:
            raise ValueError("error_backoff_s must be >= 0")
        self.poll_interval_s = poll_interval_s
        self.min_score = min_score
        self.min_reclaim_bytes = min_reclaim_bytes
        self.min_interval_s = min_interval_s
        self.max_bytes_per_s = max_bytes_per_s
        self.error_backoff_s = error_backoff_s
        self._clock = clock
        self._stores: Dict[str, object] = {}
        #: (store name, target) -> clock time its error cooldown expires.
        self._cooldowns: Dict[Tuple[str, object], float] = {}
        # Guards the registry, the stats, and the rate-limit state; never
        # held across a reclaim call, so stats() stays responsive while a
        # compaction runs.
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._next_allowed = float("-inf")
        self._stats = CompactionStats()

    # -- registry -----------------------------------------------------------
    def register(self, store: object, name: Optional[str] = None) -> str:
        """Add a store to the polling set; returns its registered name."""
        if not hasattr(store, "reclaim_candidates") or not hasattr(store, "reclaim"):
            raise TypeError(
                f"{type(store).__name__} does not implement the reclaim "
                f"protocol (reclaim_candidates/reclaim)"
            )
        with self._lock:
            if name is None:
                name = f"store-{len(self._stores):02d}"
            if name in self._stores:
                raise ValueError(f"store {name!r} already registered")
            self._stores[name] = store
        return name

    def unregister(self, name: str) -> None:
        with self._lock:
            self._stores.pop(name, None)

    def registered(self) -> List[str]:
        with self._lock:
            return list(self._stores)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Start the background thread (no-op if already running)."""
        with self._lock:
            if self._thread is not None:
                return
            # Each thread owns its stop event: a stop() racing a fresh
            # start() can then only ever signal the thread it joined, never
            # strand (or double-run) the new one.
            stop_event = threading.Event()
            self._stop_event = stop_event
            self._thread = threading.Thread(
                target=self._run,
                args=(stop_event,),
                name="compaction-scheduler",
                daemon=True,
            )
            self._thread.start()

    def stop(self) -> None:
        """Stop and join the background thread (no-op if not running).

        An in-flight compaction finishes first — stopping never tears a
        rewrite, it only stops scheduling new ones.
        """
        with self._lock:
            thread = self._thread
            stop_event = self._stop_event
            self._thread = None
        if thread is None:
            return
        stop_event.set()
        thread.join()

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "CompactionScheduler":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _run(self, stop_event: threading.Event) -> None:
        while not stop_event.wait(self.poll_interval_s):
            try:
                self.tick()
            except Exception as exc:  # pragma: no cover - last-resort guard
                with self._lock:
                    self._stats.errors += 1
                    self._stats.last_error = repr(exc)

    def _note_error(self, name: str, target: object, exc: BaseException) -> None:
        with self._lock:
            self._stats.errors += 1
            self._stats.last_error = f"{name}: {exc!r}"
            self._cooldowns[(name, target)] = self._clock() + self.error_backoff_s

    # -- the scheduling core -------------------------------------------------
    def tick(self, force: bool = False) -> Optional[CompactionEvent]:
        """Poll all stores, compact the single worst target (or nothing).

        Honors the rate limits unless ``force``; returns the event for a
        compaction that ran, else None.  A store that fails — polling or
        reclaiming — is recorded in the stats and (for a reclaim failure)
        cooled down, never raised out of the scheduling loop.
        """
        now = self._clock()
        with self._lock:
            self._stats.ticks += 1
            if not force and now < self._next_allowed:
                self._stats.skipped_rate_limited += 1
                return None
            stores = list(self._stores.items())
            cooldowns = dict(self._cooldowns)
        best: Optional[Tuple[float, str, object, object, int, int, str]] = None
        for name, store in stores:
            if cooldowns.get((name, None), float("-inf")) > now:
                continue  # the whole store is cooling down a poll failure
            polls: List[Tuple[str, Callable[[], object]]] = [
                ("compact", store.reclaim_candidates)
            ]
            if hasattr(store, "checkpoint_candidates"):
                polls.append(("checkpoint", store.checkpoint_candidates))
            for kind, poll in polls:
                try:
                    candidates = poll()
                except Exception as exc:
                    self._note_error(name, None, exc)
                    continue
                for target, score, reclaimable, cost in candidates:
                    if score < self.min_score or reclaimable < self.min_reclaim_bytes:
                        continue
                    if cooldowns.get((name, target), float("-inf")) > now:
                        continue
                    if best is None or score > best[0]:
                        best = (score, name, store, target, reclaimable, cost, kind)
        if best is None:
            return None
        score, name, store, target, _reclaimable, cost, kind = best
        started = self._clock()
        try:
            if kind == "checkpoint":
                reclaimed = store.run_checkpoint(target)
            else:
                reclaimed = store.reclaim(target)
        except Exception as exc:
            self._note_error(name, target, exc)
            return None
        elapsed = self._clock() - started
        event = CompactionEvent(
            store=name,
            target=target,
            score=score,
            reclaimed=reclaimed,
            cost_bytes=cost,
            elapsed_s=elapsed,
            kind=kind,
        )
        with self._lock:
            if kind == "checkpoint":
                self._stats.checkpoints_run += 1
                self._stats.checkpoint_bytes_truncated += reclaimed
            else:
                self._stats.compactions_run += 1
                self._stats.bytes_reclaimed += reclaimed
            runs, reclaimed_total = self._stats.per_store.get(name, (0, 0))
            self._stats.per_store[name] = (runs + 1, reclaimed_total + reclaimed)
            self._stats.last_event = event
            delay = self.min_interval_s
            if self.max_bytes_per_s is not None:
                delay = max(delay, cost / self.max_bytes_per_s)
            self._next_allowed = self._clock() + delay
        return event

    def drain(self, max_rounds: int = 1000) -> int:
        """Compact until no candidate clears the thresholds (ignores limits).

        The synchronous settle used by shutdown hooks and benchmarks; each
        successful compaction drops its target's pressure, so this
        terminates.  Returns the number of compactions run.
        """
        rounds = 0
        while rounds < max_rounds and self.tick(force=True) is not None:
            rounds += 1
        return rounds

    def stats(self) -> CompactionStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            snapshot = replace(self._stats)
            snapshot.per_store = dict(self._stats.per_store)
            return snapshot
