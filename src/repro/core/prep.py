"""PReP: the Provenance Recording Protocol.

PReP "specifies the messages that actors can asynchronously exchange with
the provenance store in order to record their interaction and actor state
p-assertions" (Section 5).  This module defines those messages and their
XML forms:

* :class:`PrepRecord` — submit one p-assertion or group assertion,
* :class:`PrepAck` — the store's acknowledgement,
* :class:`PrepQuery` / :class:`PrepResult` — retrieval.

It also provides :class:`ProtocolTracker`, which follows the documentation
state of each interaction (which views have recorded, how many actor-state
assertions) — the store uses it for statistics and tests use it to check
protocol completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.core.passertion import (
    GroupAssertion,
    InteractionKey,
    InteractionPAssertion,
    PAssertion,
    ViewKind,
    parse_passertion,
)
from repro.soa.xmldoc import XmlElement

Assertion = Union[PAssertion, GroupAssertion]


@dataclass(frozen=True)
class PrepRecord:
    """A record submission: one assertion bound for the store."""

    assertion: Assertion

    ELEMENT = "prep-record"

    def to_xml(self) -> XmlElement:
        root = XmlElement(self.ELEMENT)
        root.add(self.assertion.to_xml())
        return root

    @classmethod
    def from_xml(cls, el: XmlElement) -> "PrepRecord":
        if el.name != cls.ELEMENT:
            raise ValueError(f"expected <{cls.ELEMENT}>, got <{el.name}>")
        inner = next(el.iter_elements(), None)
        if inner is None:
            raise ValueError("<prep-record> is empty")
        if inner.name == "group-assertion":
            return cls(assertion=GroupAssertion.from_xml(inner))
        return cls(assertion=parse_passertion(inner))


@dataclass(frozen=True)
class PrepAck:
    """Store acknowledgement of one or more record submissions."""

    status: str
    count: int
    detail: str = ""

    ELEMENT = "prep-ack"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_xml(self) -> XmlElement:
        root = XmlElement(
            self.ELEMENT, attrs={"status": self.status, "count": str(self.count)}
        )
        if self.detail:
            root.element("detail", self.detail)
        return root

    @classmethod
    def from_xml(cls, el: XmlElement) -> "PrepAck":
        if el.name != cls.ELEMENT:
            raise ValueError(f"expected <{cls.ELEMENT}>, got <{el.name}>")
        detail_el = el.find("detail")
        return cls(
            status=el.attrs["status"],
            count=int(el.attrs["count"]),
            detail=detail_el.text if detail_el is not None else "",
        )


@dataclass(frozen=True)
class PrepQuery:
    """A retrieval request.

    ``query_type`` selects the lookup; ``params`` supplies its arguments:

    =====================  ==================================================
    query_type             params
    =====================  ==================================================
    ``interaction``        ``id``, ``sender``, ``receiver`` (full key)
    ``interactions``       (none) — list all interaction records
    ``record``             full key — every p-assertion about one key
    ``by-group``           ``group`` — interaction keys in a group
    ``actor-state``        full key plus optional ``state-type``
    ``groups``             optional ``kind`` — list group ids
    ``groups-of``          full key — group ids a key belongs to
    ``count``              (none) — store statistics
    =====================  ==================================================
    """

    query_type: str
    params: Dict[str, str] = field(default_factory=dict)

    ELEMENT = "prep-query"

    def to_xml(self) -> XmlElement:
        root = XmlElement(self.ELEMENT, attrs={"type": self.query_type})
        for key in sorted(self.params):
            root.element("param", self.params[key], name=key)
        return root

    @classmethod
    def from_xml(cls, el: XmlElement) -> "PrepQuery":
        if el.name != cls.ELEMENT:
            raise ValueError(f"expected <{cls.ELEMENT}>, got <{el.name}>")
        params = {p.attrs["name"]: p.text for p in el.find_all("param")}
        return cls(query_type=el.attrs["type"], params=params)


@dataclass(frozen=True)
class PrepResult:
    """The store's reply to a query: a list of result documents."""

    items: List[XmlElement] = field(default_factory=list)

    ELEMENT = "prep-result"

    def to_xml(self) -> XmlElement:
        root = XmlElement(self.ELEMENT, attrs={"count": str(len(self.items))})
        for item in self.items:
            root.add(item)
        return root

    @classmethod
    def from_xml(cls, el: XmlElement) -> "PrepResult":
        if el.name != cls.ELEMENT:
            raise ValueError(f"expected <{cls.ELEMENT}>, got <{el.name}>")
        return cls(items=list(el.iter_elements()))


PrepMessage = Union[PrepRecord, PrepAck, PrepQuery, PrepResult]

_PARSERS = {
    PrepRecord.ELEMENT: PrepRecord.from_xml,
    PrepAck.ELEMENT: PrepAck.from_xml,
    PrepQuery.ELEMENT: PrepQuery.from_xml,
    PrepResult.ELEMENT: PrepResult.from_xml,
}


def parse_prep_message(el: XmlElement) -> PrepMessage:
    """Dispatch an XML document to the right PReP message parser."""
    try:
        parser = _PARSERS[el.name]
    except KeyError:
        raise ValueError(f"not a PReP message: <{el.name}>") from None
    return parser(el)


@dataclass
class _InteractionState:
    views_recorded: Set[ViewKind] = field(default_factory=set)
    actor_state_count: int = 0

    @property
    def documented(self) -> bool:
        """Both the sender and receiver view are recorded."""
        return ViewKind.SENDER in self.views_recorded and (
            ViewKind.RECEIVER in self.views_recorded
        )


class ProtocolTracker:
    """Tracks per-interaction documentation progress under PReP."""

    def __init__(self) -> None:
        self._states: Dict[InteractionKey, _InteractionState] = {}
        self.group_assertions = 0

    def observe(self, assertion: Assertion) -> None:
        if isinstance(assertion, GroupAssertion):
            self.group_assertions += 1
            return
        state = self._states.setdefault(assertion.interaction_key, _InteractionState())
        if isinstance(assertion, InteractionPAssertion):
            state.views_recorded.add(assertion.view)
        else:
            state.actor_state_count += 1

    def interactions(self) -> List[InteractionKey]:
        return sorted(self._states)

    def is_documented(self, key: InteractionKey) -> bool:
        state = self._states.get(key)
        return state.documented if state else False

    def undocumented(self) -> List[InteractionKey]:
        return sorted(k for k, s in self._states.items() if not s.documented)

    def actor_state_count(self, key: InteractionKey) -> int:
        state = self._states.get(key)
        return state.actor_state_count if state else 0

    def views_recorded(self, key: InteractionKey) -> Optional[Set[ViewKind]]:
        state = self._states.get(key)
        return set(state.views_recorded) if state else None
