"""Binary arithmetic coding (32-bit integer range implementation).

The entropy back end of the PPM codec.  The classic CACM-87 construction:
the interval [low, high] is narrowed by cumulative frequency ranges and
renormalised bit-by-bit with pending-bit (underflow) handling.

Models interact with the coder purely through cumulative counts
``(cum_low, cum_high, total)``, keeping the coder model-agnostic.
"""

from __future__ import annotations

from repro.compress.bitio import BitReader, BitWriter

CODE_BITS = 32
TOP = (1 << CODE_BITS) - 1
HALF = 1 << (CODE_BITS - 1)
QUARTER = 1 << (CODE_BITS - 2)
THREE_QUARTERS = HALF + QUARTER

#: Models must keep totals at or below this so ranges cannot collapse.
MAX_TOTAL = 1 << 16


class ArithmeticEncoder:
    """Streams symbols into a :class:`BitWriter`."""

    def __init__(self, writer: BitWriter):
        self.writer = writer
        self.low = 0
        self.high = TOP
        self.pending = 0
        self._finished = False

    def _emit(self, bit: int) -> None:
        self.writer.write_bit(bit)
        inverse = bit ^ 1
        while self.pending:
            self.writer.write_bit(inverse)
            self.pending -= 1

    def encode(self, cum_low: int, cum_high: int, total: int) -> None:
        """Narrow the interval to the symbol spanning [cum_low, cum_high)/total."""
        if self._finished:
            raise RuntimeError("encoder already finished")
        if not 0 <= cum_low < cum_high <= total:
            raise ValueError(f"bad cumulative range ({cum_low}, {cum_high}, {total})")
        if total > MAX_TOTAL:
            raise ValueError(f"model total {total} exceeds MAX_TOTAL {MAX_TOTAL}")
        span = self.high - self.low + 1
        self.high = self.low + span * cum_high // total - 1
        self.low = self.low + span * cum_low // total
        while True:
            if self.high < HALF:
                self._emit(0)
            elif self.low >= HALF:
                self._emit(1)
                self.low -= HALF
                self.high -= HALF
            elif self.low >= QUARTER and self.high < THREE_QUARTERS:
                self.pending += 1
                self.low -= QUARTER
                self.high -= QUARTER
            else:
                break
            self.low <<= 1
            self.high = (self.high << 1) | 1

    def finish(self) -> None:
        """Flush enough bits to disambiguate the final interval."""
        if self._finished:
            return
        self._finished = True
        self.pending += 1
        if self.low < QUARTER:
            self._emit(0)
        else:
            self._emit(1)


class ArithmeticDecoder:
    """Mirrors :class:`ArithmeticEncoder` over a :class:`BitReader`."""

    def __init__(self, reader: BitReader):
        self.reader = reader
        self.low = 0
        self.high = TOP
        self.code = 0
        for _ in range(CODE_BITS):
            self.code = (self.code << 1) | reader.read_bit_padded()

    def decode_target(self, total: int) -> int:
        """The cumulative-count position of the next symbol, in [0, total)."""
        if total > MAX_TOTAL:
            raise ValueError(f"model total {total} exceeds MAX_TOTAL {MAX_TOTAL}")
        span = self.high - self.low + 1
        target = ((self.code - self.low + 1) * total - 1) // span
        if target >= total:
            raise ValueError("corrupt arithmetic stream (target out of range)")
        return target

    def consume(self, cum_low: int, cum_high: int, total: int) -> None:
        """Apply the same narrowing the encoder applied for the decoded symbol."""
        span = self.high - self.low + 1
        self.high = self.low + span * cum_high // total - 1
        self.low = self.low + span * cum_low // total
        while True:
            if self.high < HALF:
                pass
            elif self.low >= HALF:
                self.low -= HALF
                self.high -= HALF
                self.code -= HALF
            elif self.low >= QUARTER and self.high < THREE_QUARTERS:
                self.low -= QUARTER
                self.high -= QUARTER
                self.code -= QUARTER
            else:
                break
            self.low <<= 1
            self.high = (self.high << 1) | 1
            self.code = (self.code << 1) | self.reader.read_bit_padded()
