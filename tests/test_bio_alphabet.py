"""Tests for alphabets and sequence classification."""

from __future__ import annotations

import pytest

from repro.bio.alphabet import (
    AMINO_ACIDS,
    NUCLEOTIDES,
    SequenceKind,
    classify_sequence,
    is_amino_acid_sequence,
    is_nucleotide_sequence,
    validate_sequence,
)


class TestAlphabets:
    def test_twenty_amino_acids(self):
        assert len(AMINO_ACIDS) == 20
        assert len(set(AMINO_ACIDS)) == 20

    def test_nucleotides_subset_of_amino_acids(self):
        """The fact at the heart of use case 2."""
        assert set(NUCLEOTIDES) <= set(AMINO_ACIDS)

    def test_no_ambiguous_codes(self):
        for banned in "BJOUXZ":
            assert banned not in AMINO_ACIDS


class TestPredicates:
    def test_protein_recognised(self):
        assert is_amino_acid_sequence("MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ")

    def test_dna_recognised(self):
        assert is_nucleotide_sequence("ACGTACGTAA")

    def test_dna_also_passes_protein_check(self):
        """Syntactic check cannot catch the UC2 error."""
        assert is_amino_acid_sequence("ACGTACGT")

    def test_empty_rejected(self):
        assert not is_amino_acid_sequence("")
        assert not is_nucleotide_sequence("")

    def test_lowercase_rejected(self):
        assert not is_amino_acid_sequence("mkta")


class TestClassify:
    def test_pure_acgt_is_ambiguous(self):
        assert classify_sequence("ACGT") is SequenceKind.AMBIGUOUS

    def test_protein_with_non_nucleotide_letters(self):
        assert classify_sequence("MKTW") is SequenceKind.AMINO_ACID

    def test_invalid_characters(self):
        assert classify_sequence("MKT!") is SequenceKind.INVALID

    def test_empty_invalid(self):
        assert classify_sequence("") is SequenceKind.INVALID


class TestValidate:
    def test_valid_passes(self):
        validate_sequence("ACGT", NUCLEOTIDES)

    def test_invalid_reports_offenders_sorted(self):
        with pytest.raises(ValueError) as exc:
            validate_sequence("AXGZT", NUCLEOTIDES)
        assert "'X'" in str(exc.value) and "'Z'" in str(exc.value)
