"""WSDL-like service descriptions.

"Each workflow activity is described by a WSDL interface: we use here the
abstract part of a WSDL interface to characterise the type of inputs or
outputs taken by services." (Section 6)

The abstract part only: a service has operations; an operation has an input
message and an output message; each message has named parts with a
*syntactic* type.  *Semantic* types are not stored here — they are metadata
attached through the registry, addressed by :class:`PartKey`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.soa.xmldoc import XmlElement

_DIRECTIONS = ("input", "output")


@dataclass(frozen=True)
class PartKey:
    """Addresses one message part of one operation of one service."""

    service: str
    operation: str
    direction: str
    part: str

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}, got {self.direction!r}"
            )

    def as_string(self) -> str:
        return f"{self.service}#{self.operation}/{self.direction}/{self.part}"

    @classmethod
    def parse(cls, text: str) -> "PartKey":
        try:
            service, rest = text.split("#", 1)
            operation, direction, part = rest.split("/", 2)
        except ValueError:
            raise ValueError(f"malformed part key {text!r}") from None
        return cls(service=service, operation=operation, direction=direction, part=part)


@dataclass(frozen=True)
class MessagePart:
    """One named part of a message, with its syntactic type."""

    name: str
    syntactic_type: str = "xsd:string"

    def to_xml(self) -> XmlElement:
        return XmlElement(
            "part", attrs={"name": self.name, "type": self.syntactic_type}
        )

    @classmethod
    def from_xml(cls, el: XmlElement) -> "MessagePart":
        return cls(name=el.attrs["name"], syntactic_type=el.attrs.get("type", ""))


@dataclass(frozen=True)
class OperationDescription:
    """One operation: its input and output message parts."""

    name: str
    inputs: Tuple[MessagePart, ...] = ()
    outputs: Tuple[MessagePart, ...] = ()

    def parts(self, direction: str) -> Tuple[MessagePart, ...]:
        if direction == "input":
            return self.inputs
        if direction == "output":
            return self.outputs
        raise ValueError(f"unknown direction {direction!r}")

    def to_xml(self) -> XmlElement:
        root = XmlElement("operation", attrs={"name": self.name})
        input_el = root.element("input")
        for part in self.inputs:
            input_el.add(part.to_xml())
        output_el = root.element("output")
        for part in self.outputs:
            output_el.add(part.to_xml())
        return root

    @classmethod
    def from_xml(cls, el: XmlElement) -> "OperationDescription":
        inputs = tuple(
            MessagePart.from_xml(p) for p in el.require("input").find_all("part")
        )
        outputs = tuple(
            MessagePart.from_xml(p) for p in el.require("output").find_all("part")
        )
        return cls(name=el.attrs["name"], inputs=inputs, outputs=outputs)


@dataclass(frozen=True)
class ServiceDescription:
    """The abstract WSDL of one service."""

    service: str
    description: str = ""
    operations: Tuple[OperationDescription, ...] = ()
    _by_name: Dict[str, OperationDescription] = field(
        init=False, repr=False, hash=False, compare=False
    )

    def __post_init__(self) -> None:
        by_name: Dict[str, OperationDescription] = {}
        for op in self.operations:
            if op.name in by_name:
                raise ValueError(
                    f"service {self.service!r} declares operation {op.name!r} twice"
                )
            by_name[op.name] = op
        object.__setattr__(self, "_by_name", by_name)

    def operation(self, name: str) -> OperationDescription:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"service {self.service!r} has no operation {name!r}"
            ) from None

    def operation_names(self) -> List[str]:
        return sorted(self._by_name)

    def part_keys(self) -> List[PartKey]:
        """All addressable message parts of this service."""
        keys: List[PartKey] = []
        for op in self.operations:
            for direction in _DIRECTIONS:
                for part in op.parts(direction):
                    keys.append(
                        PartKey(
                            service=self.service,
                            operation=op.name,
                            direction=direction,
                            part=part.name,
                        )
                    )
        return keys

    def to_xml(self) -> XmlElement:
        root = XmlElement(
            "service-description",
            attrs={"service": self.service, "description": self.description},
        )
        for op in self.operations:
            root.add(op.to_xml())
        return root

    @classmethod
    def from_xml(cls, el: XmlElement) -> "ServiceDescription":
        return cls(
            service=el.attrs["service"],
            description=el.attrs.get("description", ""),
            operations=tuple(
                OperationDescription.from_xml(op) for op in el.find_all("operation")
            ),
        )
