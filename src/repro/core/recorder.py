"""Client-side provenance recording: sync, async, or off.

PReP "lets the implementor decide when to record": synchronously with
execution, or asynchronously — "all p-assertions are accumulated locally in
a file before being shipped to PReServ after execution" (Section 6), the
strategy the paper's experiment uses.  :class:`ProvenanceRecorder` implements
all three of the paper's measured configurations:

* ``NONE`` — recording disabled (the baseline curve of Figure 4),
* ``SYNCHRONOUS`` — each p-assertion is sent to the store as it is created,
* ``ASYNCHRONOUS`` — p-assertions accumulate in a :class:`Journal` (in
  memory or on disk) and :meth:`ProvenanceRecorder.flush` ships them in
  batches after the run.
"""

from __future__ import annotations

import enum
import itertools
from pathlib import Path
from typing import List, Optional, Union

from repro.core.client import ProvenanceRecordClient
from repro.core.passertion import (
    ActorStatePAssertion,
    GroupAssertion,
    GroupKind,
    InteractionKey,
    InteractionPAssertion,
    PAssertion,
    ViewKind,
)
from repro.core.prep import PrepAck, PrepRecord
from repro.soa.bus import MessageBus
from repro.soa.xmldoc import XmlElement, parse_xml

Assertion = Union[PAssertion, GroupAssertion]


class RecordingMode(enum.Enum):
    NONE = "none"
    SYNCHRONOUS = "synchronous"
    ASYNCHRONOUS = "asynchronous"


class Journal:
    """A local accumulation buffer for PReP records.

    With a ``path``, every appended record is also written through to a
    journal file (length-prefixed XML frames) so that provenance survives a
    client crash before flush; :meth:`load` replays such a file.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self._records: List[PrepRecord] = []
        self._path = Path(path) if path is not None else None
        self._file = open(self._path, "a", encoding="utf-8") if self._path else None

    def __len__(self) -> int:
        return len(self._records)

    @property
    def path(self) -> Optional[Path]:
        return self._path

    def append(self, record: PrepRecord) -> None:
        self._records.append(record)
        if self._file is not None:
            payload = record.to_xml().serialize()
            self._file.write(f"{len(payload)}\n{payload}\n")
            self._file.flush()

    def drain(self) -> List[PrepRecord]:
        records, self._records = self._records, []
        return records

    def peek(self) -> List[PrepRecord]:
        return list(self._records)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Journal":
        """Replay a journal file into a fresh in-memory journal."""
        journal = cls()
        text = Path(path).read_text(encoding="utf-8")
        pos = 0
        while pos < len(text):
            newline = text.index("\n", pos)
            length = int(text[pos:newline])
            start = newline + 1
            payload = text[start : start + length]
            if len(payload) != length:
                raise ValueError(f"truncated journal frame at offset {pos}")
            journal._records.append(PrepRecord.from_xml(parse_xml(payload)))
            pos = start + length + 1  # skip trailing newline
        return journal


class ProvenanceRecorder:
    """Creates p-assertions and submits them to a store over the bus."""

    def __init__(
        self,
        bus: MessageBus,
        store_endpoint: str = "preserv",
        client_endpoint: str = "provenance-client",
        mode: RecordingMode = RecordingMode.ASYNCHRONOUS,
        journal: Optional[Journal] = None,
        flush_batch_size: int = 64,
        flush_pipeline_depth: int = 1,
    ):
        if flush_batch_size < 1:
            raise ValueError("flush_batch_size must be >= 1")
        if flush_pipeline_depth < 1:
            raise ValueError("flush_pipeline_depth must be >= 1")
        self.bus = bus
        self.store_endpoint = store_endpoint
        self.client_endpoint = client_endpoint
        self._client = ProvenanceRecordClient(
            bus, store_endpoint=store_endpoint, client_endpoint=client_endpoint
        )
        self.mode = mode
        # Not `journal or Journal()`: an empty Journal is falsy (__len__).
        self.journal = journal if journal is not None else Journal()
        self.flush_batch_size = flush_batch_size
        #: ship flush batches through a decode→commit pipeline of this
        #: depth (>1 overlaps batch k+1's wire encoding with batch k's
        #: store round trip; see :mod:`repro.store.pipeline`).
        self.flush_pipeline_depth = flush_pipeline_depth
        self._local_ids = itertools.count(1)
        self.submitted = 0
        self.acked = 0

    # -- assertion construction -----------------------------------------------
    def next_local_id(self) -> str:
        return f"pa-{next(self._local_ids):08d}"

    def record_interaction(
        self,
        key: InteractionKey,
        view: ViewKind,
        asserter: str,
        operation: str,
        content: XmlElement,
        local_id: Optional[str] = None,
    ) -> InteractionPAssertion:
        assertion = InteractionPAssertion(
            interaction_key=key,
            view=view,
            asserter=asserter,
            local_id=local_id or self.next_local_id(),
            operation=operation,
            content=content,
        )
        self.submit(assertion)
        return assertion

    def record_actor_state(
        self,
        key: InteractionKey,
        view: ViewKind,
        asserter: str,
        state_type: str,
        content: XmlElement,
        local_id: Optional[str] = None,
    ) -> ActorStatePAssertion:
        assertion = ActorStatePAssertion(
            interaction_key=key,
            view=view,
            asserter=asserter,
            local_id=local_id or self.next_local_id(),
            state_type=state_type,
            content=content,
        )
        self.submit(assertion)
        return assertion

    def record_group(
        self,
        group_id: str,
        kind: GroupKind,
        member: InteractionKey,
        asserter: str,
        sequence: Optional[int] = None,
    ) -> GroupAssertion:
        assertion = GroupAssertion(
            group_id=group_id,
            kind=kind,
            member=member,
            asserter=asserter,
            sequence=sequence,
        )
        self.submit(assertion)
        return assertion

    # -- submission -------------------------------------------------------
    def submit(self, assertion: Assertion) -> None:
        """Route one assertion according to the recording mode."""
        if self.mode is RecordingMode.NONE:
            return
        self.submitted += 1
        record = PrepRecord(assertion=assertion)
        if self.mode is RecordingMode.SYNCHRONOUS:
            ack = self._send([record])
            self.acked += ack.count
        else:
            self.journal.append(record)

    def _send(self, records: List[PrepRecord]) -> PrepAck:
        return self._client.send_records(records)

    def flush(self) -> int:
        """Ship all journalled records to the store; returns the count acked.

        The queue drains in ``flush_batch_size`` batches — each batch is one
        ``prep-record-batch`` message and one backend group commit, not one
        message per assertion.  With ``flush_pipeline_depth > 1``, batch
        k+1's wire encoding overlaps batch k's store round trip (batches
        still ship in journal order; a rejection stops the stream).  A
        rejected batch raises ``RuntimeError``.
        """
        records = self.journal.drain()
        total = self._client.send_record_stream(
            records,
            batch_size=self.flush_batch_size,
            pipeline_depth=self.flush_pipeline_depth,
        )
        self.acked += total
        return total

    @property
    def pending(self) -> int:
        """Records accumulated but not yet shipped."""
        return len(self.journal)
