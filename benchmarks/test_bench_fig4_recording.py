"""E2 — Figure 4: recording overhead vs number of permutations.

Regenerates all four curves (no recording / async / sync / sync+extra) over
the paper's 100-800 permutation sweep and checks the shape criteria:
linearity (r > 0.99), curve ordering, and async overhead < 10 %.

The benchmark times one full 800-permutation simulation (the costliest
point of the sweep).
"""

from __future__ import annotations

import pytest

from repro.app.costmodel import Fig4CostModel, RecordingConfig
from repro.figures.fig4 import (
    DEFAULT_PERMUTATIONS,
    fig4_table,
    run_fig4,
    simulate_run,
)
from repro.figures.stats import relative_overhead


@pytest.fixture(scope="module")
def series():
    return run_fig4(permutations=DEFAULT_PERMUTATIONS)


def test_bench_fig4_full_sweep(benchmark, series, report):
    benchmark.pedantic(
        lambda: simulate_run(Fig4CostModel(), RecordingConfig.SYNC_EXTRA, 800),
        rounds=10,
        iterations=1,
    )
    report("E2: Figure 4 — recording overhead", fig4_table(series))

    baseline = series[RecordingConfig.NONE]
    for config, s in series.items():
        fit = s.fit()
        benchmark.extra_info[f"r_{config.value}"] = round(fit.correlation, 5)
        # Paper: every plot has correlation coefficient > 0.99.
        assert fit.is_linear, f"{config.value} not linear (r={fit.correlation})"

    # Paper: ordering none < async < sync < sync+extra at every point.
    for i in range(len(baseline.points)):
        values = [
            series[c].points[i].execution_time_s
            for c in (
                RecordingConfig.NONE,
                RecordingConfig.ASYNC,
                RecordingConfig.SYNC,
                RecordingConfig.SYNC_EXTRA,
            )
        ]
        assert values == sorted(values)

    # Paper headline: asynchronous overhead stays under 10 %.
    overhead = relative_overhead(
        baseline.ys(), series[RecordingConfig.ASYNC].ys()
    )
    benchmark.extra_info["async_overhead_pct"] = round(overhead * 100, 2)
    assert overhead < 0.10


def test_bench_fig4_single_point(benchmark):
    """One 100-permutation run under async recording (the default config)."""
    benchmark.pedantic(
        lambda: simulate_run(Fig4CostModel(), RecordingConfig.ASYNC, 100),
        rounds=20,
        iterations=1,
    )
