"""Pre-packaged p-assertions from static workflow analysis (§7).

"Besides optimising recording, static analysis of workflows would be useful
to pre-package some of the p-assertions to be recorded, leaving less to
perform at runtime."

Two halves:

* :func:`analyse_workflow` — static analysis: from a
  :class:`~repro.grid.dag.WorkflowDag`, predict the interactions a run will
  perform (who calls whom, with which operation, in which thread) *before*
  execution;
* :class:`PrepackagedTemplates` — compile each predicted interaction into a
  pre-serialized PReP record skeleton with placeholders, so the runtime
  cost of producing a record message drops to two string substitutions
  (interaction id + content digest) instead of XML construction and
  serialization.

The placeholder strings use characters that cannot survive XML escaping
(``{`` ``}`` pass through, but the token bodies are chosen to be collision-
free), and instantiation validates that each placeholder occurs exactly
once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.passertion import (
    InteractionKey,
    InteractionPAssertion,
    ViewKind,
)
from repro.core.prep import PrepRecord
from repro.grid.dag import WorkflowDag
from repro.soa.xmldoc import XmlElement

#: Placeholder tokens; ASCII letters only so XML escaping never alters them.
ID_TOKEN = "PREPKG.INTERACTION.ID"
CONTENT_TOKEN = "PREPKG.CONTENT.DIGEST"


@dataclass(frozen=True)
class InteractionTemplate:
    """One statically-predicted interaction of a workflow run."""

    activity: str
    operation: str
    sender: str
    receiver: str
    thread: str
    #: activities whose outputs feed this interaction (static lineage).
    upstream: tuple = ()


def analyse_workflow(
    dag: WorkflowDag,
    engine: str = "workflow-engine",
    service_of: Optional[Dict[str, str]] = None,
    operation_of: Optional[Dict[str, str]] = None,
    thread_of: Optional[Dict[str, str]] = None,
) -> List[InteractionTemplate]:
    """Predict the interactions executing ``dag`` will produce.

    Defaults: an activity named ``a`` is served by endpoint ``a`` with
    operation ``run`` in thread ``main``; the ``service_of`` /
    ``operation_of`` / ``thread_of`` maps override per activity.
    """
    service_of = service_of or {}
    operation_of = operation_of or {}
    thread_of = thread_of or {}
    templates: List[InteractionTemplate] = []
    for name in dag.topological_order():
        templates.append(
            InteractionTemplate(
                activity=name,
                operation=operation_of.get(name, "run"),
                sender=engine,
                receiver=service_of.get(name, name),
                thread=thread_of.get(name, "main"),
                upstream=tuple(dag.dependencies_of(name)),
            )
        )
    return templates


class TemplateInstantiationError(ValueError):
    """A placeholder was missing or ambiguous in a compiled skeleton."""


@dataclass
class _Compiled:
    template: InteractionTemplate
    sender_skeleton: str
    receiver_skeleton: str


class PrepackagedTemplates:
    """Compiled record skeletons for a session's predicted interactions."""

    def __init__(
        self,
        templates: Sequence[InteractionTemplate],
        session_id: str,
    ):
        self.session_id = session_id
        self._compiled: Dict[str, _Compiled] = {}
        for template in templates:
            self._compiled[template.activity] = _Compiled(
                template=template,
                sender_skeleton=self._compile(template, ViewKind.SENDER),
                receiver_skeleton=self._compile(template, ViewKind.RECEIVER),
            )

    @staticmethod
    def _compile(template: InteractionTemplate, view: ViewKind) -> str:
        key = InteractionKey(
            interaction_id=ID_TOKEN,
            sender=template.sender,
            receiver=template.receiver,
        )
        content = XmlElement("message-summary")
        content.element("digest", CONTENT_TOKEN)
        assertion = InteractionPAssertion(
            interaction_key=key,
            view=view,
            asserter=template.sender
            if view is ViewKind.SENDER
            else template.receiver,
            local_id=f"prepkg-{template.activity}-{view.value}",
            operation=template.operation,
            content=content,
        )
        skeleton = PrepRecord(assertion).to_xml().serialize()
        for token in (ID_TOKEN, CONTENT_TOKEN):
            if skeleton.count(token) != 1:
                raise TemplateInstantiationError(
                    f"placeholder {token!r} occurs "
                    f"{skeleton.count(token)} times in skeleton"
                )
        return skeleton

    def activities(self) -> List[str]:
        return sorted(self._compiled)

    def instantiate(
        self, activity: str, view: ViewKind, interaction_id: str, content_digest: str
    ) -> str:
        """Produce the final record document text — two substitutions."""
        compiled = self._compiled.get(activity)
        if compiled is None:
            raise KeyError(f"no template for activity {activity!r}")
        skeleton = (
            compiled.sender_skeleton
            if view is ViewKind.SENDER
            else compiled.receiver_skeleton
        )
        return skeleton.replace(ID_TOKEN, interaction_id).replace(
            CONTENT_TOKEN, content_digest
        )

    def instantiate_pair(
        self, activity: str, interaction_id: str, content_digest: str
    ) -> List[str]:
        """Both views of one interaction."""
        return [
            self.instantiate(activity, ViewKind.SENDER, interaction_id, content_digest),
            self.instantiate(
                activity, ViewKind.RECEIVER, interaction_id, content_digest
            ),
        ]


def build_from_scratch(
    template: InteractionTemplate,
    view: ViewKind,
    interaction_id: str,
    content_digest: str,
) -> str:
    """The non-prepackaged baseline: full XML construction per record."""
    key = InteractionKey(
        interaction_id=interaction_id,
        sender=template.sender,
        receiver=template.receiver,
    )
    content = XmlElement("message-summary")
    content.element("digest", content_digest)
    assertion = InteractionPAssertion(
        interaction_key=key,
        view=view,
        asserter=template.sender if view is ViewKind.SENDER else template.receiver,
        local_id=f"prepkg-{template.activity}-{view.value}",
        operation=template.operation,
        content=content,
    )
    return PrepRecord(assertion).to_xml().serialize()
