"""Tests for the pipelined decode→commit ingest engine and its wiring.

The acceptance bar: a store fed through a :class:`PipelinedIngest` is
indistinguishable on replay from one fed the same batches through blocking
``put_many`` calls — same records, same order, byte-identical log files —
while a mid-pipeline failure commits a *prefix* of the submitted stream
(a failed batch k can never be followed by a committed batch k+1) and a
slow backend bounds queue growth instead of buffering the stream.
"""

from __future__ import annotations

import sys
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.client import ProvenanceRecordClient
from repro.core.recorder import ProvenanceRecorder, RecordingMode
from repro.soa.bus import MessageBus
from repro.soa.xmldoc import XmlElement
from repro.store.backends import KVLogBackend
from repro.store.pipeline import PipelinedIngest
from repro.store.service import PReServActor

from tests.test_store_backends import ga, ipa, spa


class TestEngineOrdering:
    def test_commits_in_submission_order_despite_decode_jitter(self):
        committed = []
        # Decode sleeps *inversely* to the index, so later batches decode
        # first — commit order must still be submission order.
        delays = [0.03, 0.02, 0.01, 0.0]

        def decode(item):
            time.sleep(delays[item])
            return item

        with PipelinedIngest(commit=committed.append, decode=decode, depth=4) as engine:
            for i in range(4):
                engine.submit(i)
            engine.flush()
        assert committed == [0, 1, 2, 3]

    def test_records_committed_sums_integer_returns(self):
        with PipelinedIngest(commit=lambda b: len(b), depth=2) as engine:
            engine.submit([1, 2, 3])
            engine.submit([4])
            engine.flush()
            assert engine.stats.records_committed == 4
            assert engine.stats.batches_committed == 2

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            PipelinedIngest(commit=lambda b: None, depth=0)

    def test_submit_on_closed_engine_rejected(self):
        engine = PipelinedIngest(commit=lambda b: None, depth=1)
        engine.close()
        with pytest.raises(ValueError):
            engine.submit([1])

    def test_gil_switch_knob_is_gone(self):
        # Removed after its deprecation cycle: the process fleet obsoleted
        # interpreter-switch tuning, and the engine must not silently
        # swallow the stale kwarg.
        with pytest.raises(TypeError):
            PipelinedIngest(commit=lambda b: None, depth=1, gil_switch_s=0.0007)

    def test_constructor_never_touches_switch_interval(self):
        before = sys.getswitchinterval()
        engine = PipelinedIngest(commit=lambda b: None, depth=1)
        try:
            assert sys.getswitchinterval() == pytest.approx(before)
        finally:
            engine.close()


class TestEngineFailure:
    def test_first_error_drops_every_later_batch(self):
        committed = []

        def commit(item):
            if item == 2:
                raise OSError("disk died")
            committed.append(item)

        engine = PipelinedIngest(commit=commit, depth=2)
        with pytest.raises(OSError, match="disk died"):
            for i in range(6):
                engine.submit(i)
            engine.flush()
        # Batches before the failure committed; nothing after it did.
        assert committed == [0, 1]
        assert engine.error_index == 2  # the prefix boundary
        assert engine.stats.batches_committed == 2
        assert engine.stats.batches_dropped >= 1
        # The error is sticky: close() re-raises, submit refuses.
        with pytest.raises(OSError):
            engine.close()
        with pytest.raises(ValueError):
            engine.submit(99)

    def test_decode_error_propagates_and_halts(self):
        committed = []

        def decode(item):
            if item == 1:
                raise ValueError("bad xml")
            return item

        with pytest.raises(ValueError, match="bad xml"):
            with PipelinedIngest(commit=committed.append, decode=decode, depth=4) as engine:
                for i in range(4):
                    engine.submit(i)
                engine.flush()
        assert committed == [0]

    def test_exit_does_not_mask_body_exception(self):
        with pytest.raises(RuntimeError, match="body failed"):
            with PipelinedIngest(commit=lambda b: 1 / 0, depth=1) as engine:
                engine.submit([1])
                raise RuntimeError("body failed")
        # The pipeline's own error is still inspectable.
        assert isinstance(engine.error, ZeroDivisionError)


class TestBackpressure:
    def test_slow_commit_bounds_queue_growth(self):
        gate = threading.Event()
        committed = []

        def commit(item):
            gate.wait(10)
            committed.append(item)

        engine = PipelinedIngest(commit=commit, depth=3)
        submitted = []

        def producer():
            for i in range(10):
                engine.submit(i)
                submitted.append(i)

        thread = threading.Thread(target=producer)
        thread.start()
        # The committer is stuck on the gate: the producer must block once
        # `depth` batches are in flight, not buffer all ten.
        deadline = time.time() + 5
        while len(submitted) < 3 and time.time() < deadline:
            time.sleep(0.005)
        time.sleep(0.05)  # give a buggy unbounded submit time to run ahead
        assert len(submitted) == 3
        assert engine.stats.max_in_flight <= 3
        gate.set()
        thread.join(timeout=10)
        assert not thread.is_alive()
        engine.flush()
        assert committed == list(range(10))
        assert engine.stats.max_in_flight <= 3
        engine.close()


class TestCrashSafety:
    def test_commit_stage_failure_leaves_a_prefix(self, tmp_path):
        """Kill the commit stage mid-pipeline; the store replays a prefix.

        The fault-injection backend persists batches 0 and 1, dies on
        batch 2 *before* writing it, and the pipeline (depth 4, so batches
        3..5 are already submitted and possibly decoded) must not commit
        anything after the failure — on reopen the store holds exactly the
        records of batches 0..1, a prefix of the submitted stream.
        """
        backend = KVLogBackend(tmp_path / "kv.db")
        batches = [[ipa(b * 4 + r) for r in range(4)] for b in range(6)]
        calls = {"n": 0}
        real_put_many = backend.put_many

        def dying_put_many(assertions):
            if calls["n"] == 2:
                raise OSError("power cut")
            calls["n"] += 1
            return real_put_many(assertions)

        with pytest.raises(OSError, match="power cut"):
            with PipelinedIngest(
                commit=dying_put_many,
                decode=lambda b: b,
                depth=4,
            ) as engine:
                for batch in batches:
                    engine.submit(batch)
                engine.flush()
        backend.close()
        reopened = KVLogBackend(tmp_path / "kv.db")
        survivors = [
            a.store_key for a in reopened.all_assertions()
        ]
        submitted = [a.store_key for batch in batches for a in batch]
        # Exactly the first two batches — a prefix, never a gap.
        assert survivors == submitted[:8]
        reopened.close()

    @given(
        n_batches=st.integers(min_value=0, max_value=6),
        batch_size=st.integers(min_value=1, max_value=5),
        depth=st.sampled_from([1, 4]),
    )
    @settings(max_examples=12, deadline=None)
    def test_property_pipelined_replay_byte_identical(
        self, tmp_path_factory, n_batches, batch_size, depth
    ):
        """Pipelined ingest (depth 1 and 4) == sequential put_many, bytewise."""
        root = tmp_path_factory.mktemp("pipe-prop")
        batches = [
            [ipa(b * batch_size + r) for r in range(batch_size)]
            for b in range(n_batches)
        ]
        sequential = KVLogBackend(root / "seq.db", sync=False)
        for batch in batches:
            sequential.put_many(batch)
        sequential.close()
        pipelined = KVLogBackend(root / "pipe.db", sync=False)
        with pipelined.pipelined_ingest(depth=depth) as engine:
            for batch in batches:
                engine.submit(batch)
            engine.flush()
        pipelined.close()
        assert (root / "pipe.db").read_bytes() == (root / "seq.db").read_bytes()


class TestStorePlugInPipelined:
    def _batch_body(self, assertions) -> XmlElement:
        body = XmlElement("prep-record-batch")
        for a in assertions:
            record = XmlElement("prep-record")
            record.add(a.to_xml())
            body.add(record)
        return body

    def test_pipelined_actor_matches_blocking_actor(self, tmp_path):
        assertions = [ipa(i) for i in range(40)] + [spa(1), ga(2)]
        blocking = PReServActor(KVLogBackend(tmp_path / "blk.db", sync=False))
        pipelined = PReServActor(
            KVLogBackend(tmp_path / "pipe.db", sync=False),
            pipeline_depth=4,
        )
        # Small enough chunks that the pipelined plug-in really engages.
        plugin = pipelined.translator.plugins()[0]
        plugin.pipeline_chunk = 8
        for actor in (blocking, pipelined):
            ack = actor.op_record(self._batch_body(assertions))
            assert ack.attrs["status"] == "ok"
            assert int(ack.attrs["count"]) == len(assertions)
        assert (tmp_path / "pipe.db").read_bytes() == (
            tmp_path / "blk.db"
        ).read_bytes()
        blocking.backend.close()
        pipelined.backend.close()

    def test_duplicate_in_pipelined_batch_faults_and_keeps_prefix(self, tmp_path):
        from repro.soa.envelope import Fault

        actor = PReServActor(
            KVLogBackend(tmp_path / "kv.db", sync=False), pipeline_depth=2
        )
        plugin = actor.translator.plugins()[0]
        plugin.pipeline_chunk = 4
        good = [ipa(i) for i in range(12)]
        poisoned = good + [good[0]]  # duplicate store key in the last chunk
        with pytest.raises(Fault, match="duplicate-assertion"):
            actor.op_record(self._batch_body(poisoned))
        # Everything before the failing chunk (and the indexed prefix of
        # the failing chunk) is queryable — never a hole.
        stored = [a.store_key for a in actor.backend.all_assertions()]
        assert stored == [a.store_key for a in good]
        actor.backend.close()

    def test_pipeline_depth_validation(self, tmp_path):
        from repro.store.plugins import StorePlugIn

        with pytest.raises(ValueError):
            StorePlugIn(pipeline_depth=0)
        with pytest.raises(ValueError):
            StorePlugIn(pipeline_chunk=0)
        with pytest.raises(ValueError):
            PReServActor(KVLogBackend(tmp_path / "kv.db"), pipeline_depth=0)


class TestServiceAndClientWiring:
    def test_bulk_ingest_pipelined_matches_blocking(self, tmp_path):
        assertions = [ipa(i) for i in range(30)]
        blocking = PReServActor(KVLogBackend(tmp_path / "blk.db", sync=False))
        pipelined = PReServActor(
            KVLogBackend(tmp_path / "pipe.db", sync=False), pipeline_depth=4
        )
        assert blocking.bulk_ingest(assertions) == 30
        assert pipelined.bulk_ingest(iter(assertions), batch_size=7) == 30
        assert (tmp_path / "pipe.db").read_bytes() == (
            tmp_path / "blk.db"
        ).read_bytes()
        blocking.backend.close()
        pipelined.backend.close()

    def test_with_store_threads_pipeline_depth(self, tmp_path):
        actor = PReServActor.with_store(
            "kvlog", tmp_path / "kv.db", pipeline_depth=3
        )
        assert actor.pipeline_depth == 3
        assert actor.translator.plugins()[0].pipeline_depth == 3
        actor.backend.close()

    def _deployment(self, tmp_path, pipeline_depth=1):
        bus = MessageBus()
        backend = KVLogBackend(tmp_path / "kv.db", sync=False)
        bus.register(PReServActor(backend))
        return bus, backend

    def test_record_many_pipelined_over_the_bus(self, tmp_path):
        bus, backend = self._deployment(tmp_path)
        client = ProvenanceRecordClient(bus)
        total = client.record_many(
            (ipa(i) for i in range(25)), batch_size=4, pipeline_depth=4
        )
        assert total == 25
        assert client.acked == 25
        assert client.calls == 7  # ceil(25 / 4) batch messages
        assert backend.counts().interaction_passertions == 25
        backend.close()

    def test_pipelined_rejection_stops_the_stream(self, tmp_path):
        from repro.soa.envelope import Fault

        bus, backend = self._deployment(tmp_path)
        client = ProvenanceRecordClient(bus)
        assertions = [ipa(i) for i in range(12)]
        poisoned = assertions[:6] + [assertions[0]] + assertions[6:]
        # The store faults the duplicate batch; the pipeline propagates it
        # as its first error and ships nothing submitted after it.
        with pytest.raises(Fault, match="duplicate-assertion"):
            client.record_many(poisoned, batch_size=2, pipeline_depth=3)
        assert client.calls <= 4  # batches past the rejected one never sent
        backend.close()

    def test_recorder_flush_pipelined(self, tmp_path):
        bus, backend = self._deployment(tmp_path)
        recorder = ProvenanceRecorder(
            bus,
            mode=RecordingMode.ASYNCHRONOUS,
            flush_batch_size=4,
            flush_pipeline_depth=4,
        )
        for i in range(18):
            a = ipa(i)
            recorder.submit(a)
        assert recorder.pending == 18
        assert recorder.flush() == 18
        assert recorder.pending == 0
        assert recorder.acked == 18
        assert backend.counts().interaction_passertions == 18
        backend.close()

    def test_experiment_config_threads_pipeline_depth(self, tmp_path):
        from repro.app.experiment import Experiment, ExperimentConfig

        config = ExperimentConfig(store_pipeline_depth=3)
        experiment = Experiment(config)
        assert experiment.preserv.pipeline_depth == 3
        assert experiment.recorder.flush_pipeline_depth == 3
        experiment.close()
