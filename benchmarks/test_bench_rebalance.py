"""A12 — live rebalance: grow the fleet under load, lose nothing.

The fleet used to be frozen at creation time: shard count fixed forever,
adding capacity meant a full re-ingest.  Consistent-hash placement
(:mod:`repro.store.placement`) plus the online migration engine
(:mod:`repro.store.migration`) make growth a live operation —
``router.add_worker()`` streams the moving slice, drains the write tail,
and atomically cuts the placement over while writers and readers keep
running.  This bench regenerates the A12 drill and asserts its shape:

* **zero acked-write loss** — every acknowledged record verifies
  byte-identically on its *post-cutover* replica set;
* **zero read errors** — the reader thread never sees a failure across
  the cutover;
* **~1/N movement** — the migration moved close to the consistent-hash
  ideal ``1/(N+1)`` of the keys, nowhere near the ~(N−1)/N a modulo
  fleet would reshuffle;
* **bounded read latency** — the drill's query p99 stays under
  ``P99_BAR_MS`` (the stream runs in pages and never locks the read
  path);
* the machine-readable artefact (``BENCH_rebalance.json``) is written
  next to the working directory for trend tooling.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.figures.rebalance import (
    rebalance_table,
    run_rebalance_drill,
    write_rebalance_json,
)

#: moved fraction must stay within this absolute slack of the 1/(N+1)
#: ideal — and always far below the modulo reshuffle floor of 1/2.
MOVED_SLACK = 0.15
#: reader p99 during the drill (in-process transport, small payloads);
#: generous for CI noise but far below any lock-the-read-path regression.
P99_BAR_MS = 50.0
#: perf assertions on timing-bound paths flake under machine noise; the
#: p99 bar must hold on at least one of this many drill attempts.
MAX_ATTEMPTS = 3

WORKERS = 3


def test_bench_rebalance_live_grow(benchmark, tmp_path, report):
    attempts = []
    drill = None
    for attempt in range(MAX_ATTEMPTS):
        drill = run_rebalance_drill(
            tmp_path / f"attempt-{attempt}",
            workers=WORKERS,
            batches=30,
            records_per_batch=4,
            grow_after_batches=10,
            placement="ring",
            transport="inprocess",
        )
        attempts.append(round(drill.query_p99_ms, 3))
        if drill.query_p99_ms <= P99_BAR_MS:
            break
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report("A12: live fleet growth under load", rebalance_table(drill))
    # The machine-readable artefact trend tooling diffs across runs.
    artefact = write_rebalance_json(drill, Path("BENCH_rebalance.json"))
    payload = json.loads(artefact.read_text())
    assert payload["figure"] == "A12-rebalance"
    assert payload["workers_after"] == WORKERS + 1
    benchmark.extra_info["p99_attempts_ms"] = attempts
    benchmark.extra_info["moved_fraction"] = round(drill.moved_fraction, 3)
    benchmark.extra_info["migration_s"] = round(drill.migration_s, 3)
    # Correctness bars hold on EVERY attempt (the drill raises on loss),
    # so the surviving report's counters must line up exactly.
    assert drill.verified_records == drill.acked_records > 0
    assert drill.read_failures == 0, (
        f"{drill.read_failures}/{drill.reads} reads failed during the "
        f"rebalance window"
    )
    assert drill.epoch == 1, "cutover must commit exactly one epoch bump"
    # Consistent hashing: moved ≈ 1/(N+1), not the modulo ~(N−1)/N.
    ideal = drill.ideal_fraction
    assert drill.total_keys > 0
    assert drill.moved_fraction <= ideal + MOVED_SLACK, (
        f"migration moved {drill.moved_fraction:.2f} of keys; consistent "
        f"hashing should stay near the {ideal:.2f} ideal"
    )
    assert drill.moved_fraction < 0.5, (
        "moved fraction reached modulo-reshuffle territory"
    )
    # Latency bar: at least one attempt kept the reader's p99 bounded.
    assert any(p99 <= P99_BAR_MS for p99 in attempts), (
        f"no drill kept query p99 <= {P99_BAR_MS}ms across "
        f"{MAX_ATTEMPTS} attempts (got {attempts})"
    )
