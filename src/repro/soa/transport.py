"""Envelope transport over real sockets: the out-of-process bus.

The in-process :class:`~repro.soa.bus.MessageBus` plays the testbed network
for a single Python process.  This module speaks the *same*
:class:`~repro.soa.envelope.Envelope` request/reply protocol over a
Unix-domain or TCP socket, so an actor can be hosted in another process (a
:mod:`repro.fleet` worker) and its clients cannot tell the difference:

* :class:`EnvelopeServer` hosts one :class:`~repro.soa.actor.Actor` behind a
  listening socket — one accept thread, one thread per connection, clean
  drain-on-shutdown;
* :class:`EnvelopeClient` is the caller half, exposing the **same ``call``
  signature as** :meth:`repro.soa.bus.MessageBus.call` — typed clients like
  :class:`~repro.core.client.ProvenanceRecordClient` and
  :class:`~repro.core.client.ProvenanceQueryClient` run unmodified over
  either transport;
* :class:`RemoteEndpoint` is an actor-shaped proxy: registering it on a
  ``MessageBus`` makes a socket-served actor reachable at a bus endpoint,
  so interceptors, latency models and the rest of the in-process SOA keep
  working while the real work happens in another process.

Wire format — length-prefixed frames::

    +-------+----------+------------------------------+
    | magic | length   | payload                      |
    | PRE1  | u32 (BE) | UTF-8 serialized <envelope>  |
    +-------+----------+------------------------------+

One frame carries one envelope; a request's reply reuses its message id
with a ``-r`` suffix (exactly the in-process bus's convention) plus a
``status`` header (``ok`` | ``fault``) so service faults are transported
as data, not connection state.  A frame with a bad magic, an oversized
length, or an unparsable envelope is *rejected*: the server closes the
connection (it cannot trust the stream's framing any more) and every
other connection keeps working.
"""

from __future__ import annotations

import itertools
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.soa.actor import Actor
from repro.soa.envelope import Envelope, Fault
from repro.soa.xmldoc import XmlElement

#: frame header: 4-byte magic + unsigned 32-bit big-endian payload length.
FRAME_MAGIC = b"PRE1"
_HEADER = struct.Struct(">4sI")
#: refuse frames above this size — a correct peer never sends one, and a
#: garbage length prefix must not make the server try to buffer gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: how often a serving connection wakes up to notice a shutdown request.
POLL_INTERVAL_S = 0.2
#: once a frame has started arriving, how long the rest may take.
MID_FRAME_TIMEOUT_S = 30.0

#: data-path default: a group commit against a slow device may take a while.
DEFAULT_TIMEOUT_S = 120.0
#: health/admin default: probes and failover decisions must be *fast* — a
#: supervisor waiting the data-path 120 s to learn a worker is dead would
#: turn every failover into a two-minute outage.
ADMIN_TIMEOUT_S = 2.0
#: operations that are safe to retry after any transport failure: a
#: re-executed ping/query/admin changes no store state, a shutdown
#: re-requested is a no-op, and the resync stream (``replicate``) skips
#: duplicates by design — so at-least-once delivery is harmless.
IDEMPOTENT_OPERATIONS = frozenset(
    {"ping", "query", "admin", "shutdown", "replicate"}
)

#: ("unix", path) or ("tcp", host, port).
Address = Union[Tuple[str, str], Tuple[str, str, int]]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for idempotent operations.

    ``attempts`` is the *total* number of tries; delays between try ``k``
    and ``k+1`` grow geometrically from ``backoff_s`` and are capped at
    ``max_backoff_s``.  The policy exists so a transient worker restart
    (sub-second under the supervisor) is invisible to idempotent callers,
    while a genuinely dead worker still surfaces quickly — with the final
    underlying failure, not a retry-layer abstraction, in the fault.
    """

    attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")

    def delay_before(self, attempt: int) -> float:
        """Sleep before attempt ``attempt`` (2-based; no delay before 1)."""
        exponent = max(0, attempt - 2)
        return min(
            self.backoff_s * (self.backoff_factor ** exponent),
            self.max_backoff_s,
        )


#: retry nothing: one attempt whatever the operation.
NO_RETRY = RetryPolicy(attempts=1)


class TransportError(Exception):
    """A framing/protocol violation on the socket transport."""


class ConnectionClosed(TransportError):
    """The peer closed the connection (cleanly or mid-frame)."""


# -- addresses ----------------------------------------------------------------

def listen_on(address: Address, backlog: int = 32) -> socket.socket:
    """Bind + listen on ``("unix", path)`` or ``("tcp", host, port)``."""
    kind = address[0]
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(address[1])
    elif kind == "tcp":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((address[1], address[2]))
    else:
        raise ValueError(f"unknown address kind {kind!r}")
    sock.listen(backlog)
    return sock


def connect_to(address: Address, timeout: Optional[float] = None) -> socket.socket:
    """Dial ``address``; raises ``OSError`` while nothing is listening."""
    kind = address[0]
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address[1])
    elif kind == "tcp":
        sock = socket.create_connection((address[1], address[2]), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    else:
        raise ValueError(f"unknown address kind {kind!r}")
    return sock


# -- framing ------------------------------------------------------------------

def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame (a single ``sendall``)."""
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(max {MAX_FRAME_BYTES})"
        )
    sock.sendall(_HEADER.pack(FRAME_MAGIC, len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int, head: bytes = b"") -> bytes:
    """Read exactly ``n`` bytes (``head`` counts toward them).

    Raises :class:`ConnectionClosed` on EOF — callers that care whether the
    close was clean check how many bytes had arrived.
    """
    buf = bytearray(head)
    while len(buf) < n:
        chunk = sock.recv(min(65536, n - len(buf)))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed with {len(buf)}/{n} bytes of a frame read"
            )
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket, head: bytes = b"") -> bytes:
    """Read one frame; ``head`` is any header prefix already consumed.

    Raises :class:`ConnectionClosed` if the peer closed before a full
    frame arrived, :class:`TransportError` on a malformed header.
    """
    header = _recv_exact(sock, _HEADER.size, head)
    magic, length = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise TransportError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return _recv_exact(sock, length)


def send_envelope(sock: socket.socket, envelope: Envelope) -> None:
    send_frame(sock, envelope.serialize().encode("utf-8"))


def recv_envelope(sock: socket.socket) -> Envelope:
    return Envelope.deserialize(recv_frame(sock).decode("utf-8"))


# -- server -------------------------------------------------------------------

class EnvelopeServer:
    """Host one actor behind a listening socket (the worker-side half).

    One daemon thread accepts connections; each connection gets its own
    request thread reading frames and replying in order.  Dispatch into the
    actor is serialized by default (``serialize_dispatch=True``): the
    backends' write paths are single-threaded by contract, and the
    in-process bus drives them serially too — cross-request parallelism is
    the :mod:`repro.fleet` *process* axis, not threads inside one worker.

    :meth:`stop` drains: it stops accepting, lets every in-flight request
    finish and its reply flush, then closes the connections.
    """

    def __init__(
        self,
        actor: Actor,
        address: Address,
        serialize_dispatch: bool = True,
        poll_interval_s: float = POLL_INTERVAL_S,
        fault_plan: Optional[object] = None,
    ):
        self.actor = actor
        self._requested_address = address
        self._poll_interval_s = poll_interval_s
        #: a :class:`~repro.fleet.faults.FaultPlan` (duck-typed: anything
        #: with ``check(point)``) scripting deterministic failures at the
        #: ``server-recv``/``server-send`` fault points; None in production.
        self.fault_plan = fault_plan
        self._dispatch_lock = threading.Lock() if serialize_dispatch else None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: Dict[threading.Thread, socket.socket] = {}
        self._conn_lock = threading.Lock()
        self._stopping = threading.Event()
        self._started = False
        self.address: Optional[Address] = None
        self.requests_served = 0
        self.frames_rejected = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> Address:
        """Bind, listen, start accepting; returns the resolved address
        (a TCP port 0 comes back as the actual bound port)."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._listener = listen_on(self._requested_address)
        if self._requested_address[0] == "tcp":
            host, port = self._listener.getsockname()[:2]
            self.address = ("tcp", host, port)
        else:
            self.address = self._requested_address
        self._listener.settimeout(self._poll_interval_s)
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"envelope-server-{self.actor.endpoint}",
            daemon=True,
        )
        self._accept_thread.start()
        return self.address

    def stop(self, drain_s: float = 5.0) -> None:
        """Stop accepting, drain in-flight requests, close connections."""
        if not self._started:
            return
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=drain_s + 1.0)
        if self._listener is not None:
            self._listener.close()
        with self._conn_lock:
            threads = list(self._connections)
        deadline = drain_s
        for thread in threads:
            # Connection threads notice _stopping at their next poll tick
            # (at most poll_interval_s away) once their current request —
            # reply included — has finished.
            thread.join(timeout=max(0.1, deadline))
        with self._conn_lock:
            leftovers = list(self._connections.items())
        for thread, sock in leftovers:
            # A straggler is stuck inside a request or mid-frame: cut the
            # socket out from under it so the thread unblocks and exits.
            try:
                sock.close()
            except OSError:  # pragma: no cover - already gone
                pass
            thread.join(timeout=1.0)

    # -- accept / serve ------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed underneath us
            if self._requested_address[0] == "tcp":
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(sock,),
                name=f"envelope-conn-{self.actor.endpoint}",
                daemon=True,
            )
            with self._conn_lock:
                self._connections[thread] = sock
            thread.start()

    def _serve_connection(self, sock: socket.socket) -> None:
        try:
            while not self._stopping.is_set():
                sock.settimeout(self._poll_interval_s)
                try:
                    head = sock.recv(1)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not head:
                    return  # client closed cleanly between frames
                # A frame has started: give the rest of it a real deadline.
                sock.settimeout(MID_FRAME_TIMEOUT_S)
                try:
                    frame = recv_frame(sock, head=head)
                    if self._fire_fault("server-recv"):
                        return  # scripted drop: sever this connection
                    reply = self._handle_frame(frame)
                except (TransportError, socket.timeout, ValueError, KeyError):
                    # Malformed frame or unparsable envelope: the stream's
                    # framing can no longer be trusted — reject by closing.
                    self.frames_rejected += 1
                    return
                rule = (
                    self.fault_plan.check("server-send")
                    if self.fault_plan is not None
                    else None
                )
                if rule is not None:
                    if rule.action == "drop":
                        return  # reply scripted to never arrive
                    if rule.action == "corrupt":
                        # Flip one payload byte: the client must reject the
                        # reply (parse/correlation failure), not trust it.
                        reply = reply[:-1] + bytes([reply[-1] ^ 0xFF])
                    else:
                        from repro.fleet.faults import apply_rule

                        apply_rule(rule, "server-send")
                try:
                    send_frame(sock, reply)
                except OSError:
                    return  # client went away before the reply landed
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
            with self._conn_lock:
                self._connections.pop(threading.current_thread(), None)

    def _fire_fault(self, point: str) -> bool:
        """Consult the fault plan at ``point``; True = sever the connection.

        ``die`` and ``delay`` are applied in place; ``drop``/``fault``
        (and ``corrupt``, which has no meaning before a reply exists)
        sever the offending connection — precisely the blast radius a
        malformed frame gets.
        """
        if self.fault_plan is None:
            return False
        rule = self.fault_plan.check(point)
        if rule is None:
            return False
        if rule.action in ("drop", "corrupt", "fault"):
            return True
        from repro.fleet.faults import apply_rule

        apply_rule(rule, point)  # die exits the process; delay sleeps
        return False

    def _handle_frame(self, frame: bytes) -> bytes:
        """One request → one serialized reply envelope (never raises)."""
        request = Envelope.deserialize(frame.decode("utf-8"))
        request.validate()
        operation = request.operation
        ok = True
        if request.target != self.actor.endpoint:
            ok = False
            body: XmlElement = Fault(
                "no-such-endpoint",
                f"this worker hosts {self.actor.endpoint!r}, "
                f"not {request.target!r}",
            ).to_xml()
        else:
            try:
                if self._dispatch_lock is not None:
                    with self._dispatch_lock:
                        body = self.actor.handle(operation, request.body)
                else:
                    body = self.actor.handle(operation, request.body)
                if not isinstance(body, XmlElement):
                    raise Fault(
                        "internal-error",
                        f"operation {operation!r} returned "
                        f"{type(body).__name__}, expected XmlElement",
                    )
            except Fault as fault:
                ok = False
                body = fault.to_xml()
            except Exception as exc:
                # An unexpected service-side error must come back as a
                # fault envelope, exactly like a declared Fault would.
                ok = False
                body = Fault(
                    "internal-error", f"{type(exc).__name__}: {exc}"
                ).to_xml()
        self.requests_served += 1
        response = Envelope(
            headers={
                "source": self.actor.endpoint,
                "target": request.source,
                "operation": f"{operation}-response",
                "message-id": f"{request.message_id}-r",
                "status": "ok" if ok else "fault",
            },
            body=body,
        )
        return response.serialize().encode("utf-8")


# -- client -------------------------------------------------------------------

class _SendFailed(Exception):
    """Internal marker: the request frame never (fully) reached the wire.

    ``pooled`` records whether the socket came from the idle pool — the
    stale-connection signature a worker restart leaves behind.
    """

    def __init__(self, cause: BaseException, pooled: bool):
        super().__init__(str(cause))
        self.cause = cause
        self.pooled = pooled


class _ExchangeFailed(Exception):
    """Internal marker: the request may have been dispatched server-side."""

    def __init__(self, cause: BaseException):
        super().__init__(str(cause))
        self.cause = cause


class EnvelopeClient:
    """The caller half: ``call()`` has the in-process bus's signature.

    Thread-safe via a small connection pool — concurrent callers each get
    their own connection (the server runs one request thread per
    connection), and idle connections are reused.  Any transport failure —
    refused connection, reset, EOF mid-reply, protocol violation — is
    raised as ``Fault("worker-unavailable", ...)`` whose detail payload
    names the worker, its address, and how many attempts were made: to the
    layers above, a dead worker looks like a faulting service, not a
    socket error, and the operator can tell *which* member failed.

    Three robustness policies, all bounded and deterministic:

    * **per-operation deadlines** — ``ping``/``admin`` default to
      :data:`ADMIN_TIMEOUT_S` (~2 s) instead of the 120 s data-path
      timeout, so health probes and failover decisions are fast; any call
      may pass an explicit ``timeout_s``;
    * **stale-pool eviction** — a pooled socket a worker restart broke
      fails at *send* time; since the request never reached the new
      worker, the client discards the socket and transparently redials
      once, whatever the operation — the first call after a restart
      succeeds instead of surfacing ``worker-unavailable``;
    * **idempotent retry** — operations in :data:`IDEMPOTENT_OPERATIONS`
      (``ping``/``query``/``admin``/``shutdown``) are additionally retried
      under :class:`RetryPolicy` with exponential backoff, because
      re-executing them changes no store state.  Non-idempotent operations
      (``record``) are *never* retried past the send phase: the batch may
      have committed, and replaying it would duplicate data.  When the
      budget is exhausted the *final underlying* failure propagates in the
      fault's reason/cause.
    """

    def __init__(
        self,
        address: Address,
        timeout_s: Optional[float] = DEFAULT_TIMEOUT_S,
        max_pool: int = 8,
        peer_name: Optional[str] = None,
        retry: RetryPolicy = RetryPolicy(),
        admin_timeout_s: float = ADMIN_TIMEOUT_S,
        fault_plan: Optional[object] = None,
    ):
        self.address = address
        self.timeout_s = timeout_s
        self.max_pool = max_pool
        #: which worker this client dials, for fault detail payloads.
        self.peer_name = peer_name
        self.retry = retry
        #: per-operation deadline overrides; health/admin ops probe fast.
        self.op_timeouts: Dict[str, float] = {
            "ping": admin_timeout_s,
            "admin": admin_timeout_s,
        }
        self.fault_plan = fault_plan
        self._free: List[socket.socket] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self.calls = 0
        self.reconnects = 0
        self.retries = 0

    # -- pool ----------------------------------------------------------------
    def _acquire(self, timeout_s: Optional[float]) -> Tuple[socket.socket, bool]:
        """A connection plus whether it was reused from the idle pool."""
        with self._lock:
            if self._closed:
                raise Fault(
                    "worker-unavailable",
                    "client is closed",
                    detail=self._fault_detail(1),
                )
            if self._free:
                sock = self._free.pop()
                sock.settimeout(timeout_s)
                return sock, True
        if self.fault_plan is not None:
            rule = self.fault_plan.check("client-connect")
            if rule is not None:
                if rule.action in ("drop", "fault", "corrupt"):
                    raise _SendFailed(
                        ConnectionRefusedError("scripted connect fault"),
                        pooled=False,
                    )
                from repro.fleet.faults import apply_rule

                apply_rule(rule, "client-connect")
        try:
            sock = connect_to(self.address, timeout=timeout_s)
        except OSError as exc:
            # Nothing listening (yet, or any more): the caller's retry
            # loop decides whether to back off or surface the fault.
            raise _ExchangeFailed(exc) from exc
        sock.settimeout(timeout_s)
        return sock, False

    def _release(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed and len(self._free) < self.max_pool:
                self._free.append(sock)
                return
        sock.close()

    def invalidate(self) -> None:
        """Drop every idle pooled connection; the client stays usable.

        Called when the peer is known to have restarted (the pooled
        sockets all point at a dead process); the next call dials fresh.
        """
        with self._lock:
            free, self._free = self._free, []
        for sock in free:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def close(self) -> None:
        with self._lock:
            self._closed = True
            free, self._free = self._free, []
        for sock in free:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass

    @property
    def closed(self) -> bool:
        return self._closed

    # -- invocation ----------------------------------------------------------
    def _fault_detail(self, attempts: int) -> Dict[str, str]:
        detail = {
            "address": str(self.address),
            "attempts": str(attempts),
        }
        if self.peer_name is not None:
            detail["worker"] = self.peer_name
        return detail

    def _exchange(
        self,
        source: str,
        target: str,
        operation: str,
        payload: XmlElement,
        extra_headers: Optional[Dict[str, str]],
        timeout_s: Optional[float],
    ) -> XmlElement:
        """One request/reply exchange; raises the internal markers."""
        message_id = f"{source}-{next(self._ids):08d}"
        headers = {
            "source": source,
            "target": target,
            "operation": operation,
            "message-id": message_id,
        }
        if extra_headers:
            headers.update(extra_headers)
        request = Envelope(headers=headers, body=payload)
        request.validate()
        frame = request.serialize().encode("utf-8")
        sock, pooled = self._acquire(timeout_s)
        sent = False
        try:
            if self.fault_plan is not None:
                rule = self.fault_plan.check("client-send")
                if rule is not None:
                    if rule.action in ("drop", "fault", "corrupt"):
                        raise BrokenPipeError("scripted send fault")
                    from repro.fleet.faults import apply_rule

                    apply_rule(rule, "client-send")
            send_frame(sock, frame)
            sent = True
            response = Envelope.deserialize(recv_frame(sock).decode("utf-8"))
            if response.headers.get("message-id") != f"{message_id}-r":
                raise TransportError(
                    f"reply correlation mismatch: sent {message_id!r}, "
                    f"got {response.headers.get('message-id')!r}"
                )
        except (OSError, TransportError, ValueError) as exc:
            sock.close()
            if not sent:
                # The server never saw a full frame (a partial send is
                # rejected by its framing layer, never dispatched), so
                # re-sending cannot double-execute anything.
                raise _SendFailed(exc, pooled=pooled) from exc
            raise _ExchangeFailed(exc) from exc
        with self._lock:
            self.calls += 1
        self._release(sock)
        if response.headers.get("status") == "fault":
            raise Fault.from_xml(response.body)
        return response.body

    def call(
        self,
        source: str,
        target: str,
        operation: str,
        payload: XmlElement,
        extra_headers: Optional[Dict[str, str]] = None,
        timeout_s: Optional[float] = None,
        idempotent: Optional[bool] = None,
    ) -> XmlElement:
        """Invoke ``operation`` on the remote actor; returns the reply body.

        Same contract as :meth:`repro.soa.bus.MessageBus.call`: a service
        fault is re-raised as :class:`~repro.soa.envelope.Fault`; transport
        failures become ``Fault("worker-unavailable", ...)`` after the
        retry budget (see the class docstring) is exhausted.  ``timeout_s``
        overrides the per-operation deadline; ``idempotent`` overrides the
        :data:`IDEMPOTENT_OPERATIONS` default for this call.
        """
        if idempotent is None:
            idempotent = operation in IDEMPOTENT_OPERATIONS
        effective_timeout = (
            timeout_s
            if timeout_s is not None
            else self.op_timeouts.get(operation, self.timeout_s)
        )
        budget = self.retry.attempts if idempotent else 1
        reconnect_budget = 1  # one free redial for a stale pooled socket
        attempt = 0
        attempts_made = 0
        last_cause: Optional[BaseException] = None
        while attempt < budget:
            attempt += 1
            attempts_made += 1
            try:
                return self._exchange(
                    source,
                    target,
                    operation,
                    payload,
                    extra_headers,
                    effective_timeout,
                )
            except _SendFailed as exc:
                last_cause = exc.cause
                if exc.pooled and reconnect_budget > 0:
                    # Stale pooled socket (the worker restarted under
                    # it): evict the rest of the pool too — they all
                    # point at the dead process — and redial once without
                    # spending the retry budget.
                    reconnect_budget -= 1
                    attempt -= 1
                    self.invalidate()
                    with self._lock:
                        self.reconnects += 1
                    continue
                if not idempotent:
                    # Unsent request: safe to retry even without
                    # idempotence, but only within the retry budget — and
                    # non-idempotent ops have a budget of one.
                    break
            except _ExchangeFailed as exc:
                last_cause = exc.cause
                if not idempotent:
                    break
            if attempt < budget:
                with self._lock:
                    self.retries += 1
                time.sleep(self.retry.delay_before(attempt + 1))
        target_desc = f"{target!r} at {self.address}"
        raise Fault(
            "worker-unavailable",
            f"{target_desc}: {type(last_cause).__name__}: {last_cause}",
            detail=self._fault_detail(attempts_made),
        ) from last_cause


class RemoteEndpoint(Actor):
    """An actor-shaped proxy for a socket-served actor.

    Register it on a :class:`~repro.soa.bus.MessageBus` under the remote
    actor's endpoint and every bus client — recorder, interceptors, typed
    query/record clients — works unchanged: the bus still charges its
    modelled latency and notifies interceptors, while ``handle`` forwards
    the operation over the socket and re-raises remote faults.
    """

    def __init__(
        self,
        client: EnvelopeClient,
        endpoint: str,
        description: str = "remote endpoint proxy",
        operations: Sequence[str] = ("record", "query"),
    ):
        super().__init__(endpoint, description=description)
        self._client = client
        self._remote_operations = tuple(operations)

    def operations(self) -> List[str]:
        return list(self._remote_operations)

    def handle(self, operation: str, payload: XmlElement) -> XmlElement:
        return self._client.call(
            source=f"{self.endpoint}-proxy",
            target=self.endpoint,
            operation=operation,
            payload=payload,
        )
