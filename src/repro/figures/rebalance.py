"""A12: live rebalance drill — grow the fleet under load, lose nothing.

The rebalance counterpart of the availability drill: a consistent-hash
fleet takes a continuous ``put_many`` stream while a reader queries
already-acknowledged records, and *mid-stream* a new member is added with
:meth:`~repro.store.distributed.StoreRouter.add_worker` — the online
migration streams the moving slice, drains the write tail, and atomically
cuts the placement over.  The drill then verifies the tentpole claims:

* **zero acked-write loss** — every acknowledged record is readable and
  byte-identical on its *post-cutover* replica set (writes acked during
  the window dual-committed to the union of old and new sets, so the new
  owner holds them without any repair step);
* **zero read errors** — the reader never sees a failure before, during,
  or after the cutover (readers are served by the current placement until
  the atomic flip);
* **~1/N movement** — the migration report's moved fraction is close to
  the consistent-hash ideal ``1/(N+1)``, nowhere near the ~(N−1)/N a
  modulo fleet would reshuffle;
* **bounded read latency** — the reader's p99 during the drill stays
  within an order-of-magnitude envelope of its p50 (the stream runs in
  pages, it never locks the read path).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional

from repro.core.passertion import (
    InteractionKey,
    InteractionPAssertion,
    ViewKind,
)
from repro.figures.stats import format_table
from repro.soa.xmldoc import XmlElement


@dataclass(frozen=True)
class RebalanceReport:
    """One live-grow drill's outcome."""

    placement: str
    transport: str
    workers_before: int
    workers_after: int
    acked_records: int
    verified_records: int
    retried_batches: int
    reads: int
    read_failures: int
    moved_keys: int
    total_keys: int
    streamed: int
    tail_rounds: int
    epoch: int
    migration_s: float
    query_p50_ms: float
    query_p99_ms: float

    @property
    def moved_fraction(self) -> float:
        return self.moved_keys / self.total_keys if self.total_keys else 0.0

    @property
    def ideal_fraction(self) -> float:
        return 1.0 / self.workers_after

    @property
    def read_error_rate(self) -> float:
        return self.read_failures / self.reads if self.reads else 0.0


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def run_rebalance_drill(
    tmp_dir: Path,
    workers: int = 3,
    batches: int = 30,
    records_per_batch: int = 4,
    grow_after_batches: int = 10,
    placement: str = "ring",
    transport: str = "inprocess",
    sync: bool = True,
) -> RebalanceReport:
    """Grow a live fleet by one member under concurrent write+query load.

    ``grow_after_batches`` acknowledged batches into the stream,
    ``router.add_worker()`` runs on a drill thread while the writer keeps
    submitting and a reader keeps querying acknowledged records.  Every
    acknowledged record is then verified byte-identically on its
    post-cutover replica set.
    """
    from repro.soa.envelope import Fault
    from repro.store.distributed import (
        FederatedQueryClient,
        PartialCommitError,
        sharded_store_fleet,
    )

    if not 0 < grow_after_batches < batches:
        raise ValueError("grow_after_batches must fall inside the batch stream")
    router = sharded_store_fleet(
        tmp_dir / "rebalance",
        members=workers,
        transport=transport,
        sync=sync,
        placement=placement,
    )
    queries = FederatedQueryClient(router)
    acked: dict = {}
    retried_batches = 0
    reads = 0
    read_failures = 0
    latencies_ms: List[float] = []
    stop_reader = threading.Event()
    reader_errors: List[BaseException] = []

    def reader() -> None:
        nonlocal reads, read_failures
        while not stop_reader.is_set():
            for store_key in list(acked):
                if stop_reader.is_set():
                    return
                started = time.perf_counter()
                try:
                    queries.interaction_passertions(store_key[0])
                except BaseException as exc:
                    read_failures += 1
                    reader_errors.append(exc)
                latencies_ms.append((time.perf_counter() - started) * 1e3)
                reads += 1
            time.sleep(0.005)

    migration: dict = {}

    def grow() -> None:
        started = time.monotonic()
        name, report = router.add_worker()
        migration["name"] = name
        migration["report"] = report
        migration["elapsed_s"] = time.monotonic() - started

    migrator = threading.Thread(target=grow, daemon=True)
    try:
        reader_thread = threading.Thread(target=reader, daemon=True)
        reader_thread.start()
        counter = 0
        for batch_index in range(batches):
            batch = []
            for _ in range(records_per_batch):
                key = InteractionKey(
                    interaction_id=f"grow-{counter:06d}",
                    sender="drill-client",
                    receiver="drill-service",
                )
                content = XmlElement("envelope")
                content.element("body").element("data", f"payload-{counter}")
                batch.append(
                    InteractionPAssertion(
                        interaction_key=key,
                        view=ViewKind.SENDER,
                        asserter="drill-client",
                        local_id=f"pa-{counter}",
                        operation="invoke",
                        content=content,
                    )
                )
                counter += 1
            while True:
                try:
                    router.put_many(batch)
                    break
                except (PartialCommitError, Fault):
                    retried_batches += 1
                    time.sleep(0.02)
            for assertion in batch:
                acked[assertion.store_key] = assertion.to_xml().serialize()
            if batch_index + 1 == grow_after_batches:
                migrator.start()
        migrator.join(timeout=120.0)
        if migrator.is_alive():
            raise AssertionError("migration did not finish within 120s")
        if "report" not in migration:
            raise AssertionError("add_worker failed during the drill")
        stop_reader.set()
        reader_thread.join(timeout=30.0)
        # -- verification: zero acked-write loss on the NEW placement -----
        verified = 0
        for (key, *_rest), expected in acked.items():
            for member in router.replica_set(key):
                held = router.store(member).interaction_passertions(key)
                if not any(p.to_xml().serialize() == expected for p in held):
                    raise AssertionError(
                        f"acked record {key} missing or altered on "
                        f"post-cutover replica {member!r}"
                    )
            verified += 1
        epoch = router.placement.epoch
    finally:
        stop_reader.set()
        router.close()
    if reader_errors:
        raise AssertionError(
            f"{read_failures} read(s) failed during the rebalance; first: "
            f"{reader_errors[0]!r}"
        )
    report = migration["report"]
    return RebalanceReport(
        placement=placement,
        transport=transport,
        workers_before=workers,
        workers_after=workers + 1,
        acked_records=len(acked),
        verified_records=verified,
        retried_batches=retried_batches,
        reads=reads,
        read_failures=read_failures,
        moved_keys=report.moved_keys,
        total_keys=report.total_keys,
        streamed=report.streamed,
        tail_rounds=report.tail_rounds,
        epoch=epoch,
        migration_s=migration["elapsed_s"],
        query_p50_ms=_percentile(latencies_ms, 0.50),
        query_p99_ms=_percentile(latencies_ms, 0.99),
    )


def rebalance_table(report: RebalanceReport) -> str:
    headers = [
        "placement",
        "workers",
        "acked",
        "verified",
        "moved",
        "ideal",
        "reads",
        "read errors",
        "q p50 (ms)",
        "q p99 (ms)",
        "migration (s)",
    ]
    rows = [
        [
            report.placement,
            f"{report.workers_before}→{report.workers_after}",
            report.acked_records,
            report.verified_records,
            f"{report.moved_fraction:.2f}",
            f"{report.ideal_fraction:.2f}",
            report.reads,
            report.read_failures,
            f"{report.query_p50_ms:.2f}",
            f"{report.query_p99_ms:.2f}",
            f"{report.migration_s:.2f}",
        ]
    ]
    return format_table(headers, rows)


def write_rebalance_json(report: RebalanceReport, path: Path) -> Path:
    """Machine-readable drill output (the ``BENCH_rebalance.json`` artefact)."""
    payload = asdict(report)
    payload.update(
        {
            "figure": "A12-rebalance",
            "moved_fraction": report.moved_fraction,
            "ideal_fraction": report.ideal_fraction,
            "read_error_rate": report.read_error_rate,
        }
    )
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


__all__ = [
    "RebalanceReport",
    "rebalance_table",
    "run_rebalance_drill",
    "write_rebalance_json",
]
