"""A13: scatter-gather fan-out — parallel commits, merges, hedged reads.

Three drills against the same fleet code, differing only in the router's
fan-out configuration:

* **replica commits** — an R=2 fleet under the modeled per-group-commit
  device barrier: the sequential router pays R barriers per write, the
  fan-out router overlaps them (``put`` commits all R shares
  concurrently), so parallel write latency approaches 1× the barrier.
* **federated merges** — an N=4 fleet whose per-member key scans carry a
  modeled read stall (2005-era store round trip): a sequential
  ``interaction_keys()`` merge pays N stalls back to back, the fan-out
  merge overlaps them.
* **hedged reads** — a process-transport fleet with one worker under a
  scripted :class:`~repro.fleet.faults.FaultRule` delay: without
  hedging, every read owned by the slow worker inherits its stall; with
  ``hedge_after_s`` set, the read fires the next replica once the delay
  budget passes and takes the first success, so the p99 is bounded by
  the hedge delay, not the fault.

The first two run in-process (the barrier/stall model the other figure
sweeps already use); the hedge drill spawns real worker processes so the
delay is a genuine transport-side stall.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Tuple

from repro.core.passertion import (
    InteractionKey,
    InteractionPAssertion,
    ViewKind,
)
from repro.figures.stats import format_table
from repro.soa.xmldoc import XmlElement


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _make_passertion(counter: int, prefix: str = "fanout") -> InteractionPAssertion:
    key = InteractionKey(
        interaction_id=f"{prefix}-{counter:06d}",
        sender="fanout-client",
        receiver="fanout-service",
    )
    content = XmlElement("envelope")
    content.element("body").element("data", f"payload-{counter}")
    return InteractionPAssertion(
        interaction_key=key,
        view=ViewKind.SENDER,
        asserter="fanout-client",
        local_id=f"pa-{counter}",
        operation="invoke",
        content=content,
    )


def _attach_read_stall(store: object, stall_s: float) -> None:
    """Model a per-query device/transport stall on a member's read path.

    The read-side analogue of
    :func:`~repro.fleet.worker.attach_commit_barrier`: each
    ``interaction_keys`` scan sleeps ``stall_s`` first, standing in for
    the member round trip a 2005-era deployment pays per merge leg.
    """
    real = store.interaction_keys

    def stalled_interaction_keys():
        time.sleep(stall_s)
        return real()

    store.interaction_keys = stalled_interaction_keys  # type: ignore[method-assign]


@dataclass(frozen=True)
class HedgeDrillReport:
    """The hedged-read drill's outcome (process transport)."""

    workers: int
    replicas: int
    delay_ms: float
    hedge_after_ms: float
    reads: int
    unhedged_p50_ms: float
    unhedged_p99_ms: float
    hedged_p50_ms: float
    hedged_p99_ms: float
    hedges_fired: int
    hedge_wins: int


@dataclass(frozen=True)
class FanoutReport:
    """One A13 sweep: commit + merge ratios and the hedge drill."""

    members: int
    replicas: int
    commit_barrier_ms: float
    read_stall_ms: float
    put_sequential_ms: float
    put_fanout_ms: float
    merge_sequential_ms: float
    merge_fanout_ms: float
    hedge: HedgeDrillReport

    @property
    def commit_speedup(self) -> float:
        return (
            self.put_sequential_ms / self.put_fanout_ms
            if self.put_fanout_ms
            else 0.0
        )

    @property
    def merge_speedup(self) -> float:
        return (
            self.merge_sequential_ms / self.merge_fanout_ms
            if self.merge_fanout_ms
            else 0.0
        )


def run_commit_sweep(
    tmp_dir: Path,
    replicas: int = 2,
    puts: int = 12,
    commit_barrier_s: float = 0.010,
) -> Tuple[float, float]:
    """Mean single-``put`` latency (ms): sequential vs fan-out commits.

    An R-replica fleet under the modeled commit barrier: every put must
    persist on R members before it acks, so the sequential router pays
    R barriers back to back and the fan-out router pays ~1.
    """
    from repro.store.distributed import sharded_store_fleet

    out = []
    for mode, workers in (("seq", 0), ("par", None)):
        router = sharded_store_fleet(
            tmp_dir / f"commit-{mode}",
            members=replicas,
            replicas=replicas,
            commit_barrier_s=commit_barrier_s,
            fanout_workers=workers,
        )
        try:
            started = time.perf_counter()
            for counter in range(puts):
                router.put(_make_passertion(counter, prefix=f"commit-{mode}"))
            elapsed = time.perf_counter() - started
        finally:
            router.close()
        out.append(elapsed / puts * 1e3)
    return out[0], out[1]


def run_merge_sweep(
    tmp_dir: Path,
    members: int = 4,
    records: int = 16,
    merges: int = 5,
    read_stall_s: float = 0.010,
) -> Tuple[float, float]:
    """Mean federated ``interaction_keys()`` merge latency (ms), seq vs fan-out.

    Each member's key scan carries the modeled read stall; a fresh
    :class:`~repro.store.distributed.FederatedQueryClient` per merge
    keeps the generation-vector cache out of the measurement.
    """
    from repro.store.distributed import FederatedQueryClient, sharded_store_fleet

    out = []
    for mode, workers in (("seq", 0), ("par", None)):
        router = sharded_store_fleet(
            tmp_dir / f"merge-{mode}",
            members=members,
            fanout_workers=workers,
        )
        try:
            router.put_many(
                [
                    _make_passertion(counter, prefix=f"merge-{mode}")
                    for counter in range(records)
                ]
            )
            for name in router.store_names:
                _attach_read_stall(router.store(name), read_stall_s)
            samples = []
            for _ in range(merges):
                client = FederatedQueryClient(router)
                started = time.perf_counter()
                client.interaction_keys()
                samples.append(time.perf_counter() - started)
        finally:
            router.close()
        out.append(sum(samples) / len(samples) * 1e3)
    return out[0], out[1]


def run_hedge_drill(
    tmp_dir: Path,
    workers: int = 2,
    replicas: int = 2,
    keys: int = 12,
    rounds: int = 2,
    delay_s: float = 0.120,
    hedge_after_s: float = 0.020,
) -> HedgeDrillReport:
    """One slow worker, real processes: hedged vs unhedged read tails.

    ``store-00`` runs under a scripted ``server-recv`` delay (every
    request it serves stalls ``delay_s``), so every key it owns drags
    an unhedged read to at least the delay.  The hedged client fires
    the peer replica after ``hedge_after_s`` and takes the first
    success — bounding the read tail near the hedge delay while the
    slow legs are abandoned.
    """
    from repro.fleet.faults import FaultRule
    from repro.store.distributed import FederatedQueryClient, sharded_store_fleet

    router = sharded_store_fleet(
        tmp_dir / "hedge",
        members=workers,
        transport="process",
        replicas=replicas,
        fault_rules={
            "store-00": (
                FaultRule("server-recv", "delay", count=-1, delay_s=delay_s),
            )
        },
        hedge_after_s=hedge_after_s,
    )
    try:
        batch = [_make_passertion(counter, prefix="hedge") for counter in range(keys)]
        router.put_many(batch)
        unhedged = FederatedQueryClient(router, hedge_after_s=0)
        hedged = FederatedQueryClient(router)  # inherits the router's delay

        def measure(client: "FederatedQueryClient") -> List[float]:
            samples: List[float] = []
            for _ in range(rounds):
                for assertion in batch:
                    started = time.perf_counter()
                    found = client.interaction_passertions(
                        assertion.interaction_key
                    )
                    samples.append((time.perf_counter() - started) * 1e3)
                    assert found, "drill read returned no records"
            return samples

        unhedged_ms = measure(unhedged)
        hedged_ms = measure(hedged)
        stats = router.fanout.stats
        report = HedgeDrillReport(
            workers=workers,
            replicas=replicas,
            delay_ms=delay_s * 1e3,
            hedge_after_ms=hedge_after_s * 1e3,
            reads=len(hedged_ms),
            unhedged_p50_ms=_percentile(unhedged_ms, 0.50),
            unhedged_p99_ms=_percentile(unhedged_ms, 0.99),
            hedged_p50_ms=_percentile(hedged_ms, 0.50),
            hedged_p99_ms=_percentile(hedged_ms, 0.99),
            hedges_fired=stats.hedges_fired,
            hedge_wins=stats.hedge_wins,
        )
    finally:
        router.close()
    return report


def run_fanout_sweep(
    tmp_dir: Path,
    members: int = 4,
    replicas: int = 2,
    commit_barrier_s: float = 0.010,
    read_stall_s: float = 0.010,
    puts: int = 12,
    merges: int = 5,
    hedge_delay_s: float = 0.120,
    hedge_after_s: float = 0.020,
) -> FanoutReport:
    """The full A13 sweep: commit ratio, merge ratio, hedge drill."""
    tmp_dir = Path(tmp_dir)
    put_seq, put_par = run_commit_sweep(
        tmp_dir, replicas=replicas, puts=puts, commit_barrier_s=commit_barrier_s
    )
    merge_seq, merge_par = run_merge_sweep(
        tmp_dir, members=members, merges=merges, read_stall_s=read_stall_s
    )
    hedge = run_hedge_drill(
        tmp_dir, delay_s=hedge_delay_s, hedge_after_s=hedge_after_s
    )
    return FanoutReport(
        members=members,
        replicas=replicas,
        commit_barrier_ms=commit_barrier_s * 1e3,
        read_stall_ms=read_stall_s * 1e3,
        put_sequential_ms=put_seq,
        put_fanout_ms=put_par,
        merge_sequential_ms=merge_seq,
        merge_fanout_ms=merge_par,
        hedge=hedge,
    )


def fanout_table(report: FanoutReport) -> str:
    headers = [
        "drill",
        "config",
        "sequential",
        "fan-out",
        "speedup / bound",
    ]
    hedge = report.hedge
    rows = [
        [
            "replica commit (put ms)",
            f"R={report.replicas}, barrier {report.commit_barrier_ms:.0f}ms",
            f"{report.put_sequential_ms:.2f}",
            f"{report.put_fanout_ms:.2f}",
            f"{report.commit_speedup:.2f}x",
        ],
        [
            "federated merge (ms)",
            f"N={report.members}, stall {report.read_stall_ms:.0f}ms",
            f"{report.merge_sequential_ms:.2f}",
            f"{report.merge_fanout_ms:.2f}",
            f"{report.merge_speedup:.2f}x",
        ],
        [
            "hedged read p99 (ms)",
            f"delay {hedge.delay_ms:.0f}ms, hedge {hedge.hedge_after_ms:.0f}ms",
            f"{hedge.unhedged_p99_ms:.2f}",
            f"{hedge.hedged_p99_ms:.2f}",
            f"{hedge.hedge_wins} hedge win(s)",
        ],
    ]
    return format_table(headers, rows)


def write_fanout_json(report: FanoutReport, path: Path) -> Path:
    """Machine-readable sweep output (the ``BENCH_fanout.json`` artefact)."""
    payload = asdict(report)
    payload.update(
        {
            "figure": "A13-fanout",
            "commit_speedup": report.commit_speedup,
            "merge_speedup": report.merge_speedup,
        }
    )
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


__all__ = [
    "FanoutReport",
    "HedgeDrillReport",
    "fanout_table",
    "run_commit_sweep",
    "run_fanout_sweep",
    "run_hedge_drill",
    "run_merge_sweep",
    "write_fanout_json",
]
