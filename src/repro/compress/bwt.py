"""Burrows-Wheeler transform and its inverse.

Rotation sorting uses prefix-doubling over rotation ranks — O(n log n)
sorting passes, no O(n^2) rotation materialisation — which keeps the
from-scratch ``bz-like`` codec usable on the experiment's ~100 KB samples.
"""

from __future__ import annotations

from typing import List, Tuple


def rotation_order(data: bytes) -> List[int]:
    """Indices of the rotations of ``data`` in lexicographic order.

    Prefix doubling: at step ``k`` every rotation is ranked by its first
    ``2k`` characters using the pair (rank of first k, rank of next k).
    """
    n = len(data)
    if n == 0:
        return []
    rank: List[int] = list(data)
    order = sorted(range(n), key=lambda i: rank[i])
    k = 1
    tmp = [0] * n
    while True:
        def key(i: int) -> Tuple[int, int]:
            return (rank[i], rank[(i + k) % n])

        order.sort(key=key)
        tmp[order[0]] = 0
        for idx in range(1, n):
            prev_i, cur_i = order[idx - 1], order[idx]
            tmp[cur_i] = tmp[prev_i] + (1 if key(cur_i) != key(prev_i) else 0)
        rank, tmp = tmp, rank
        if rank[order[-1]] == n - 1:
            return order
        k *= 2
        if k >= n:
            # All ranks distinct is guaranteed once k >= n unless the string
            # is periodic; one more pass with full-period keys settles ties
            # deterministically by index for periodic inputs.
            order.sort(key=lambda i: (rank[i], i))
            return order


def bwt(data: bytes) -> Tuple[bytes, int]:
    """Forward transform: returns (last column, index of original rotation)."""
    n = len(data)
    if n == 0:
        return b"", 0
    order = rotation_order(data)
    primary = order.index(0)
    last = bytes(data[(i - 1) % n] for i in order)
    return last, primary


def ibwt(last: bytes, primary: int) -> bytes:
    """Inverse transform via the LF mapping."""
    n = len(last)
    if n == 0:
        return b""
    if not 0 <= primary < n:
        raise ValueError(f"primary index {primary} out of range for n={n}")
    # counts[c] = number of occurrences of byte c in the last column.
    counts = [0] * 256
    for b in last:
        counts[b] += 1
    # first_pos[c] = row where byte c first appears in the (sorted) first column.
    first_pos = [0] * 256
    total = 0
    for c in range(256):
        first_pos[c] = total
        total += counts[c]
    # lf[i] = row in first column corresponding to last[i].
    seen = [0] * 256
    lf = [0] * n
    for i, b in enumerate(last):
        lf[i] = first_pos[b] + seen[b]
        seen[b] += 1
    out = bytearray(n)
    row = primary
    for k in range(n - 1, -1, -1):
        out[k] = last[row]
        row = lf[row]
    return bytes(out)
