"""Tests for deterministic randomness helpers."""

from __future__ import annotations

from repro.simkit.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_distinct_streams_distinct_seeds(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")

    def test_distinct_masters_distinct_seeds(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_seed_is_64_bit(self):
        for s in range(20):
            value = derive_seed(s, "stream")
            assert 0 <= value < 2**64

    def test_no_prefix_collision(self):
        # ("1", "2/x") must differ from ("12", "x")-style confusions.
        assert derive_seed(1, "2/x") != derive_seed(12, "x")


class TestRngRegistry:
    def test_same_stream_same_object(self):
        reg = RngRegistry(7)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_reproducible_across_registries(self):
        r1 = RngRegistry(7).stream("s")
        r2 = RngRegistry(7).stream("s")
        assert [r1.random() for _ in range(5)] == [r2.random() for _ in range(5)]

    def test_streams_independent(self):
        reg = RngRegistry(7)
        a = [reg.stream("a").random() for _ in range(5)]
        b = [reg.stream("b").random() for _ in range(5)]
        assert a != b

    def test_consuming_one_stream_does_not_perturb_another(self):
        clean = RngRegistry(7)
        baseline = [clean.stream("target").random() for _ in range(3)]
        reg = RngRegistry(7)
        for _ in range(100):
            reg.stream("noise").random()
        observed = [reg.stream("target").random() for _ in range(3)]
        assert observed == baseline

    def test_fork_is_deterministic_and_distinct(self):
        reg = RngRegistry(7)
        f1 = reg.fork("child")
        f2 = RngRegistry(7).fork("child")
        assert f1.master_seed == f2.master_seed
        assert f1.master_seed != reg.master_seed
