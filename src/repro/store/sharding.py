"""A hash-partitioned :class:`~repro.store.kvlog.KVLog` — the sharded store.

The paper's evaluation funnels every write through one Berkeley-DB-backed
store; our single-file :class:`KVLog` equivalently funnels every group
commit through one append file and one fsync stream.  That stream is the
ingest bottleneck once clients submit in parallel: commits serialize behind
one file lock, so concurrent batches queue instead of overlapping.

:class:`ShardedKVLog` keeps the exact on-disk record format but partitions
it across ``N`` shard files (``log.00.kv`` … ``log.NN.kv``), Bitcask style:

* ``put``/``put_many`` split work by ``hash(partition(key)) % N`` — by
  default the whole key is hashed; callers with structured keys (e.g. the
  database backend's ``<interaction-hash>|<seq>`` keys) pass a
  ``partition`` extractor so related records share a shard;
* each sub-batch is a normal KVLog group commit (one write + one fsync)
  against its shard, taken under a per-shard lock — concurrent clients
  whose batches land on different shards commit *in parallel*, which a
  single append file cannot do; sub-commits of one batch can additionally
  be fsynced in parallel via a small thread pool;
* every value is prefixed with a monotonically increasing 8-byte sequence
  number, and sequence reservation always happens while the owning
  shard's lock is held, so **each shard file is seq-monotonic in log
  order**.  That invariant is what lets :meth:`scan` merge the shards
  back into one stream in global insertion order with a bounded-memory
  k-way heap merge (at most one pending record per shard) — replay is
  byte-identical to a single log fed the same puts, whatever the log
  size;
* :meth:`compact` and :attr:`dead_bytes` work per shard (a shard compaction
  never touches its siblings); the database backend layers per-shard *write
  generations* on top (see
  :meth:`repro.store.backends.KVLogBackend.shard_generations`) so read
  caches can invalidate at shard granularity instead of whole-store.

Crash recovery is inherited from :class:`KVLog`: each shard CRC-checks its
records and truncates a torn tail on open.  A crash in the middle of a
multi-shard batch may keep some shards' sub-commits and lose others — the
batch was never acknowledged — but every *acknowledged* batch survives in
full, and the store always reopens.
"""

from __future__ import annotations

import heapq
import os
import struct
import threading
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.store.kvlog import (
    CorruptRecordError,
    KVLog,
    fsync_dir,
    mkdir_durable,
    sorted_items,
)

#: global-insertion-order prefix carried by every sharded value.
_SEQ = struct.Struct(">Q")

#: shard file name pattern (two digits keeps directory listings sorted).
SHARD_FILE = "log.{:02d}.kv"


def pipe_partition(key: bytes) -> bytes:
    """Partition extractor for ``<prefix>|<suffix>`` keys: the prefix.

    Keys without a ``|`` partition on their full bytes.
    """
    return key.split(b"|", 1)[0]


def shard_index(partition_key: bytes, shards: int) -> int:
    """THE placement function: which of ``shards`` owns ``partition_key``.

    Shared by :meth:`ShardedKVLog.shard_of` and the shard-sweep figures so
    simulated placement can never drift from the store's.
    """
    return zlib.crc32(partition_key) % shards


class ShardedKVLog:
    """N hash-partitioned :class:`KVLog` files behind the single-log API.

    Thread-safe: a global lock orders sequence assignment, per-shard locks
    serialize each shard's file operations, and concurrent callers touching
    different shards proceed in parallel.

    ``partition`` is part of the store's identity, like ``shards``: every
    open of the same directory must pass the same function, or keys will
    hash to the wrong shards.  Unlike the shard count (whose mismatch is
    detected from the files on disk), a partition mismatch cannot be
    detected for an arbitrary callable — callers own this invariant.
    """

    def __init__(
        self,
        root: "os.PathLike[str] | str",
        shards: int = 1,
        sync: bool = True,
        partition: Optional[Callable[[bytes], bytes]] = None,
        parallel_commit: bool = True,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.root = Path(root)
        mkdir_durable(self.root, sync=sync)
        existing = sorted(self.root.glob("log.*.kv"))
        # A shard-count mismatch only matters once records exist: rehashing
        # keys across a different count would strand them.  Empty shard
        # files are the footprint of a crash during a previous first-time
        # initialization — adopt or trim them so the store always reopens.
        if len(existing) != shards:
            if any(p.stat().st_size > 0 for p in existing):
                raise ValueError(
                    f"{self.root} holds {len(existing)} shard files with "
                    f"data but shards={shards}; reopen with "
                    f"shards={len(existing)} (rehashing keys across a "
                    f"different shard count would strand existing records)"
                )
            if len(existing) > shards:
                for stale in existing[shards:]:
                    stale.unlink()
                if sync:
                    # The unlinks must be durable before this open's shard
                    # count can be trusted: a crash that resurrects trimmed
                    # files would change the count detected next time.
                    fsync_dir(self.root)
        self.shards = shards
        self._partition = partition
        self._shards: List[KVLog] = []
        try:
            for i in range(shards):
                self._shards.append(
                    KVLog(self.root / SHARD_FILE.format(i), sync=sync)
                )
        except BaseException:
            # Don't leak the handles of shards that did open.
            for shard in self._shards:
                shard.close()
            raise
        self._locks = [threading.Lock() for _ in range(shards)]
        self._seq_lock = threading.Lock()
        self._closed = False
        self._pool: Optional[ThreadPoolExecutor] = None
        if parallel_commit and shards > 1:
            self._pool = ThreadPoolExecutor(
                max_workers=min(shards, os.cpu_count() or 2),
                thread_name_prefix="kvshard",
            )
        # Resolved lazily: the first write (or a full scan, which callers
        # replaying the log perform anyway) discovers the max live sequence,
        # so opening costs no extra pass over the data.
        self._next_seq: Optional[int] = None

    def _reserve_seqs(self, count: int) -> int:
        """Atomically reserve ``count`` sequence numbers; returns the first."""
        with self._seq_lock:
            if self._next_seq is None:
                top = -1
                for i in range(self.shards):
                    with self._locks[i]:
                        for _key, value in self._shards[i].scan():
                            seq = _SEQ.unpack_from(value)[0]
                            if seq > top:
                                top = seq
                self._next_seq = top + 1
            base = self._next_seq
            self._next_seq += count
            return base

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedKVLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("operation on closed ShardedKVLog")

    # -- partitioning ------------------------------------------------------
    def shard_of(self, key: bytes) -> int:
        """The shard index this key lives in (stable across reopen)."""
        pkey = self._partition(key) if self._partition is not None else key
        return shard_index(pkey, self.shards)

    # -- operations --------------------------------------------------------
    @staticmethod
    def _validated(key: bytes, value: bytes) -> Tuple[bytes, bytes]:
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise ValueError("key must be non-empty bytes")
        return bytes(key), bytes(value)

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        key, value = self._validated(key, value)
        shard = self.shard_of(key)
        if self._next_seq is None:
            # Resolve the lazy sequence watermark *before* taking the shard
            # lock: resolution scans every shard under its lock, so doing it
            # while holding one would invert the seq-lock/shard-lock order.
            self._reserve_seqs(0)
        with self._locks[shard]:
            # Reserve and commit under one shard lock: two racing puts of
            # the same key commit in sequence order, so the index's live
            # value is always the one scan() calls newest.  (Reservation
            # here only touches the seq counter — the resolution pass that
            # takes shard locks cannot run once the watermark is set.)
            with self._seq_lock:
                seq = self._next_seq
                self._next_seq += 1
            self._shards[shard].put(key, _SEQ.pack(seq) + value)

    def put_many(self, pairs: Iterable[Tuple[bytes, bytes]]) -> int:
        """Group commit: one KVLog batch commit per shard touched.

        Sequence numbers are assigned in input order before any shard is
        written, so a single-writer workload replays in exactly the order
        the pairs were given, whatever the shard count.  Sub-commits run on
        the commit pool when one is configured, overlapping the shards'
        fsyncs.

        Every touched shard's lock is held (acquired in index order, so
        multi-lock acquisition can never deadlock) from sequence
        reservation through the last sub-commit.  That is the invariant
        the streaming :meth:`scan` merge rests on: records land in each
        shard file in sequence order, always — two racing writers to a
        common shard commit in reservation order, so the index's live
        value for a key is the highest-sequence committed write.  The
        cost is that concurrent batches *sharing* a shard serialize for
        the whole batch rather than per sub-commit; batches on disjoint
        shard sets — the concurrent-session workload the sharding exists
        for — still commit fully in parallel.
        """
        self._check_open()
        batch = [self._validated(k, v) for k, v in pairs]
        if not batch:
            return 0
        owners = [self.shard_of(key) for key, _value in batch]
        touched = sorted(set(owners))
        if self._next_seq is None:
            # Resolve the lazy watermark *before* taking any shard lock:
            # resolution scans every shard under its lock, so doing it while
            # holding one would invert the seq-lock/shard-lock order.
            self._reserve_seqs(0)
        for i in touched:
            self._locks[i].acquire()
        try:
            with self._seq_lock:
                base = self._next_seq
                self._next_seq += len(batch)
            per_shard: List[List[Tuple[bytes, bytes]]] = [
                [] for _ in range(self.shards)
            ]
            for offset, (key, value) in enumerate(batch):
                per_shard[owners[offset]].append(
                    (key, _SEQ.pack(base + offset) + value)
                )
            if self._pool is not None and len(touched) > 1:
                # The sharding-level locks are held by this thread; the pool
                # workers only drive each KVLog's internally-locked commit,
                # overlapping the shards' fsyncs.
                futures: List[Future] = [
                    self._pool.submit(self._shards[i].put_many, per_shard[i])
                    for i in touched
                ]
                # Wait for every sub-commit before surfacing a failure, so no
                # write is still in flight when the caller sees the exception.
                errors = [f.exception() for f in futures]
                for err in errors:
                    if err is not None:
                        raise err
            else:
                for i in touched:
                    self._shards[i].put_many(per_shard[i])
            return len(batch)
        finally:
            for i in reversed(touched):
                self._locks[i].release()

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        key = bytes(key)
        shard = self.shard_of(key)
        with self._locks[shard]:
            value = self._shards[shard].get(key)
        return None if value is None else value[_SEQ.size :]

    def delete(self, key: bytes) -> bool:
        self._check_open()
        key = bytes(key)
        shard = self.shard_of(key)
        with self._locks[shard]:
            return self._shards[shard].delete(key)

    def __contains__(self, key: bytes) -> bool:
        key = bytes(key)
        shard = self.shard_of(key)
        with self._locks[shard]:
            return key in self._shards[shard]

    def __len__(self) -> int:
        total = 0
        for i in range(self.shards):
            with self._locks[i]:
                total += len(self._shards[i])
        return total

    def keys(self) -> Iterator[bytes]:
        merged: List[bytes] = []
        for i in range(self.shards):
            with self._locks[i]:
                merged.extend(self._shards[i].keys())
        return iter(sorted(merged))

    def scan(self, min_seq: int = 0) -> Iterator[Tuple[bytes, bytes]]:
        """Live pairs in *global* insertion order, merged across shards.

        A streaming k-way heap merge: each shard contributes its own
        :meth:`KVLog.scan` stream (one sequential pass, log order — which
        the write path guarantees is sequence order), and the per-record
        sequence prefixes stitch the streams together.  The merge holds at
        most **one pending record per shard**, so replaying a log that has
        outgrown RAM streams instead of materializing — and the result is
        byte-identical to scanning a single KVLog fed the same puts.

        ``min_seq`` is the checkpoint subsystem's per-shard start cursor:
        records with sequence below it are dropped inside each shard's
        stream *before* reaching the heap, so a snapshot-then-tail replay
        pays merge and decode costs only for the tail past its snapshot's
        watermark.  Cursors are sequence-space, not byte offsets, on
        purpose — a compaction between snapshot and reopen shifts bytes
        but never renumbers records, so a sequence cursor can't skip data
        a stale byte offset would.

        A shard whose records come back out of sequence order raises
        :class:`CorruptRecordError` rather than silently mis-merging.
        The current write path cannot produce such a file (reservation
        under the shard lock is the invariant above), so disorder means
        on-disk corruption, an external rewrite, or a directory written
        by a pre-streaming release, whose multi-shard batches could race
        same-shard writers between reservation and commit; rewrite such
        a store by replaying it record-by-record into a fresh one.
        """
        self._check_open()
        if min_seq < 0:
            raise ValueError("min_seq must be >= 0")

        def advance(stream) -> Optional[Tuple[int, bytes, bytes]]:
            for key, value in stream:
                seq = _SEQ.unpack_from(value)[0]
                if seq >= min_seq:
                    return seq, key, value
            return None

        # Prime each shard's stream under its sharding-layer lock: the
        # first next() takes the KVLog-internal snapshot, after which the
        # stream is immune to concurrent writers and compactions.
        streams: List[Iterator[Tuple[bytes, bytes]]] = []
        heap: List[Tuple[int, int, bytes, bytes]] = []
        for i, shard in enumerate(self._shards):
            stream = shard.scan()
            with self._locks[i]:
                first = next(stream, None)
            streams.append(stream)
            if first is None:
                continue
            key, value = first
            seq = _SEQ.unpack_from(value)[0]
            if seq < min_seq:
                primed = advance(stream)
                if primed is None:
                    continue
                seq, key, value = primed
            heap.append((seq, i, key, value))
        heapq.heapify(heap)
        last_seq = min_seq - 1
        while heap:
            seq, i, key, value = heap[0]
            if seq <= last_seq:
                raise CorruptRecordError(
                    f"shard {i} replayed sequence {seq} after {last_seq}: "
                    f"shard files are not in sequence order"
                )
            last_seq = seq
            yield key, value[_SEQ.size :]
            nxt = advance(streams[i])
            if nxt is None:
                heapq.heappop(heap)
            else:
                heapq.heapreplace(heap, (nxt[0], i, nxt[1], nxt[2]))
        # A completed scan has discovered the max live sequence; publish it
        # so the first write after a replay needs no extra pass.  (No shard
        # lock is held here, so the seq-lock -> shard-lock order used by
        # _reserve_seqs cannot deadlock against us.)  A cursored scan may
        # have seen nothing, so only an *unfiltered* pass may publish —
        # tail-replaying callers seed the floor via set_sequence_floor.
        if min_seq == 0:
            with self._seq_lock:
                if self._next_seq is None:
                    self._next_seq = last_seq + 1

    def set_sequence_floor(self, floor: int) -> None:
        """Never assign a sequence below ``floor`` (checkpoint restore hook).

        After a prefix truncation the shard files may hold few — or zero —
        records, so the lazy watermark resolution in :meth:`_reserve_seqs`
        could rediscover a stale maximum and re-issue sequences a snapshot
        already covers; a tail replay would then silently drop the reused
        numbers as already-seen history.  The backend that restored a
        snapshot calls this after its tail replay, with the next sequence
        it will assign — which pins the watermark, so ``floor`` MUST be
        at least one past the highest committed sequence (the max of the
        snapshot watermark and every replayed tail record).
        """
        if floor < 0:
            raise ValueError("floor must be >= 0")
        with self._seq_lock:
            if self._next_seq is None or self._next_seq < floor:
                self._next_seq = floor

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Live pairs in sorted-key order (unified on top of :meth:`scan`)."""
        return sorted_items(self.scan())

    # -- maintenance -------------------------------------------------------
    @property
    def dead_bytes(self) -> int:
        return sum(self.shard_dead_bytes())

    def shard_dead_bytes(self) -> List[int]:
        """Per-shard dead-byte counters (the scheduler's pressure signal)."""
        return [self._shards[i].dead_bytes for i in range(self.shards)]

    def compact(self, shard: Optional[int] = None) -> None:
        """Compact one shard (or, with ``shard=None``, every shard in turn).

        Per-shard compaction is the point of the partitioning: reclaiming
        one shard's dead bytes rewrites only that file while its siblings
        keep serving.  No shard lock is held here — :meth:`KVLog.compact`
        is internally two-phase, so writers to the shard being compacted
        block only for its short catch-up/swap window, not the rewrite.
        """
        self._check_open()
        targets = range(self.shards) if shard is None else (shard,)
        for i in targets:
            self._shards[i].compact()

    def truncate_prefix(self, watermark: int) -> int:
        """Drop every record with sequence below ``watermark``, shard by shard.

        The sharded half of checkpoint truncation: each shard rewrites
        itself without the records a durable snapshot covers (see
        :meth:`KVLog.truncate_prefix` for the crash discipline — each
        shard's rewrite is atomic swap-or-nothing).  The *cross-shard*
        operation is not atomic: a crash between shards leaves some
        truncated and some not, which is harmless — the leftover prefix
        records replay as duplicates of snapshot-covered history and the
        tail cursor skips them — and the next checkpoint finishes the job.

        Returns the total bytes given back to the filesystem.  Caller
        contract (inherited): ``watermark`` must be covered by a durable
        snapshot, or the dropped records are simply gone.
        """
        self._check_open()
        if watermark < 0:
            raise ValueError("watermark must be >= 0")

        def keep(_key: bytes, value: bytes) -> bool:
            return _SEQ.unpack_from(value)[0] >= watermark

        reclaimed = 0
        for i in range(self.shards):
            reclaimed += self._shards[i].truncate_prefix(keep)
        return reclaimed

    # -- reclaim protocol (see repro.store.maintenance) ---------------------
    def reclaim_candidates(self) -> List[tuple]:
        """One ``(shard, dead_ratio, reclaimable_bytes, cost_bytes)`` per shard."""
        out: List[tuple] = []
        for i in range(self.shards):
            size = self._shards[i].file_size()
            dead = self._shards[i].dead_bytes
            if size > 0:
                out.append((i, dead / size, dead, size))
        return out

    def reclaim(self, target: int) -> int:
        """Compact one shard; returns the bytes given back to the FS."""
        return self._shards[target].reclaim()

    def file_size(self) -> int:
        return sum(self.shard_file_sizes())

    def shard_file_sizes(self) -> List[int]:
        return [self._shards[i].file_size() for i in range(self.shards)]
