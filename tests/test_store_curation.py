"""Tests for provenance curation and archival (§7)."""

from __future__ import annotations

import pytest

from repro.store.backends import MemoryBackend
from repro.store.curation import (
    ArchiveError,
    RetentionPolicy,
    apply_retention,
    export_archive,
    import_archive,
    select_assertions,
    verify_archive,
)
from repro.figures.synthstore import populate_store
from repro.app.experiment import Experiment, ExperimentConfig


@pytest.fixture
def corpus():
    exp = Experiment(ExperimentConfig())
    store = MemoryBackend()
    spec = populate_store(store, 30, script_for=exp.script_for, session_size=10)
    return store, spec


class TestExportImport:
    def test_roundtrip_full_store(self, corpus, tmp_path):
        store, _ = corpus
        path = tmp_path / "full.xml"
        count = export_archive(store, path)
        assert count == store.counts().total
        target = MemoryBackend()
        assert import_archive(path, target) == count
        assert target.counts() == store.counts()

    def test_roundtrip_preserves_queryability(self, corpus, tmp_path):
        store, spec = corpus
        path = tmp_path / "full.xml"
        export_archive(store, path)
        target = MemoryBackend()
        import_archive(path, target)
        session = spec.sessions[0]
        assert target.group_members(session) == store.group_members(session)
        key = store.interaction_keys()[0]
        assert len(target.actor_state_passertions(key, state_type="script")) == 1

    def test_session_subset_export(self, corpus, tmp_path):
        store, spec = corpus
        path = tmp_path / "subset.xml"
        export_archive(store, path, sessions=[spec.sessions[0]])
        target = MemoryBackend()
        import_archive(path, target)
        assert target.group_ids(kind="session") == [spec.sessions[0]]
        assert (
            target.counts().interaction_records
            == len(store.group_members(spec.sessions[0]))
        )

    def test_select_assertions_scopes_groups_and_passertions(self, corpus):
        store, spec = corpus
        selected = select_assertions(store, sessions=[spec.sessions[1]])
        keys = set(store.group_members(spec.sessions[1]))
        from repro.core.passertion import GroupAssertion

        for assertion in selected:
            if isinstance(assertion, GroupAssertion):
                assert assertion.member in keys
            else:
                assert assertion.interaction_key in keys


class TestIntegrity:
    def test_verify_good_archive(self, corpus, tmp_path):
        store, _ = corpus
        path = tmp_path / "a.xml"
        count = export_archive(store, path)
        assert verify_archive(path) == count

    def test_corrupted_content_detected(self, corpus, tmp_path):
        store, _ = corpus
        path = tmp_path / "a.xml"
        export_archive(store, path)
        text = path.read_text()
        path.write_text(text.replace("synthetic payload", "tampered payload", 1))
        with pytest.raises(ArchiveError, match="checksum"):
            verify_archive(path)

    def test_wrong_root_detected(self, tmp_path):
        path = tmp_path / "a.xml"
        path.write_text("<not-an-archive/>")
        with pytest.raises(ArchiveError, match="not a provenance archive"):
            verify_archive(path)

    def test_count_mismatch_detected(self, corpus, tmp_path):
        store, _ = corpus
        path = tmp_path / "a.xml"
        export_archive(store, path)
        text = path.read_text()
        # Remove one assertion element without fixing the count.
        start = text.index("<p-assertion")
        end = text.index("</p-assertion>") + len("</p-assertion>")
        path.write_text(text[:start] + text[end:])
        with pytest.raises(ArchiveError, match="declares"):
            verify_archive(path)

    def test_unparsable_archive(self, tmp_path):
        path = tmp_path / "a.xml"
        path.write_text("<broken")
        with pytest.raises(ArchiveError, match="unparsable"):
            verify_archive(path)


class TestRetention:
    def test_policy_selects_sessions(self, corpus, tmp_path):
        store, spec = corpus
        old = set(spec.sessions[:2])
        policy = RetentionPolicy(should_archive=lambda s: s in old)
        archived, count = apply_retention(store, policy, tmp_path / "old.xml")
        assert sorted(archived) == sorted(old)
        assert count > 0
        # The archive alone reconstructs exactly the archived sessions.
        target = MemoryBackend()
        import_archive(tmp_path / "old.xml", target)
        assert sorted(target.group_ids(kind="session")) == sorted(old)

    def test_archive_then_rebuild_live(self, corpus, tmp_path):
        """Full curation cycle: archive old sessions, rebuild a lean store."""
        store, spec = corpus
        keep = spec.sessions[-1]
        policy = RetentionPolicy(should_archive=lambda s: s != keep)
        apply_retention(store, policy, tmp_path / "cold.xml")
        # Rebuild the live store with only the kept session.
        export_archive(store, tmp_path / "hot.xml", sessions=[keep])
        lean = MemoryBackend()
        import_archive(tmp_path / "hot.xml", lean)
        assert lean.group_ids(kind="session") == [keep]
        # Nothing was lost overall: cold + hot covers the original store.
        union = MemoryBackend()
        import_archive(tmp_path / "cold.xml", union)
        import_archive(tmp_path / "hot.xml", union)
        assert union.counts() == store.counts()
