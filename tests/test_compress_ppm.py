"""Tests for the PPM compressor (the ppmz stand-in)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress.ppm import EOF_SYMBOL, NUM_SYMBOLS, PPMCompressor, PPMModel


class TestModel:
    def test_context_key_grows_with_history(self):
        model = PPMModel(max_order=3)
        assert model.context_key(0) == b""
        assert model.context_key(1) is None  # no history yet
        model.update(65, 0)
        assert model.context_key(1) == b"A"

    def test_update_exclusion_only_touches_high_orders(self):
        model = PPMModel(max_order=2)
        model.update(65, 0)
        model.update(66, 0)
        # Now code symbol 67 at order 1: orders 1..2 get it, order 0 not.
        model.update(67, 1)
        assert 67 not in model.contexts[0].get(b"", {})
        assert 67 in model.contexts[1][b"B"]

    def test_distribution_excludes_symbols(self):
        model = PPMModel()
        table = {1: 5, 2: 3, 3: 2}
        dist = model.distribution(table, excluded={2})
        symbols = [s for s, _, _ in dist.entries]
        assert symbols == [1, 3]
        assert dist.total == 7 + 2  # counts + distinct escape weight

    def test_distribution_all_excluded_is_none(self):
        model = PPMModel()
        assert model.distribution({1: 5}, excluded={1}) is None

    def test_order_minus_one_covers_alphabet(self):
        model = PPMModel()
        dist = model.order_minus_one(set())
        assert dist.total == NUM_SYMBOLS
        symbols = [s for s, _, _ in dist.entries]
        assert symbols[0] == 0 and symbols[-1] == EOF_SYMBOL

    def test_rescale_halves_and_drops(self):
        table = {1: 5, 2: 1}
        PPMModel._rescale(table)
        assert table == {1: 2}

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            PPMModel(max_order=-1)


class TestPPMCompressor:
    def setup_method(self):
        self.codec = PPMCompressor(max_order=3)

    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"aaaaaaaaaa",
            b"abracadabra" * 20,
            bytes(range(256)),
            b"\x00\xff" * 100,
        ],
    )
    def test_roundtrip(self, data):
        assert self.codec.decompress(self.codec.compress(data)) == data

    def test_roundtrip_order_zero(self):
        codec = PPMCompressor(max_order=0)
        data = b"zero order context model"
        assert codec.decompress(codec.compress(data)) == data

    def test_roundtrip_order_one(self):
        codec = PPMCompressor(max_order=1)
        data = b"the theremin theory " * 10
        assert codec.decompress(codec.compress(data)) == data

    def test_compresses_repetitive_text(self):
        data = b"protein compressibility " * 60
        assert len(self.codec.compress(data)) < len(data) // 3

    def test_beats_no_context_on_structured_data(self):
        """Order-3 should beat order-0 on strongly contextual input."""
        data = b"ABABABACABABABAC" * 60
        o3 = PPMCompressor(max_order=3).compress(data)
        o0 = PPMCompressor(max_order=0).compress(data)
        assert len(o3) < len(o0)

    def test_declared_length_mismatch_detected(self):
        blob = bytearray(self.codec.compress(b"hello world"))
        blob[0] ^= 0x01  # corrupt the declared length varint
        with pytest.raises(ValueError):
            self.codec.decompress(bytes(blob))

    @given(st.binary(min_size=0, max_size=800))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        assert self.codec.decompress(self.codec.compress(data)) == data

    @given(st.text(alphabet="ACDEFGHIKLMNPQRSTVWY", min_size=0, max_size=600))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_protein_alphabet_property(self, text):
        data = text.encode()
        assert self.codec.decompress(self.codec.compress(data)) == data
