"""In-process message bus with virtual-time accounting.

The bus plays the role of the testbed network: actors register at endpoints;
callers invoke ``bus.call(...)``; a :class:`LatencyModel` charges each call's
modelled cost (round-trip latency + bandwidth + service time) to a
:class:`VirtualClock` without sleeping.  Interceptors observe every call —
this is where provenance instrumentation hooks in without the application
knowing about it.

The split between *real work* (the actor's Python code runs for real) and
*modelled time* (the clock advances by testbed-calibrated amounts) is what
lets the figure harness reproduce the paper's measured shapes determinist-
ically on any machine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.soa.actor import Actor, OperationError
from repro.soa.envelope import Envelope, Fault
from repro.soa.xmldoc import XmlElement

#: 100 Mb/s ethernet in bytes/second, as in the paper's testbed.
ETHERNET_100MB_BPS = 100_000_000 / 8


class VirtualClock:
    """An accumulating virtual clock (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds}")
        self._now += seconds

    def reset(self) -> None:
        self._now = 0.0


@dataclass(frozen=True)
class LatencyModel:
    """Per-call cost model: fixed round trip + bandwidth + service time."""

    round_trip_s: float = 0.0
    bandwidth_bps: float = ETHERNET_100MB_BPS
    service_time_s: float = 0.0

    def cost(self, request_bytes: int, response_bytes: int) -> float:
        wire = (request_bytes + response_bytes) / self.bandwidth_bps
        return self.round_trip_s + wire + self.service_time_s


@dataclass
class CallRecord:
    """One completed bus call, as seen by interceptors and statistics."""

    message_id: str
    source: str
    target: str
    operation: str
    request: Envelope
    response: Envelope
    virtual_cost_s: float
    ok: bool


Interceptor = Callable[[CallRecord], None]


class MessageBus:
    """Endpoint registry + synchronous invocation + virtual time."""

    def __init__(self, clock: Optional[VirtualClock] = None):
        self.clock = clock or VirtualClock()
        self._actors: Dict[str, Actor] = {}
        self._latency: Dict[str, LatencyModel] = {}
        self._default_latency = LatencyModel()
        self._interceptors: List[Interceptor] = []
        self._ids = itertools.count(1)
        self.calls = 0

    # -- wiring -------------------------------------------------------------
    def register(self, actor: Actor, latency: Optional[LatencyModel] = None) -> None:
        if actor.endpoint in self._actors:
            raise ValueError(f"endpoint {actor.endpoint!r} already registered")
        self._actors[actor.endpoint] = actor
        if latency is not None:
            self._latency[actor.endpoint] = latency

    def unregister(self, endpoint: str) -> None:
        self._actors.pop(endpoint, None)
        self._latency.pop(endpoint, None)

    def lookup(self, endpoint: str) -> Actor:
        try:
            return self._actors[endpoint]
        except KeyError:
            raise KeyError(
                f"no actor at endpoint {endpoint!r}; "
                f"registered: {sorted(self._actors)}"
            ) from None

    def endpoints(self) -> List[str]:
        return sorted(self._actors)

    def set_default_latency(self, model: LatencyModel) -> None:
        self._default_latency = model

    def latency_for(self, endpoint: str) -> LatencyModel:
        return self._latency.get(endpoint, self._default_latency)

    def add_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.remove(interceptor)

    def next_message_id(self) -> str:
        return f"msg-{next(self._ids):08d}"

    # -- invocation ----------------------------------------------------------
    def call(
        self,
        source: str,
        target: str,
        operation: str,
        payload: XmlElement,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> XmlElement:
        """Invoke ``operation`` on the actor at ``target``.

        Runs the actor's code for real, charges the modelled cost to the
        virtual clock, notifies interceptors, and returns the response body.
        Service faults are charged and notified too, then re-raised.
        """
        message_id = self.next_message_id()
        headers = {
            "source": source,
            "target": target,
            "operation": operation,
            "message-id": message_id,
        }
        if extra_headers:
            headers.update(extra_headers)
        request = Envelope(headers=headers, body=payload)
        request.validate()
        actor = self.lookup(target)

        ok = True
        try:
            response_body = actor.handle(operation, payload)
            if not isinstance(response_body, XmlElement):
                raise OperationError(
                    f"operation {operation!r} on {target!r} returned "
                    f"{type(response_body).__name__}, expected XmlElement"
                )
        except Fault as fault:
            ok = False
            response_body = fault.to_xml()
        response = Envelope(
            headers={
                "source": target,
                "target": source,
                "operation": f"{operation}-response",
                "message-id": f"{message_id}-r",
            },
            body=response_body,
        )

        model = self.latency_for(target)
        cost = model.cost(request.byte_size(), response.byte_size())
        self.clock.charge(cost)
        self.calls += 1

        record = CallRecord(
            message_id=message_id,
            source=source,
            target=target,
            operation=operation,
            request=request,
            response=response,
            virtual_cost_s=cost,
            ok=ok,
        )
        for interceptor in list(self._interceptors):
            interceptor(record)

        if not ok:
            raise Fault.from_xml(response_body)
        return response_body
