"""FleetSupervisor: health probes, auto-restart, and replica resync.

The self-healing half of the replicated fleet.  A supervisor owns one
background thread that probes every worker each round (``ping`` on the
transport's fast admin deadline, so a dead worker costs ~2 s, not the
120 s data-op deadline), and drives a dead worker through the recovery
ladder:

1. **degrade** — the router (when attached) marks the member degraded the
   moment death is detected, so writes journal for it and reads prefer
   its replica peers;
2. **restart** — respawn on the same shard directory with exponential
   backoff between attempts; a worker that keeps dying on arrival hits
   the **flap cap** and is quarantined with a loud status entry instead
   of being restarted forever;
3. **resync** — stream the suffix the worker missed from its live peers
   (``replicate`` pull/push over sequence-number watermarks recorded
   while everyone was healthy), filtered to the assertions that actually
   belong on the rejoined member (its replica sets; broadcast groups
   always), duplicate-skipping so overlap is free;
4. **restore** — ``router.mark_restored`` (the member serves again, as
   *suspect* until a freshness probe clears it) and ``router.repair``
   (flush the write-side journal of shares that failed while it was
   down).

Watermark bookkeeping is deliberately conservative: the resync cursor
for a peer is that peer's watermark from the round *before* the death
was detected.  Anything at or past the cursor is re-streamed; the push
side skips duplicates, so over-streaming costs round trips, never
correctness — and under-streaming cannot happen because every write the
dead worker durably holds was acknowledged (hence fully replicated)
before its last successful probe.

Every state transition lands in :attr:`FleetSupervisor.events` and the
per-worker :meth:`status` — a crash drill can assert the exact recovery
path (died → restarted → resynced → restored) it scripted.  Right after
a restart the supervisor also pulls the worker's checkpoint/recovery
stats (``recovered`` event; ``status()[name]["recovery"]``), so drills
can additionally assert *how* the rejoined store reopened — snapshot +
tail replay versus a full log replay.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.core.passertion import InteractionKey
from repro.fleet.manager import FleetError, ProcessFleet
from repro.fleet.remote import RemoteStore
from repro.fleet.worker import _assertion_from_el
from repro.soa.envelope import Fault
from repro.store.distributed import StoreRouter, _hash_to_bucket

#: default ceiling on one restart's health wait (a flapping worker exits
#: during startup, which fails fast; this bounds the pathological case).
RESTART_TIMEOUT_S = 30.0


class FleetSupervisor:
    """Supervise a :class:`~repro.fleet.manager.ProcessFleet`.

    ``router`` is optional but recommended: with it, death and recovery
    drive the router's degraded/suspect bookkeeping and the write-side
    repair journal.  Without it, resync still runs, computing replica
    sets locally from ``replicas`` (the same successor placement the
    router uses, so the two agree).
    """

    def __init__(
        self,
        fleet: ProcessFleet,
        router: Optional[StoreRouter] = None,
        probe_interval_s: float = 0.2,
        backoff_s: float = 0.1,
        backoff_factor: float = 2.0,
        backoff_max_s: float = 2.0,
        flap_limit: int = 3,
        resync_page: int = 256,
        restart_timeout_s: float = RESTART_TIMEOUT_S,
    ):
        if flap_limit < 1:
            raise ValueError("flap_limit must be >= 1")
        self.fleet = fleet
        self.router = router
        self.replicas = router.replicas if router is not None else 1
        self.probe_interval_s = probe_interval_s
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        self.flap_limit = flap_limit
        self.resync_page = resync_page
        self.restart_timeout_s = restart_timeout_s
        #: chronological (monotonic_time, worker, event, detail) entries.
        self.events: List[Tuple[float, str, str, str]] = []
        self._lock = threading.Lock()
        self._states: Dict[str, str] = {
            name: "healthy" for name in fleet.worker_names
        }
        self._attempts: Dict[str, int] = {}
        self._restarts: Dict[str, int] = {}
        self._last_error: Dict[str, str] = {}
        #: per-worker watermark observed in the latest healthy probe round.
        self._watermarks: Dict[str, int] = {}
        #: per-worker recovery/checkpoint stats from the latest restart
        #: (how the rejoined store reopened: snapshot+tail vs full replay).
        self._recovery: Dict[str, Dict[str, str]] = {}
        #: frozen peer-watermark snapshot per dead worker (resync cursors).
        self._cursors: Dict[str, Dict[str, int]] = {}
        #: monotonic deadline before which a worker's next restart may run.
        self._not_before: Dict[str, float] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "FleetSupervisor":
        if self._thread is not None:
            raise RuntimeError("supervisor already started")
        self._thread = threading.Thread(
            target=self._run, name="fleet-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- observation -----------------------------------------------------------
    def status(self) -> Dict[str, Dict[str, object]]:
        """Per-worker supervision state, safe to read from any thread."""
        with self._lock:
            return {
                name: {
                    "state": self._states.get(name, "healthy"),
                    "attempts": self._attempts.get(name, 0),
                    "restarts": self._restarts.get(name, 0),
                    "last_error": self._last_error.get(name, ""),
                    "watermark": self._watermarks.get(name),
                    "recovery": dict(self._recovery.get(name, {})),
                }
                for name in self.fleet.worker_names
            }

    @property
    def quarantined(self) -> List[str]:
        with self._lock:
            return sorted(
                name
                for name, state in self._states.items()
                if state == "quarantined"
            )

    def lift_quarantine(self, name: str) -> None:
        """Manual override: give a quarantined worker its restarts back."""
        with self._lock:
            if self._states.get(name) != "quarantined":
                return
            self._states[name] = "dead"
            self._attempts[name] = 0
            self._not_before.pop(name, None)
        self._record(name, "quarantine-lifted", "manual override")

    def _record(self, name: str, event: str, detail: str = "") -> None:
        with self._lock:
            self.events.append((time.monotonic(), name, event, detail))

    def _remote(self, name: str) -> RemoteStore:
        handle = self.fleet.handle(name)
        # No on_close: these probes never own worker lifecycle.
        return RemoteStore(
            handle.client, endpoint=handle.config.endpoint, name=name
        )

    # -- the probe loop --------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self._round()
            except Exception as exc:  # pragma: no cover - belt and braces
                self._record("<supervisor>", "round-error", repr(exc))
            self._stop.wait(self.probe_interval_s)

    def _round(self) -> None:
        prev = dict(self._watermarks)
        for name in self.fleet.worker_names:
            if self._stop.is_set():
                return
            with self._lock:
                state = self._states.get(name, "healthy")
            if state == "quarantined":
                continue
            if state in ("dead", "restarting"):
                self._try_restart(name)
                continue
            self._probe(name, prev)

    def _probe(self, name: str, prev: Dict[str, int]) -> None:
        handle = self.fleet.handle(name)
        remote = self._remote(name)
        try:
            remote.ping()
            try:
                watermark: Optional[int] = remote.sequence_watermark()
            except Fault as fault:
                if fault.code != "bad-admin":
                    raise
                watermark = None  # backend has no log (e.g. memory)
        except Fault as fault:
            if fault.code != "worker-unavailable":
                raise
            if handle.alive:
                # Slow, not dead: leave it alone, probe again next round.
                self._record(name, "slow-probe", str(fault))
                return
            self._on_death(name, prev, str(fault))
            return
        with self._lock:
            if watermark is not None:
                self._watermarks[name] = watermark
            if self._states.get(name) != "healthy":
                self._states[name] = "healthy"
            # A full healthy probe resets the flap counter: the worker
            # came back and stayed up past its own startup.
            self._attempts[name] = 0

    def _on_death(self, name: str, prev: Dict[str, int], detail: str) -> None:
        with self._lock:
            self._states[name] = "dead"
            self._last_error[name] = detail
            # Freeze the resync cursors at death: peer watermarks from the
            # round before detection (0 when unknown — a full, still
            # correct, re-stream).
            self._cursors.setdefault(
                name,
                {
                    peer: prev.get(peer, 0)
                    for peer in self.fleet.worker_names
                    if peer != name
                },
            )
            self._not_before[name] = 0.0
        if self.router is not None:
            self.router.mark_degraded(name)
        self._record(name, "died", detail)
        self._try_restart(name)

    def _migration_participant(self, name: str) -> bool:
        """Is ``name`` part of an in-flight placement transition?"""
        if self.router is None:
            return False
        participants = getattr(self.router, "migration_participants", None)
        if participants is None:
            return False
        return name in participants()

    # -- restart + resync ------------------------------------------------------
    def _try_restart(self, name: str) -> None:
        now = time.monotonic()
        with self._lock:
            if now < self._not_before.get(name, 0.0):
                return
            attempt = self._attempts.get(name, 0) + 1
            if attempt > self.flap_limit:
                if self._migration_participant(name):
                    # Quarantining a migration participant would wedge the
                    # transition (neither cutover nor rollback could drain
                    # it): keep the worker on the restart ladder, capped to
                    # the maximum backoff, until the migration resolves.
                    self._states[name] = "dead"
                    self._not_before[name] = now + self.backoff_max_s
                    deferred = True
                else:
                    self._states[name] = "quarantined"
                    deferred = False
            else:
                self._attempts[name] = attempt
                self._states[name] = "restarting"
        if attempt > self.flap_limit:
            if deferred:
                self._record(
                    name,
                    "quarantine-deferred",
                    f"exceeded flap cap ({self.flap_limit}) but worker "
                    f"participates in an in-flight migration; retrying",
                )
                return
            self._record(
                name,
                "quarantined",
                f"exceeded flap cap ({self.flap_limit} failed restarts); "
                f"manual intervention required (lift_quarantine)",
            )
            return
        try:
            self.fleet.restart(name, health_timeout_s=self.restart_timeout_s)
        except FleetError as exc:
            delay = min(
                self.backoff_s * (self.backoff_factor ** (attempt - 1)),
                self.backoff_max_s,
            )
            with self._lock:
                self._states[name] = "dead"
                self._last_error[name] = str(exc)
                self._not_before[name] = time.monotonic() + delay
            self._record(
                name,
                "restart-failed",
                f"attempt {attempt}/{self.flap_limit}: {exc}; "
                f"next in {delay:.2f}s",
            )
            return
        with self._lock:
            self._restarts[name] = self._restarts.get(name, 0) + 1
        self._record(name, "restarted", f"attempt {attempt}")
        try:
            stats = self._remote(name).checkpoint_stats()
        except Fault:
            pass  # backend without checkpoint stats (e.g. memory)
        else:
            with self._lock:
                self._recovery[name] = stats
            self._record(
                name,
                "recovered",
                f"mode={stats.get('recovery-mode', '?')} "
                f"tail={stats.get('tail-records', '?')} "
                f"open_s={stats.get('open-s', '?')}",
            )
        try:
            pushed = self._resync(name)
        except Fault as exc:
            # A peer died mid-resync; leave the worker degraded — the next
            # round re-detects and re-plans with fresh cursors.
            self._record(name, "resync-failed", str(exc))
            return
        self._record(name, "resynced", f"{pushed} assertion(s) streamed")
        if self.router is not None:
            self.router.mark_restored(name)
            repaired = self.router.repair(name)
            if repaired:
                self._record(name, "repaired", f"{repaired} journaled write(s)")
        with self._lock:
            self._states[name] = "healthy"
            self._cursors.pop(name, None)
        self._record(name, "restored", "serving traffic")

    def _member_of(self, name: str, key: InteractionKey) -> bool:
        """Does ``key``'s replica set include ``name``?"""
        if self.router is not None:
            return name in self.router.replica_set(key)
        names = self.fleet.worker_names
        bucket = _hash_to_bucket(key, len(names))
        return name in [
            names[(bucket + i) % len(names)] for i in range(self.replicas)
        ]

    def _resync(self, name: str) -> int:
        """Stream the missed suffix from live peers into ``name``.

        Pulls each live peer's log past the frozen cursor, keeps the
        entries that belong on ``name`` (its replica sets; broadcast
        groups always), and pushes them in pages.  Duplicates are skipped
        server-side, so replaying an overlap or a crashed resync is free.
        """
        with self._lock:
            cursors = dict(self._cursors.get(name, {}))
        target = self._remote(name)
        pushed = 0
        for peer in self.fleet.worker_names:
            if peer == name:
                continue
            if not self.fleet.handle(peer).alive:
                continue
            source = self._remote(peer)
            after = cursors.get(peer, 0)
            while True:
                entries, after, done = source.replicate_pull(
                    after=after, limit=self.resync_page
                )
                batch = []
                for _seq, element in entries:
                    if element.name == "group-assertion":
                        batch.append(element)
                        continue
                    assertion = _assertion_from_el(element)
                    if self._member_of(name, assertion.interaction_key):
                        batch.append(element)
                if batch:
                    applied, _skipped = target.replicate_push(batch)
                    pushed += applied
                if done:
                    break
        return pushed


__all__ = ["FleetSupervisor", "RESTART_TIMEOUT_S"]
