"""Move-to-front coding and zero-run-length encoding.

The middle stages of the ``bz-like`` pipeline: MTF converts BWT locality into
a zero-heavy byte stream; ZRLE then collapses zero runs.  ZRLE is
unambiguous because MTF output uses 0x00 only for "same symbol again",
which ZRLE re-encodes as ``0x00 varint(run_length)``.
"""

from __future__ import annotations

from typing import List

from repro.compress.bitio import read_varint, write_varint


def mtf_encode(data: bytes) -> bytes:
    """Replace each byte by its index in a move-to-front list of all 256 values."""
    table: List[int] = list(range(256))
    out = bytearray(len(data))
    for pos, b in enumerate(data):
        idx = table.index(b)
        out[pos] = idx
        if idx:
            del table[idx]
            table.insert(0, b)
    return bytes(out)


def mtf_decode(data: bytes) -> bytes:
    table: List[int] = list(range(256))
    out = bytearray(len(data))
    for pos, idx in enumerate(data):
        b = table[idx]
        out[pos] = b
        if idx:
            del table[idx]
            table.insert(0, b)
    return bytes(out)


def zrle_encode(data: bytes) -> bytes:
    """Collapse runs of 0x00 into ``0x00 varint(run)``; other bytes pass through."""
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        b = data[i]
        if b == 0:
            run = 1
            while i + run < n and data[i + run] == 0:
                run += 1
            out.append(0)
            out += write_varint(run)
            i += run
        else:
            out.append(b)
            i += 1
    return bytes(out)


def zrle_decode(data: bytes) -> bytes:
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        b = data[i]
        i += 1
        if b == 0:
            run, i = read_varint(data, i)
            if run < 1:
                raise ValueError("zero-length run in ZRLE stream")
            out += b"\x00" * run
        else:
            out.append(b)
    return bytes(out)
