"""A11 — O(live) recovery: reopen cost vs history, with/without checkpoints.

The store outlives any single process: hosts reboot and the fleet
supervisor respawns crashed workers, and each reopen used to replay the
entire log to rebuild the index — O(all history ever recorded).  Index
checkpoints (:mod:`repro.store.checkpoint`) make reopen load the newest
snapshot and replay only the tail past its watermark.  This bench
regenerates the A11 sweep and asserts its shape:

* at the largest history, the checkpointed reopen beats the full-replay
  reopen by at least 5x;
* the checkpointed reopen stays roughly *flat* as history grows — the
  largest-history reopen costs at most ``FLATNESS_BAR`` times the
  smallest-history one, while full replay grows with history;
* the sweep's machine-readable artefact (``BENCH_reopen.json``) is
  written next to the working directory for trend tooling.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.figures.reopen import (
    reopen_table,
    run_reopen_sweep,
    write_reopen_json,
)

#: checkpointed reopen vs full replay at the largest history.
SPEEDUP_BAR = 5.0
#: largest-history checkpointed reopen vs smallest-history one, while
#: history itself quadruples (flat-ness, with CI-noise slack).
FLATNESS_BAR = 2.5
#: perf assertions on timing-bound paths flake under machine noise; the
#: bars must hold on at least one of this many sweep attempts.
MAX_ATTEMPTS = 3

HISTORY_SIZES = (256, 512, 1024)


def test_bench_reopen_checkpoints(benchmark, tmp_path, report):
    attempts = []
    points = None
    for attempt in range(MAX_ATTEMPTS):
        points = run_reopen_sweep(
            tmp_path / f"attempt-{attempt}", history_sizes=HISTORY_SIZES
        )
        ckpt = {
            p.records: p.reopen_s for p in points if p.mode == "snapshot+tail"
        }
        full = {
            p.records: p.reopen_s for p in points if p.mode == "full-replay"
        }
        largest = max(HISTORY_SIZES)
        speedup = full[largest] / ckpt[largest]
        growth = ckpt[largest] / ckpt[min(HISTORY_SIZES)]
        attempts.append((round(speedup, 2), round(growth, 2)))
        if speedup >= SPEEDUP_BAR and growth <= FLATNESS_BAR:
            break
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report("A11: reopen cost ± checkpoints", reopen_table(points))
    # The machine-readable artefact trend tooling diffs across runs.
    artefact = write_reopen_json(points, Path("BENCH_reopen.json"))
    payload = json.loads(artefact.read_text())
    assert payload["figure"] == "A11-reopen"
    assert len(payload["points"]) == 2 * len(HISTORY_SIZES)
    benchmark.extra_info["attempts"] = attempts
    for p in points:
        benchmark.extra_info[f"{p.mode}_{p.records}_ms"] = round(
            p.reopen_s * 1000, 2
        )
    assert any(s >= SPEEDUP_BAR for s, _ in attempts), (
        f"no sweep reached a checkpointed-reopen speedup >= "
        f"{SPEEDUP_BAR}x over full replay at history={max(HISTORY_SIZES)} "
        f"across {MAX_ATTEMPTS} attempts (got {attempts})"
    )
    assert any(g <= FLATNESS_BAR for _, g in attempts), (
        f"checkpointed reopen grew more than {FLATNESS_BAR}x while "
        f"history quadrupled (got {attempts})"
    )
    # Recovery-mode sanity: the sweep really exercised both ladders.
    assert {p.mode for p in points} == {"full-replay", "snapshot+tail"}
    # Truncation really happened: the checkpointed store's disk footprint
    # is dominated by the snapshot + tail, not the full log.
    by_mode = {
        (p.records, p.mode): p.disk_bytes for p in points
    }
    largest = max(HISTORY_SIZES)
    assert by_mode[(largest, "snapshot+tail")] < by_mode[(largest, "full-replay")] / 2
