"""E5 — §6 per-permutation statistics.

Paper: "the run of a workflow for one 100Kb sample with 1 permutation takes
approximately 4.5s; each permutation involves the creation of 6 records and
their submission."

We check both facts — the modelled single-permutation run time and the
6-records-per-permutation accounting of the real instrumented workflow —
and benchmark a real end-to-end experiment run.
"""

from __future__ import annotations

import pytest

from repro.app.costmodel import Fig4CostModel, RecordingConfig
from repro.app.experiment import Experiment, ExperimentConfig
from repro.figures.fig4 import simulate_run


def test_single_permutation_run_time_modelled(benchmark, report):
    t = benchmark.pedantic(
        lambda: simulate_run(Fig4CostModel(), RecordingConfig.NONE, 1),
        rounds=10,
        iterations=1,
    )
    report(
        "E5: per-permutation statistics",
        f"modelled 1-permutation run: {t:.2f} s (paper: ~4.5 s)\n"
        "records per permutation: 6 (verified below)",
    )
    assert 4.0 <= t <= 8.0


def test_six_records_per_permutation_real(benchmark):
    """Increasing permutations by one adds exactly 6 interaction p-assertions
    (3 interactions x 2 views), as the paper counts."""

    def passertions_for(n_perm: int) -> int:
        exp = Experiment(
            ExperimentConfig(sample_bytes=1200, n_permutations=n_perm)
        )
        exp.run()
        return exp.backend.counts().interaction_passertions

    delta = benchmark.pedantic(
        lambda: passertions_for(3) - passertions_for(2), rounds=3, iterations=1
    )
    # 3 measure-chain interactions + 1 shuffle interaction per permutation;
    # the paper's script-internal shuffle leaves 6; our service-level
    # shuffle adds 2 more views: document both figures.
    assert delta == 8
    # The measure chain itself (Figure 2) is exactly 6 records.
    exp = Experiment(ExperimentConfig(sample_bytes=1200, n_permutations=1))
    result = exp.run()
    chain = [c for c in result.run.chains if c.label == "perm-0"][0]
    total = 0
    for key in exp.backend.interaction_keys():
        if key.interaction_id in (
            chain.compress_id,
            chain.measure_id,
            chain.collate_id,
        ):
            total += len(exp.backend.interaction_passertions(key))
    assert total == 6


def test_bench_full_experiment_run(benchmark):
    """Wall-clock cost of one complete instrumented experiment."""

    def run_once():
        exp = Experiment(
            ExperimentConfig(sample_bytes=1500, n_permutations=2, record_scripts=True)
        )
        return exp.run()

    result = benchmark.pedantic(run_once, rounds=5, iterations=1)
    assert result.records_flushed > 0
