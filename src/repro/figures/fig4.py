"""Figure 4: recording overhead for increasing numbers of permutations.

Regenerates the paper's four curves — no recording, asynchronous recording,
synchronous recording, synchronous with extra actor provenance — by running
the batched permutation scripts through the Condor simulator under the
testbed-calibrated cost model.

Shape criteria from the paper (the assertions our benchmarks check):

* every curve is linear in the number of permutations (r > 0.99),
* ordering: none < async < sync < sync+extra,
* asynchronous overhead over no recording stays under 10 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.app.costmodel import Fig4CostModel, RecordingConfig
from repro.figures.stats import LinearFit, format_table, linear_fit, relative_overhead
from repro.grid.condor import CondorScheduler, GridJob
from repro.simkit.hosts import Link, Network
from repro.simkit.kernel import Simulator

#: The paper's sweep: 100..800 permutations.
DEFAULT_PERMUTATIONS = (100, 200, 300, 400, 500, 600, 700, 800)
#: "we grouped the execution of 100 permutations into a single script".
PERMUTATIONS_PER_SCRIPT = 100
#: ~100 KB sample staged to each script job.
SAMPLE_BYTES = 100_000


@dataclass(frozen=True)
class Fig4Point:
    permutations: int
    execution_time_s: float


@dataclass
class Fig4Series:
    config: RecordingConfig
    points: List[Fig4Point] = field(default_factory=list)

    def xs(self) -> List[int]:
        return [p.permutations for p in self.points]

    def ys(self) -> List[float]:
        return [p.execution_time_s for p in self.points]

    def fit(self) -> LinearFit:
        return linear_fit(self.xs(), self.ys())


def simulate_run(
    model: Fig4CostModel,
    config: RecordingConfig,
    n_permutations: int,
    permutations_per_script: int = PERMUTATIONS_PER_SCRIPT,
    workers: int = 1,
) -> float:
    """Simulated end-to-end execution time of one workflow run."""
    if n_permutations < 1:
        raise ValueError("need at least one permutation")
    sim = Simulator()
    network = Network(sim)
    network.add_host("submit")
    worker_hosts = [
        network.add_host(f"vm-{i}", cpus=1, speed=1.0) for i in range(workers)
    ]
    for host in worker_hosts:
        network.connect("submit", host.name, Link(latency_s=0.0005))
    scheduler = CondorScheduler(
        sim,
        network,
        submit_host="submit",
        workers=worker_hosts,
        matchmaking_delay_s=2.0,
        per_job_overhead_s=0.5,
    )
    jobs: List[GridJob] = []
    remaining = n_permutations
    index = 0
    while remaining > 0:
        batch = min(permutations_per_script, remaining)
        jobs.append(
            GridJob(
                name=f"script-{index}",
                duration_s=model.script_duration_s(config, batch),
                input_bytes=SAMPLE_BYTES,
                output_bytes=4096,
            )
        )
        remaining -= batch
        index += 1
    report = scheduler.run(jobs)
    total = report.makespan_s + model.workflow_fixed_s
    total += model.post_run_s(config, n_permutations)
    return total


def run_fig4(
    permutations: Sequence[int] = DEFAULT_PERMUTATIONS,
    model: Fig4CostModel = Fig4CostModel(),
    permutations_per_script: int = PERMUTATIONS_PER_SCRIPT,
    workers: int = 1,
) -> Dict[RecordingConfig, Fig4Series]:
    """Regenerate all four Figure 4 curves."""
    out: Dict[RecordingConfig, Fig4Series] = {}
    for config in RecordingConfig:
        series = Fig4Series(config=config)
        for n in permutations:
            series.points.append(
                Fig4Point(
                    permutations=n,
                    execution_time_s=simulate_run(
                        model,
                        config,
                        n,
                        permutations_per_script=permutations_per_script,
                        workers=workers,
                    ),
                )
            )
        out[config] = series
    return out


def fig4_table(series: Dict[RecordingConfig, Fig4Series]) -> str:
    """Text rendition of Figure 4 plus fit/overhead statistics."""
    order = [
        RecordingConfig.NONE,
        RecordingConfig.ASYNC,
        RecordingConfig.SYNC,
        RecordingConfig.SYNC_EXTRA,
    ]
    xs = series[order[0]].xs()
    headers = ["permutations"] + [c.value for c in order]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [f"{series[c].points[i].execution_time_s:.1f}" for c in order])
    lines = [format_table(headers, rows), ""]
    baseline = series[RecordingConfig.NONE].ys()
    for config in order:
        fit = series[config].fit()
        overhead = relative_overhead(baseline, series[config].ys())
        lines.append(
            f"{config.value:>34}:  r={fit.correlation:.5f}  "
            f"slope={fit.slope:.3f} s/perm  overhead={overhead * 100:.1f}%"
        )
    return "\n".join(lines)
