"""Actors: the clients and services of the SOA.

"We will use the term actor to denote either a client or a service in a
SOA" (Section 5).  An :class:`Actor` exposes named operations taking and
returning XML payloads; subclasses implement ``op_<name>`` methods, which
the base class discovers and dispatches to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.soa.xmldoc import XmlElement


class OperationError(Exception):
    """Raised by operations for application-level failures."""


@dataclass(frozen=True)
class ActorIdentity:
    """A stable actor identifier (endpoint name + human description)."""

    endpoint: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.endpoint:
            raise ValueError("actor endpoint must be non-empty")


class Actor:
    """Base class for services and clients.

    Operations are methods named ``op_<operation>`` with signature
    ``(payload: XmlElement) -> XmlElement``.  The operation set is fixed at
    construction (the handler table is built once in ``__init__``);
    attaching ``op_`` attributes to an instance afterwards will not
    register them.
    """

    def __init__(self, endpoint: str, description: str = ""):
        self.identity = ActorIdentity(endpoint=endpoint, description=description)
        # Operations are class-level methods, so the handler map and the
        # sorted name list are built once here instead of re-running
        # dir() + getattr on every describe/dispatch.
        self._op_handlers: Dict[str, Callable[[XmlElement], XmlElement]] = {
            name[3:]: getattr(self, name)
            for name in dir(self)
            if name.startswith("op_") and callable(getattr(self, name))
        }
        self._op_names: List[str] = sorted(self._op_handlers)

    @property
    def endpoint(self) -> str:
        return self.identity.endpoint

    def operations(self) -> List[str]:
        """Names of the operations this actor exposes."""
        return list(self._op_names)

    def handler(self, operation: str) -> Callable[[XmlElement], XmlElement]:
        method = self._op_handlers.get(operation)
        if method is None:
            raise OperationError(
                f"actor {self.endpoint!r} has no operation {operation!r}"
            )
        return method

    def handle(self, operation: str, payload: XmlElement) -> XmlElement:
        """Dispatch ``operation`` to its ``op_`` method."""
        return self.handler(operation)(payload)

    # -- introspection used by the registry --------------------------------
    def describe(self) -> Dict[str, str]:
        return {
            "endpoint": self.endpoint,
            "description": self.identity.description,
            "operations": ",".join(self.operations()),
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} endpoint={self.endpoint!r}>"
