"""A8 — background compaction: scheduler vs stop-the-world on a churn load.

The paper's PReServ records continuously into Berkeley DB JE, whose
cleaner reclaims dead space in the background; our log-structured layouts
previously required a stop-the-world ``compact()`` to bound their disk
footprint.  This bench drives the put/delete/re-put churn workload of
:mod:`repro.figures.compaction` — a large cold bulk plus hot keys being
overwritten by concurrent sessions — under all three reclamation
policies.

Shape criteria:

* sustained ingest with the background scheduler reaches at least 1.5x
  the stop-the-world manual ``compact()`` baseline (the scheduler only
  rewrites pressured shards, two-phase, off the ingest clock; the manual
  discipline stalls every client and rewrites the cold majority too);
* the scheduler holds the on-disk footprint bounded: the worst sampled
  footprint/live ratio stays <= 2 across the run, while the no-reclamation
  policy demonstrably exceeds it on the same workload (the bound binds);
* file-system stores: background folding collapses one-file-per-put
  debris to a bounded file count with the store's contents intact.
"""

from __future__ import annotations

from repro.figures.compaction import (
    compaction_table,
    run_compaction_sweep,
    run_fold_sweep,
)

#: acceptance bar: scheduler throughput vs the stop-the-world baseline.
SPEEDUP_BAR = 1.5
#: acceptance bar: worst in-flight footprint/live ratio under the scheduler.
FOOTPRINT_BAR = 2.0
#: perf assertions on I/O-bound paths flake under machine noise; the bars
#: must hold on at least one of this many sweep attempts.
MAX_ATTEMPTS = 3


def test_bench_compaction_scheduler_vs_manual(benchmark, tmp_path, report):
    attempts = []
    points = None
    for attempt in range(MAX_ATTEMPTS):
        points = run_compaction_sweep(tmp_path / f"attempt-{attempt}")
        by_policy = {p.policy: p for p in points}
        speedup = (
            by_policy["scheduler"].records_per_s / by_policy["manual"].records_per_s
        )
        max_ratio = by_policy["scheduler"].max_footprint_ratio
        attempts.append((round(speedup, 2), round(max_ratio, 2)))
        if speedup >= SPEEDUP_BAR and 0 < max_ratio <= FOOTPRINT_BAR:
            break
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report("A8: background compaction vs stop-the-world", compaction_table(points))
    by_policy = {p.policy: p for p in points}
    for p in points:
        benchmark.extra_info[f"{p.policy}_rps"] = round(p.records_per_s)
        benchmark.extra_info[f"{p.policy}_max_ratio"] = round(
            p.max_footprint_ratio, 2
        )
    benchmark.extra_info["attempts"] = attempts

    # The scheduler must actually have run compactions and reclaimed bytes
    # (the stats the figures layer surfaces), and the no-reclamation policy
    # must show the footprint bound is non-trivial on this workload.
    assert by_policy["scheduler"].compactions > 0
    assert by_policy["scheduler"].bytes_reclaimed > 0
    assert by_policy["none"].final_footprint_ratio > FOOTPRINT_BAR
    assert any(
        speedup >= SPEEDUP_BAR and 0 < max_ratio <= FOOTPRINT_BAR
        for speedup, max_ratio in attempts
    ), (
        f"no sweep reached a scheduler-vs-manual speedup >= {SPEEDUP_BAR}x "
        f"with the footprint/live ratio held <= {FOOTPRINT_BAR} across "
        f"{MAX_ATTEMPTS} attempts (got (speedup, max-ratio) = {attempts})"
    )


def test_bench_fs_fold_bounds_file_count(benchmark, tmp_path, report):
    point = benchmark.pedantic(
        lambda: run_fold_sweep(tmp_path / "fold", puts=192, segment_size=64),
        rounds=1,
        iterations=1,
    )
    from repro.figures.compaction import fold_table

    report("A8b: file-system segment folding", fold_table(point))
    benchmark.extra_info["files_before"] = point.files_before
    benchmark.extra_info["files_after"] = point.files_after
    assert point.files_before == 192
    # 192 single-put files fold into ceil(192/64) = 3 segments.
    assert point.files_after <= 3 + 1  # +1 tolerates an unfoldable straggler
    assert point.folds >= 3
