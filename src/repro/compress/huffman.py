"""Canonical Huffman coding over byte alphabets.

Used as the entropy back end of both the ``gz-like`` (LZ77) and ``bz-like``
(BWT) pipelines.  Codes are *canonical*: only code lengths are stored in the
stream header; codebooks are reconstructed deterministically from them.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Tuple

from repro.compress.bitio import BitReader, BitWriter, read_varint, write_varint

ALPHABET = 256


def build_code_lengths(freqs: Dict[int, int]) -> Dict[int, int]:
    """Compute Huffman code lengths from symbol frequencies.

    Handles the degenerate cases of zero symbols (empty mapping) and a single
    symbol (assigned length 1 so the stream is decodable).
    """
    symbols = [(f, s) for s, f in freqs.items() if f > 0]
    if not symbols:
        return {}
    if len(symbols) == 1:
        return {symbols[0][1]: 1}
    # Heap of (weight, tiebreak, node); node is either a leaf symbol or a
    # pair of child nodes.  The tiebreak keeps ordering total (determinism).
    heap: List[Tuple[int, int, object]] = []
    tie = 0
    for f, s in sorted(symbols):
        heap.append((f, tie, s))
        tie += 1
    heapq.heapify(heap)
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, tie, (n1, n2)))
        tie += 1
    lengths: Dict[int, int] = {}

    stack: List[Tuple[object, int]] = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, tuple):
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
        else:
            lengths[node] = depth
    return lengths


def canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Assign canonical codes ``symbol -> (code, length)`` from lengths.

    Symbols are ordered by (length, symbol); codes increase by one within a
    length and shift left when the length grows — the classic canonical rule.
    """
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for sym, length in ordered:
        code <<= length - prev_len
        codes[sym] = (code, length)
        code += 1
        prev_len = length
    return codes


class CanonicalDecoder:
    """Bit-serial decoder for a canonical code."""

    def __init__(self, lengths: Dict[int, int]):
        self._by_length: Dict[int, Dict[int, int]] = {}
        for sym, (code, length) in canonical_codes(lengths).items():
            self._by_length.setdefault(length, {})[code] = sym
        self.max_length = max(self._by_length) if self._by_length else 0

    def decode_symbol(self, reader: BitReader) -> int:
        code = 0
        for length in range(1, self.max_length + 1):
            code = (code << 1) | reader.read_bit()
            table = self._by_length.get(length)
            if table is not None and code in table:
                return table[code]
        raise ValueError("invalid Huffman code in stream")


def _encode_lengths_header(lengths: Dict[int, int]) -> bytes:
    """Serialize the 256-entry length table (0 = absent symbol)."""
    table = bytearray(ALPHABET)
    for sym, length in lengths.items():
        if not 0 <= sym < ALPHABET:
            raise ValueError(f"symbol {sym} outside byte alphabet")
        if length > 255:
            raise ValueError(f"code length {length} too large")
        table[sym] = length
    return bytes(table)


def _decode_lengths_header(data: bytes, offset: int) -> Tuple[Dict[int, int], int]:
    if len(data) < offset + ALPHABET:
        raise EOFError("truncated Huffman header")
    table = data[offset : offset + ALPHABET]
    lengths = {sym: ln for sym, ln in enumerate(table) if ln}
    return lengths, offset + ALPHABET


def huffman_encode_symbols(symbols: Iterable[int], lengths: Dict[int, int], writer: BitWriter) -> None:
    codes = canonical_codes(lengths)
    for sym in symbols:
        code, length = codes[sym]
        writer.write_bits(code, length)


def huffman_compress(data: bytes) -> bytes:
    """Self-contained Huffman compression of a byte string.

    Layout: varint original length · 256-byte length table · padded bitstream.
    """
    freqs: Dict[int, int] = {}
    for b in data:
        freqs[b] = freqs.get(b, 0) + 1
    lengths = build_code_lengths(freqs)
    writer = BitWriter()
    huffman_encode_symbols(data, lengths, writer)
    return write_varint(len(data)) + _encode_lengths_header(lengths) + writer.getvalue()


def huffman_decompress(blob: bytes) -> bytes:
    n, offset = read_varint(blob, 0)
    lengths, offset = _decode_lengths_header(blob, offset)
    if n == 0:
        return b""
    if not lengths:
        raise ValueError("non-empty payload but empty codebook")
    decoder = CanonicalDecoder(lengths)
    reader = BitReader(blob, start_byte=offset)
    out = bytearray()
    for _ in range(n):
        out.append(decoder.decode_symbol(reader))
    return bytes(out)
