"""The client half of a fleet member: a store interface over sockets.

:class:`RemoteStore` presents the
:class:`~repro.store.interface.ProvenanceStoreInterface` surface of a
worker-hosted store by composing the existing typed port clients —
:class:`~repro.core.client.ProvenanceRecordClient` for the record port,
:class:`~repro.core.client.ProvenanceQueryClient` for the query port —
over an :class:`~repro.soa.transport.EnvelopeClient` (which has the same
``call`` signature as the in-process bus, so those clients run unmodified).

That makes a :class:`~repro.store.distributed.StoreRouter` and a
:class:`~repro.store.distributed.FederatedQueryClient` work over a process
fleet without changing a line: routing hashes keys locally, reads and
writes go through the same ``prep-*`` documents the in-process path uses —
which is also why results are byte-identical across transports — and the
federated client's generation-vector caching keys off
:attr:`RemoteStore.generation` (one ``admin`` round trip per member).

Not everything crosses the wire: :meth:`RemoteStore.all_assertions` (the
consolidation walk) raises — consolidation is an admin-side job run where
the logs live, not a streaming RPC.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.client import ProvenanceQueryClient, ProvenanceRecordClient
from repro.core.passertion import (
    ActorStatePAssertion,
    InteractionKey,
    InteractionPAssertion,
    ViewKind,
)
from repro.soa.transport import EnvelopeClient
from repro.soa.xmldoc import XmlElement
from repro.store.interface import Assertion, StoreCounts


class RemoteStore:
    """Store-interface proxy for one socket-served fleet worker.

    Duck-typed rather than an ABC subclass: it implements the interface's
    *remote-meaningful* surface (writes, reads, counts, generations,
    close) and deliberately refuses the local-only parts.
    """

    def __init__(
        self,
        client: EnvelopeClient,
        endpoint: str = "preserv",
        name: Optional[str] = None,
        on_close: Optional[Callable[[], None]] = None,
    ):
        self.name = name or endpoint
        self.client = client
        self._records = ProvenanceRecordClient(
            client,  # same call signature as the bus
            store_endpoint=endpoint,
            client_endpoint=f"{self.name}-writer",
        )
        self._queries = ProvenanceQueryClient(
            client,
            store_endpoint=endpoint,
            client_endpoint=f"{self.name}-reader",
        )
        self._endpoint = endpoint
        self._on_close = on_close
        self._closed = False
        #: interface parity: no scheduler is attached client-side (the
        #: worker owns its compaction).
        self.maintenance = None

    # -- write path ----------------------------------------------------------
    def put(self, assertion: Assertion) -> None:
        ack = self._records.record(assertion)
        if not ack.ok:  # pragma: no cover - rejections raise as Faults
            raise RuntimeError(f"worker rejected record: {ack.detail}")

    def put_many(self, assertions: Iterable[Assertion]) -> int:
        return self._records.record_many(list(assertions))

    # -- read path -----------------------------------------------------------
    def interaction_keys(self) -> List[InteractionKey]:
        return self._queries.interaction_keys()

    def interaction_passertions(
        self, key: InteractionKey, view: Optional[ViewKind] = None
    ) -> List[InteractionPAssertion]:
        return self._queries.interaction_passertions(key, view)

    def actor_state_passertions(
        self,
        key: InteractionKey,
        view: Optional[ViewKind] = None,
        state_type: Optional[str] = None,
    ) -> List[ActorStatePAssertion]:
        return self._queries.actor_state_passertions(key, view, state_type)

    def group_members(self, group_id: str) -> List[InteractionKey]:
        return self._queries.group_members(group_id)

    def groups_of(self, key: InteractionKey) -> List[str]:
        return self._queries.groups_of(key)

    def group_ids(self, kind: Optional[str] = None) -> List[str]:
        return self._queries.group_ids(kind)

    def passertion_counts(self, key: InteractionKey) -> "Tuple[int, int]":
        return self._queries.passertion_counts(key)

    def counts(self) -> StoreCounts:
        return self._queries.counts()

    def all_assertions(self):
        raise NotImplementedError(
            f"all_assertions() does not cross the wire; run consolidation "
            f"against {self.name!r}'s log directory directly"
        )

    # -- cache freshness ------------------------------------------------------
    def _admin(self, op: str, **attrs: str) -> XmlElement:
        payload = XmlElement("admin", {"op": op, **attrs})
        return self.client.call(
            source=f"{self.name}-admin",
            target=self._endpoint,
            operation="admin",
            payload=payload,
        )

    @property
    def generation(self) -> int:
        """The worker store's write generation (one admin round trip)."""
        return int(self._admin("generation").attrs["generation"])

    def generation_token(self, scope: Optional[str] = None) -> object:
        """Scoped freshness token, as an opaque wire string."""
        attrs = {"scope": scope} if scope else {}
        return self._admin("generation-token", **attrs).attrs["token"]

    def shard_generations(self) -> tuple:
        raw = self._admin("shard-generations").attrs["generations"]
        return tuple(int(g) for g in raw.split(",") if g)

    def sequence_watermark(self) -> int:
        """The worker log's next sequence number (the resync cursor)."""
        return int(self._admin("watermark").attrs["watermark"])

    def scan_suffix(
        self, after: int = 0, limit: int = 1024
    ) -> List[Tuple[int, str]]:
        """The worker log's suffix past ``after``, as serialized text.

        Completes :class:`~repro.store.interface.ResyncCapable` for the
        proxy, so a RemoteStore can itself seed a peer's resync.  One
        ``replicate pull`` round trip (the worker caps the page at its
        own limit; pass a smaller ``limit`` to page manually).
        """
        entries, _next, _done = self.replicate_pull(after=after, limit=limit)
        return [(seq, el.serialize()) for seq, el in entries]

    def checkpoint(self) -> str:
        """Snapshot the worker's index now; returns the snapshot path."""
        return self._admin("checkpoint").attrs["snapshot"]

    def checkpoint_stats(self) -> Dict[str, str]:
        """The worker's recovery/checkpoint counters, as wire strings."""
        return dict(self._admin("checkpoint-stats").attrs)

    # -- resync stream ---------------------------------------------------------
    def _replicate(self, payload: XmlElement) -> XmlElement:
        return self.client.call(
            source=f"{self.name}-resync",
            target=self._endpoint,
            operation="replicate",
            payload=payload,
        )

    def replicate_pull(
        self, after: int = 0, limit: int = 256
    ) -> Tuple[List[Tuple[int, XmlElement]], int, bool]:
        """One page of this worker's log past cursor ``after``.

        Returns ``(entries, next_cursor, done)`` where each entry is
        ``(sequence, assertion_element)`` in global insertion order.
        """
        page = self._replicate(
            XmlElement(
                "replicate",
                {"mode": "pull", "after": str(after), "limit": str(limit)},
            )
        )
        entries: List[Tuple[int, XmlElement]] = []
        for entry in page.find_all("entry"):
            inner = next(entry.iter_elements(), None)
            if inner is not None:
                entries.append((int(entry.attrs["seq"]), inner))
        return (
            entries,
            int(page.attrs["next"]),
            page.attrs.get("done") == "true",
        )

    def replicate_push(
        self, assertions: Iterable[XmlElement]
    ) -> Tuple[int, int]:
        """Apply wire-form assertions, skipping duplicates.

        Returns ``(applied, skipped)`` — idempotent, so a crashed resync
        can simply replay its last page.
        """
        payload = XmlElement("replicate", {"mode": "push"})
        for el in assertions:
            payload.element("entry").add(el)
        ack = self._replicate(payload)
        return int(ack.attrs["applied"]), int(ack.attrs["skipped"])

    def ping(self) -> Dict[str, str]:
        """Liveness probe; returns the worker's pong attributes."""
        response = self.client.call(
            source=f"{self.name}-admin",
            target=self._endpoint,
            operation="ping",
            payload=XmlElement("ping"),
        )
        return dict(response.attrs)

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker down (via ``on_close``) and drop the connections.

        Idempotent, like every backend ``close`` in the store stack.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self._on_close is not None:
                self._on_close()
        finally:
            self.client.close()


__all__ = ["RemoteStore"]
