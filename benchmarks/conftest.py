"""Benchmark-suite configuration.

Each ``test_bench_*`` module regenerates one evaluation artefact of the
paper (see DESIGN.md's experiment index).  Benches both *time* the harness
unit with pytest-benchmark and *assert* the paper's shape criteria
(linearity, orderings, overhead bounds, slope ratios), printing the
regenerated table so ``pytest benchmarks/ --benchmark-only -s`` reproduces
the figures as text.
"""

from __future__ import annotations

import pytest


def print_block(title: str, body: str) -> None:
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def report():
    return print_block
