"""Tests for the bulk-ingest path: put_many, group commit, batch recovery.

The acceptance bar: ``put_many`` must be semantically identical to a
sequence of ``put`` calls — duplicate detection, group idempotence, and
replay-after-reopen all produce identical indexes — while the durability
layer turns each batch into a single group commit.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.passertion import (
    ActorStatePAssertion,
    GroupAssertion,
    GroupKind,
    InteractionKey,
    InteractionPAssertion,
    ViewKind,
)
from repro.core.prep import PrepAck, PrepRecord
from repro.soa.bus import MessageBus
from repro.soa.xmldoc import XmlElement
from repro.store.backends import FileSystemBackend, KVLogBackend, MemoryBackend
from repro.store.distributed import StoreRouter
from repro.store.interface import DuplicateAssertionError
from repro.store.kvlog import CorruptRecordError, KVLog
from repro.store.service import PReServActor

# -- helpers ----------------------------------------------------------------

BACKENDS = ["memory", "filesystem", "kvlog"]


def make_backend(name: str, tmp_path, sub: str = ""):
    if name == "memory":
        return MemoryBackend()
    if name == "filesystem":
        return FileSystemBackend(tmp_path / f"fs{sub}")
    return KVLogBackend(tmp_path / f"kv{sub}.db")


def key(i: int) -> InteractionKey:
    return InteractionKey(interaction_id=f"m-{i:04d}", sender="c", receiver="s")


def ipa(i: int, view=ViewKind.SENDER) -> InteractionPAssertion:
    content = XmlElement("doc")
    content.add(f"payload {i} with <markup> & 'quotes'")
    return InteractionPAssertion(
        interaction_key=key(i),
        view=view,
        asserter="c",
        local_id=f"i-{i}-{view.value}",
        operation="op",
        content=content,
    )


def spa(i: int) -> ActorStatePAssertion:
    content = XmlElement("script")
    content.add(f"#!/bin/sh\n# job {i}\n")
    return ActorStatePAssertion(
        interaction_key=key(i),
        view=ViewKind.RECEIVER,
        asserter="s",
        local_id=f"s-{i}",
        state_type="script",
        content=content,
    )


def ga(i: int, group="session-A") -> GroupAssertion:
    return GroupAssertion(
        group_id=group, kind=GroupKind.SESSION, member=key(i), asserter="c"
    )


def mixed_batch(n: int):
    out = []
    for i in range(n):
        out.append(ipa(i, ViewKind.SENDER))
        out.append(ipa(i, ViewKind.RECEIVER))
        out.append(spa(i))
        out.append(ga(i))
    return out


def index_state(store):
    """Everything the in-memory index knows, for equivalence comparisons."""
    return (
        store.counts(),
        store.interaction_keys(),
        list(store.all_assertions()),
        store.group_ids(),
    )


# -- put_many equivalence ----------------------------------------------------


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestPutManyEquivalence:
    def test_identical_to_put_sequence(self, backend_name, tmp_path):
        one = make_backend(backend_name, tmp_path, "one")
        many = make_backend(backend_name, tmp_path, "many")
        batch = mixed_batch(7)
        for a in batch:
            one.put(a)
        assert many.put_many(batch) == len(batch)
        assert index_state(one) == index_state(many)
        one.close()
        many.close()
        if backend_name == "memory":
            return
        # Replay after reopen: both persisted forms rebuild the same index.
        one = make_backend(backend_name, tmp_path, "one")
        many = make_backend(backend_name, tmp_path, "many")
        assert index_state(one) == index_state(many)
        one.close()
        many.close()

    def test_duplicate_mid_batch_matches_put_loop(self, backend_name, tmp_path):
        one = make_backend(backend_name, tmp_path, "one")
        many = make_backend(backend_name, tmp_path, "many")
        batch = [ipa(1), ipa(2), ipa(1), ipa(3)]  # duplicate at position 2
        with pytest.raises(DuplicateAssertionError):
            for a in batch:
                one.put(a)
        with pytest.raises(DuplicateAssertionError):
            many.put_many(batch)
        assert index_state(one) == index_state(many)
        one.close()
        many.close()
        if backend_name == "memory":
            return
        # The prefix accepted before the duplicate must be durable, exactly
        # as a put loop would have left it.
        one = make_backend(backend_name, tmp_path, "one")
        many = make_backend(backend_name, tmp_path, "many")
        assert index_state(one) == index_state(many)
        assert len(one.interaction_passertions(key(1))) == 1
        assert len(one.interaction_passertions(key(2))) == 1
        one.close()
        many.close()

    def test_group_idempotence_in_batch(self, backend_name, tmp_path):
        store = make_backend(backend_name, tmp_path)
        stored = store.put_many([ga(1), ga(1), ga(2)])
        assert stored == 3  # accepted, like three put calls
        assert store.counts().group_assertions == 2  # but membership dedupes
        assert store.group_members("session-A") == [key(1), key(2)]
        store.close()

    def test_empty_batch_is_noop(self, backend_name, tmp_path):
        store = make_backend(backend_name, tmp_path)
        assert store.put_many([]) == 0
        assert store.counts().total == 0
        store.close()

    def test_writes_after_batch(self, backend_name, tmp_path):
        store = make_backend(backend_name, tmp_path)
        store.put_many([ipa(1), ipa(2)])
        store.put(ipa(3))
        store.put_many([ipa(4)])
        assert store.counts().interaction_passertions == 4
        store.close()
        if backend_name == "memory":
            return
        reopened = make_backend(backend_name, tmp_path)
        assert reopened.counts().interaction_passertions == 4
        assert reopened.interaction_keys() == [key(i) for i in (1, 2, 3, 4)]
        reopened.close()


class TestFileSystemSegments:
    def test_batch_writes_segment_files(self, tmp_path):
        store = FileSystemBackend(tmp_path / "fs", segment_size=10)
        store.put_many(mixed_batch(10))  # 40 assertions -> 4 segment files
        files = list((tmp_path / "fs").glob("*.xml"))
        assert len(files) == 4
        store.close()
        reopened = FileSystemBackend(tmp_path / "fs", segment_size=10)
        assert reopened.counts().total == 40
        reopened.close()

    def test_mixed_singles_and_segments_replay_in_order(self, tmp_path):
        store = FileSystemBackend(tmp_path / "fs", segment_size=4)
        store.put(ipa(0))
        store.put_many([ipa(1), ipa(2), ipa(3), ipa(4), ipa(5)])
        store.put(ipa(6))
        order = [a.local_id for a in store.all_assertions()]
        store.close()
        reopened = FileSystemBackend(tmp_path / "fs", segment_size=4)
        assert [a.local_id for a in reopened.all_assertions()] == order
        reopened.close()


# -- KVLog group commit and crash recovery ----------------------------------


class TestKVLogBatch:
    def test_put_many_matches_put_loop(self, tmp_path):
        a = KVLog(tmp_path / "a.db")
        b = KVLog(tmp_path / "b.db")
        pairs = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(20)]
        for k, v in pairs:
            a.put(k, v)
        assert b.put_many(pairs) == 20
        assert list(a.items()) == list(b.items())
        assert list(a.scan()) == list(b.scan())
        a.close()
        b.close()

    def test_scan_yields_live_records_in_log_order(self, tmp_path):
        with KVLog(tmp_path / "db") as log:
            log.put(b"a", b"1")
            log.put(b"b", b"2")
            log.put(b"a", b"3")  # supersedes the first record
            log.delete(b"b")
            log.put(b"c", b"4")
            assert list(log.scan()) == [(b"a", b"3"), (b"c", b"4")]

    def test_duplicate_key_within_batch_last_wins(self, tmp_path):
        with KVLog(tmp_path / "db") as log:
            log.put_many([(b"k", b"v1"), (b"k", b"v2")])
            assert log.get(b"k") == b"v2"
            assert len(log) == 1
            assert log.dead_bytes > 0

    def test_torn_batch_tail_truncates_cleanly(self, tmp_path):
        """Crash mid-batch: the whole records written before the tear
        survive, the torn tail is dropped, and the index rebuilds."""
        path = tmp_path / "db"
        with KVLog(path) as log:
            log.put_many([(b"k1", b"value-one"), (b"k2", b"value-two")])
            size_full = log.file_size()
        # Tear the file inside the second record of the batch.
        data = path.read_bytes()
        assert len(data) == size_full
        path.write_bytes(data[: size_full - 5])
        with KVLog(path) as log:
            assert log.get(b"k1") == b"value-one"
            assert log.get(b"k2") is None
            assert len(log) == 1
            # Appends after recovery stay well-formed.
            log.put_many([(b"k3", b"value-three")])
        with KVLog(path) as log:
            assert dict(log.items()) == {b"k1": b"value-one", b"k3": b"value-three"}

    def test_scan_raises_on_mid_log_corruption(self, tmp_path):
        """Corruption *behind* live records must not silently drop them."""
        path = tmp_path / "db"
        log = KVLog(path)
        log.put(b"a", b"1")
        first_size = log.file_size()
        log.put(b"b", b"2")
        log.put(b"c", b"3")
        # Flip a byte inside record b's value while the log is open.
        with open(path, "r+b") as f:
            f.seek(first_size + 14)
            byte = f.read(1)
            f.seek(first_size + 14)
            f.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(CorruptRecordError):
            list(log.scan())
        size_before = log.file_size()
        with pytest.raises(CorruptRecordError):
            log.compact()
        # Compaction aborted with the original log untouched; indexed reads
        # past the corruption still work.
        assert log.file_size() == size_before
        assert log.get(b"c") == b"3"
        log.close()

    def test_backend_batch_crash_recovery(self, tmp_path):
        """Torn KVLogBackend batch: clean tail truncation + index rebuild."""
        path = tmp_path / "kv.db"
        store = KVLogBackend(path)
        store.put_many([ipa(1), ipa(2), ipa(3)])
        store.close()
        data = path.read_bytes()
        path.write_bytes(data[:-10])  # tear inside the last record
        reopened = KVLogBackend(path)
        assert reopened.counts().interaction_passertions == 2
        assert reopened.interaction_keys() == [key(1), key(2)]
        # The store accepts new writes, including a re-record of the lost one.
        reopened.put(ipa(3))
        reopened.close()
        final = KVLogBackend(path)
        assert final.counts().interaction_passertions == 3
        final.close()


class TestRouterBatch:
    def test_put_many_routes_like_put(self):
        router_one = StoreRouter({"a": MemoryBackend(), "b": MemoryBackend()})
        router_many = StoreRouter({"a": MemoryBackend(), "b": MemoryBackend()})
        batch = mixed_batch(6)
        placements_one = [router_one.put(a) for a in batch]
        placements_many = router_many.put_many(batch)
        assert placements_one == placements_many
        assert router_one.records_routed == router_many.records_routed
        for name in ("a", "b"):
            assert index_state(router_one.store(name)) == index_state(
                router_many.store(name)
            )
            assert router_one.cross_links(name) == router_many.cross_links(name)

    def test_batch_failure_keeps_routing_metadata_consistent(self):
        router = StoreRouter({"a": MemoryBackend(), "b": MemoryBackend()})
        router.put(ipa(1))  # pre-existing: the batch's duplicate
        routed_before = router.records_routed
        counts_before = {
            n: router.store(n).counts().total for n in router.store_names
        }
        owner = router.owner_of(key(1))
        same = next(
            i for i in range(2, 50) if router.owner_of(key(i)) == owner
        )
        other = next(
            i for i in range(2, 50) if router.owner_of(key(i)) != owner
        )
        # The failing store persists `same` (its batch prefix) before the
        # duplicate raises; `other` may or may not land depending on order.
        with pytest.raises(DuplicateAssertionError):
            router.put_many([ipa(same), ipa(1), ipa(other)])
        # records_routed covers everything durably stored: the new
        # persistences of this call plus the pre-existing duplicate (which a
        # put loop would also have counted before raising).
        persisted_new = sum(
            router.store(n).counts().total - counts_before[n]
            for n in router.store_names
        )
        assert router.records_routed - routed_before == persisted_new + 1
        # The durably-stored prefix is navigable: resolving its key from the
        # non-owner store follows a cross-link to the owner.
        non_owner = next(n for n in router.store_names if n != owner)
        assert router.resolve(non_owner, key(same)) == owner
        # And every cross-link points at a store that really holds the data.
        for name in router.store_names:
            for link in router.cross_links(name):
                home = router.store(link.store)
                assert home.interaction_passertions(
                    link.interaction_key
                ) or home.actor_state_passertions(link.interaction_key)


# -- property-based: batch round-trip through the service --------------------

_token = st.from_regex(r"[A-Za-z][A-Za-z0-9._-]{0,10}", fullmatch=True)
_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x17F),
    min_size=1,
    max_size=40,
).filter(lambda s: s.strip())

_keys = st.builds(InteractionKey, interaction_id=_token, sender=_token, receiver=_token)


def _content(text: str) -> XmlElement:
    el = XmlElement("doc")
    el.add(text)
    return el


_interaction_pas = st.builds(
    lambda key, view, asserter, local_id, op, text: InteractionPAssertion(
        interaction_key=key,
        view=view,
        asserter=asserter,
        local_id=local_id,
        operation=op,
        content=_content(text),
    ),
    _keys,
    st.sampled_from(list(ViewKind)),
    _token,
    _token,
    _token,
    _text,
)

_state_pas = st.builds(
    lambda key, view, asserter, local_id, stype, text: ActorStatePAssertion(
        interaction_key=key,
        view=view,
        asserter=asserter,
        local_id=local_id,
        state_type=stype,
        content=_content(text),
    ),
    _keys,
    st.sampled_from(list(ViewKind)),
    _token,
    _token,
    _token,
    _text,
)

_session_groups = st.builds(
    GroupAssertion,
    group_id=_token,
    kind=st.just(GroupKind.SESSION),
    member=_keys,
    asserter=_token,
    sequence=st.none(),
)


class TestBatchServiceRoundtrip:
    @given(
        st.lists(
            st.one_of(_interaction_pas, _state_pas),
            min_size=1,
            max_size=12,
            unique_by=lambda a: a.store_key,
        ),
        st.lists(_session_groups, max_size=4),
        st.sampled_from(["filesystem", "kvlog"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_prep_record_batch_survives_reopen(
        self, tmp_path_factory, passertions, groups, backend_name
    ):
        """prep-record-batch -> service -> backend -> reopen/replay."""
        tmp_path = tmp_path_factory.mktemp("bulk")
        assertions = list(passertions) + list(groups)
        backend = make_backend(backend_name, tmp_path)
        bus = MessageBus()
        bus.register(PReServActor(backend))

        body = XmlElement("prep-record-batch")
        for a in assertions:
            body.add(PrepRecord(assertion=a).to_xml())
        ack = PrepAck.from_xml(bus.call("client", "preserv", "record", body))
        assert ack.ok and ack.count == len(assertions)
        live_state = index_state(backend)
        backend.close()

        reopened = make_backend(backend_name, tmp_path)
        counts, keys, replayed, group_ids = index_state(reopened)
        assert counts == live_state[0]
        assert keys == live_state[1]
        assert group_ids == live_state[3]
        # Replay preserves both order and identity of every assertion.
        assert len(replayed) == len(live_state[2])
        for restored, original in zip(replayed, live_state[2]):
            if isinstance(original, GroupAssertion):
                assert restored == original
            else:
                assert restored.store_key == original.store_key
                assert restored.content.text == original.content.text
        reopened.close()
