#!/usr/bin/env python
"""Grid-scale what-if: recording overhead on the simulated VDT/Condor testbed.

Uses the discrete-event Condor simulator and the testbed-calibrated cost
model to explore questions the paper's §6/§7 raise:

* how does recording configuration change end-to-end time (Figure 4)?
* how coarse must activity granularity be for recording to stay cheap?
* what happens to the paper's single-VM numbers on a multi-worker cluster?

Also demonstrates defining the workflow in the VDL-like language.

Run:  python examples/grid_simulation.py
"""

from __future__ import annotations

from repro.app.costmodel import Fig4CostModel, RecordingConfig
from repro.figures.ablation import granularity_table, run_granularity
from repro.figures.fig4 import fig4_table, run_fig4, simulate_run
from repro.grid.vdl import parse_vdl

WORKFLOW_VDL = """
workflow compressibility {
  activity collate       script="collate.sh"  sample_kb="100";
  activity encode        script="encode.sh"   after="collate" grouping="hp2";
  activity shuffle_batch script="shuffle.sh"  after="encode"  permutations="100";
  activity measure_batch script="measure.sh"  after="shuffle_batch" codec="gzip";
  activity collate_sizes script="sizes.sh"    after="measure_batch";
  activity average       script="average.sh"  after="collate_sizes";
}
"""


def main() -> None:
    dag = parse_vdl(WORKFLOW_VDL)
    print(f"workflow {dag.name!r}: {len(dag)} activities, "
          f"levels {[lvl for lvl in dag.levels()]}")

    print("\n=== Figure 4: recording overhead, 100-800 permutations ===")
    print(fig4_table(run_fig4()))

    print("\n=== Granularity: permutations batched per script ===")
    print(granularity_table(run_granularity()))

    print("\n=== Scaling out: the same 800-permutation run on more workers ===")
    model = Fig4CostModel()
    print(f"{'workers':>8} {'no recording (s)':>18} {'async recording (s)':>20}")
    for workers in (1, 2, 4, 8):
        none_s = simulate_run(model, RecordingConfig.NONE, 800, workers=workers)
        async_s = simulate_run(model, RecordingConfig.ASYNC, 800, workers=workers)
        print(f"{workers:>8} {none_s:>18.1f} {async_s:>20.1f}")
    print("\n(the paper's deployment was a single VM; the simulator shows the"
          "\n workflow's inherent parallelism once more Condor slots exist)")


if __name__ == "__main__":
    main()
