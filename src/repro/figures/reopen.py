"""A11 — O(live) recovery: reopen cost vs ingest history, ± checkpoints.

The paper's store is long-lived: a provenance store accumulates
p-assertions for the lifetime of the experiments it records, but it also
restarts — deployments move, hosts reboot, the fleet supervisor respawns
crashed workers.  Without checkpoints every reopen replays the entire
log to rebuild the in-memory index, so restart cost grows with *all
history ever recorded*.  With index checkpoints
(:mod:`repro.store.checkpoint`) reopen loads the newest snapshot and
replays only the log tail past its watermark — O(live index + tail),
independent of how much truncated history preceded it.

This sweep measures exactly that: for each history size ``H`` it builds

* a **plain** store — ingest ``H`` records, close, reopen (full replay);
* a **checkpointed** store — ingest ``H - tail`` records, checkpoint
  (``retain=1``, so the covered log prefix truncates immediately),
  ingest the last ``tail`` records, close, reopen (snapshot + tail).

Both stores hold byte-identical assertion streams at reopen time; the
only difference is the recovery path.  ``reopen_s`` is the store's own
:attr:`~repro.store.checkpoint.CheckpointStats.open_s` (the replay
timer inside ``_replay``), min over ``repeats`` reopens, so the figure
is not polluted by constructor overheads unrelated to recovery.

The shape criteria the bench asserts (see
``benchmarks/test_bench_reopen.py``): checkpointed reopen stays roughly
flat as history doubles, and at the largest history it beats full
replay by at least 5x.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Sequence

from repro.figures.microbench import pregenerated_record
from repro.figures.stats import format_table
from repro.store.backends import FileSystemBackend, KVLogBackend
from repro.store.checkpoint import snapshot_dir_for
from repro.store.interface import ProvenanceStoreInterface

#: records ingested *after* the checkpoint — the replay tail every
#: checkpointed reopen pays for, independent of history size.
TAIL_RECORDS = 64


@dataclass(frozen=True)
class ReopenPoint:
    """One reopen measurement (a backend × history × recovery mode cell)."""

    backend: str
    shards: int
    records: int
    #: ``"full-replay"`` (plain store) or ``"snapshot+tail"``.
    mode: str
    reopen_s: float
    #: on-disk footprint at reopen time (log + snapshots), bytes.
    disk_bytes: int
    #: records replayed from the log during the reopen.
    tail_records: int


def _make_store(
    backend: str, root: Path, shards: int
) -> ProvenanceStoreInterface:
    # sync=False: the sweep times *reopen*, not ingest; retain=1 so a
    # single checkpoint immediately truncates the covered prefix (the
    # bench directory is disposable — production keeps the default
    # retention ladder).
    if backend == "kvlog":
        return KVLogBackend(root, sync=False, shards=shards, checkpoint_retain=1)
    if backend == "filesystem":
        return FileSystemBackend(root, sync=False, checkpoint_retain=1)
    raise ValueError(f"unknown reopen-sweep backend {backend!r}")


def _dir_bytes(root: Path) -> int:
    """On-disk footprint of a store path: log + snapshots.

    Directory layouts hold their ``checkpoints/`` dir inside the root;
    the single-file KVLog layout keeps its snapshots in a sibling
    directory, which must be counted explicitly.
    """
    if root.is_dir():
        return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())
    total = root.stat().st_size if root.is_file() else 0
    ckpt = snapshot_dir_for(root)
    if ckpt.is_dir():
        total += sum(p.stat().st_size for p in ckpt.rglob("*") if p.is_file())
    return total


def _timed_reopen(
    backend: str, root: Path, shards: int, repeats: int
) -> "tuple[float, int, str]":
    """Min reopen time over ``repeats``, with the last open's stats."""
    best = float("inf")
    for _ in range(repeats):
        store = _make_store(backend, root, shards)
        stats = store.checkpoint_stats
        store.close()
        best = min(best, stats.open_s)
    return best, stats.tail_records, stats.recovery_mode


def run_reopen_sweep(
    tmp_dir: Path,
    backends: Sequence[str] = ("kvlog",),
    shard_counts: Sequence[int] = (1,),
    history_sizes: Sequence[int] = (256, 512, 1024),
    tail: int = TAIL_RECORDS,
    repeats: int = 3,
    batch_size: int = 128,
) -> List[ReopenPoint]:
    """Reopen cost, full replay vs snapshot+tail, per history size."""
    if repeats < 1 or batch_size < 1:
        raise ValueError("repeats and batch_size must be >= 1")
    if any(h <= tail for h in history_sizes):
        raise ValueError(f"history sizes must exceed the tail ({tail})")
    corpus_size = max(history_sizes)
    corpus = [pregenerated_record(i).assertion for i in range(corpus_size)]
    points: List[ReopenPoint] = []
    for backend in backends:
        for shards in shard_counts:
            if shards != 1 and backend != "kvlog":
                continue
            for history in history_sizes:
                label = f"{backend}-s{shards}-h{history}"

                def ingest(store, lo: int, hi: int) -> None:
                    for start in range(lo, hi, batch_size):
                        store.put_many(corpus[start : min(start + batch_size, hi)])

                # Plain store: the full-replay baseline.
                plain = tmp_dir / f"{label}-plain"
                store = _make_store(backend, plain, shards)
                ingest(store, 0, history)
                store.close()
                reopen_s, tail_records, mode = _timed_reopen(
                    backend, plain, shards, repeats
                )
                points.append(
                    ReopenPoint(
                        backend=backend,
                        shards=shards,
                        records=history,
                        mode=mode,
                        reopen_s=reopen_s,
                        disk_bytes=_dir_bytes(plain),
                        tail_records=tail_records,
                    )
                )
                # Checkpointed store: same stream, snapshot+tail reopen.
                ckpt = tmp_dir / f"{label}-ckpt"
                store = _make_store(backend, ckpt, shards)
                ingest(store, 0, history - tail)
                store.checkpoint()
                ingest(store, history - tail, history)
                store.close()
                reopen_s, tail_records, mode = _timed_reopen(
                    backend, ckpt, shards, repeats
                )
                points.append(
                    ReopenPoint(
                        backend=backend,
                        shards=shards,
                        records=history,
                        mode=mode,
                        reopen_s=reopen_s,
                        disk_bytes=_dir_bytes(ckpt),
                        tail_records=tail_records,
                    )
                )
    return points


def reopen_table(points: List[ReopenPoint]) -> str:
    """The A11 text table: one row per (backend, shards, history, mode)."""
    headers = [
        "backend",
        "shards",
        "history",
        "mode",
        "reopen (ms)",
        "tail",
        "disk (KiB)",
        "speedup",
    ]
    by_key = {
        (p.backend, p.shards, p.records, p.mode): p for p in points
    }
    rows = []
    for p in points:
        speedup = ""
        if p.mode == "snapshot+tail":
            full = by_key.get((p.backend, p.shards, p.records, "full-replay"))
            if full is not None and p.reopen_s > 0:
                speedup = f"{full.reopen_s / p.reopen_s:.1f}x"
        rows.append(
            [
                p.backend,
                p.shards,
                p.records,
                p.mode,
                f"{p.reopen_s * 1000:.2f}",
                p.tail_records,
                f"{p.disk_bytes / 1024:.1f}",
                speedup,
            ]
        )
    return format_table(headers, rows)


def write_reopen_json(points: List[ReopenPoint], path: Path) -> Path:
    """Machine-readable sweep output (the ``BENCH_reopen.json`` artefact)."""
    payload = {
        "figure": "A11-reopen",
        "tail_records": min(
            (p.tail_records for p in points if p.mode == "snapshot+tail"),
            default=0,
        ),
        "points": [asdict(p) for p in points],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


__all__ = [
    "TAIL_RECORDS",
    "ReopenPoint",
    "reopen_table",
    "run_reopen_sweep",
    "write_reopen_json",
]
