"""Tests for hosts and the network model."""

from __future__ import annotations

import pytest

from repro.simkit.hosts import ETHERNET_100MB_BPS, Host, Link, Network
from repro.simkit.kernel import Simulator


class TestLink:
    def test_transfer_time_latency_plus_bandwidth(self):
        link = Link(latency_s=0.001, bandwidth_bps=1_000_000)
        assert link.transfer_time(500_000) == pytest.approx(0.001 + 0.5)

    def test_zero_bytes_costs_latency_only(self):
        link = Link(latency_s=0.002)
        assert link.transfer_time(0) == pytest.approx(0.002)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Link(latency_s=0).transfer_time(-1)

    def test_100mb_ethernet_constant(self):
        # 100 Mb/s = 12.5 MB/s.
        assert ETHERNET_100MB_BPS == pytest.approx(12_500_000)


class TestHost:
    def test_speed_scales_compute_time(self, sim):
        fast = Host(name="fast", sim=sim, speed=2.0)
        slow = Host(name="slow", sim=sim, speed=0.5)
        assert fast.compute_time(10) == pytest.approx(5.0)
        assert slow.compute_time(10) == pytest.approx(20.0)

    def test_invalid_speed_rejected(self, sim):
        with pytest.raises(ValueError):
            Host(name="h", sim=sim, speed=0)

    def test_compute_respects_cpu_slots(self, sim):
        host = Host(name="h", sim=sim, cpus=1)
        finished = []

        def worker(name):
            yield from host.compute(2.0)
            finished.append((name, sim.now))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert finished == [("a", 2.0), ("b", 4.0)]


class TestNetwork:
    def test_duplicate_host_rejected(self, sim):
        net = Network(sim)
        net.add_host("a")
        with pytest.raises(ValueError):
            net.add_host("a")

    def test_connect_unknown_host_rejected(self, sim):
        net = Network(sim)
        net.add_host("a")
        with pytest.raises(KeyError):
            net.connect("a", "ghost", Link(latency_s=0.001))

    def test_loopback_faster_than_default(self, sim):
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        assert net.transfer_time("a", "a", 1000) < net.transfer_time("a", "b", 1000)

    def test_configured_link_used_bidirectionally(self, sim):
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        link = Link(latency_s=0.5, bandwidth_bps=1000)
        net.connect("a", "b", link)
        assert net.transfer_time("a", "b", 100) == pytest.approx(0.5 + 0.1)
        assert net.transfer_time("b", "a", 100) == pytest.approx(0.5 + 0.1)

    def test_unidirectional_connect(self, sim):
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        link = Link(latency_s=0.5)
        net.connect("a", "b", link, bidirectional=False)
        assert net.link("a", "b") is link
        assert net.link("b", "a") is net.default_link

    def test_transfer_event_advances_clock(self, sim):
        net = Network(sim)
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", Link(latency_s=1.0, bandwidth_bps=1000))

        def proc():
            yield net.transfer("a", "b", 500)
            return sim.now

        assert sim.run_until_complete(sim.process(proc())) == pytest.approx(1.5)
