"""Amino-acid grouping schemes (reduced alphabets).

Section 2: "the sequences can be recoded with a reduced alphabet ... each
amino acid symbol is replaced by a symbol representing a group of amino
acids", following Sampath's block-coding result [14].  The experiment's
outer loop searches for "the amino acid groupings that maximise
compressibility", so we ship a family of classical reduced alphabets plus a
constructor for arbitrary user-defined partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.bio.alphabet import AMINO_ACIDS

#: Symbols assigned to groups, in group order.
GROUP_SYMBOLS = "0123456789abcdefghij"


@dataclass(frozen=True)
class GroupingScheme:
    """A partition of the 20 amino acids into named groups."""

    name: str
    groups: Tuple[str, ...]
    _table: Dict[str, str] = field(init=False, repr=False, hash=False, compare=False)

    def __post_init__(self) -> None:
        seen: Dict[str, int] = {}
        for gi, group in enumerate(self.groups):
            if not group:
                raise ValueError(f"{self.name}: empty group at index {gi}")
            for aa in group:
                if aa not in AMINO_ACIDS:
                    raise ValueError(f"{self.name}: {aa!r} is not an amino acid")
                if aa in seen:
                    raise ValueError(
                        f"{self.name}: {aa!r} appears in groups {seen[aa]} and {gi}"
                    )
                seen[aa] = gi
        missing = sorted(set(AMINO_ACIDS) - set(seen))
        if missing:
            raise ValueError(f"{self.name}: amino acids {missing} not covered")
        if len(self.groups) > len(GROUP_SYMBOLS):
            raise ValueError(f"{self.name}: more groups than available symbols")
        table = {
            aa: GROUP_SYMBOLS[gi]
            for gi, group in enumerate(self.groups)
            for aa in group
        }
        object.__setattr__(self, "_table", table)

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def symbol_for(self, amino_acid: str) -> str:
        """The group symbol encoding ``amino_acid``."""
        try:
            return self._table[amino_acid]
        except KeyError:
            raise ValueError(
                f"{amino_acid!r} is not a standard amino acid"
            ) from None

    def group_of(self, amino_acid: str) -> str:
        """The member string of the group containing ``amino_acid``."""
        return self.groups[GROUP_SYMBOLS.index(self.symbol_for(amino_acid))]


def make_grouping(name: str, groups: Sequence[str]) -> GroupingScheme:
    """Validate and construct a user-defined grouping."""
    return GroupingScheme(name=name, groups=tuple(groups))


#: Classical reduced alphabets from the protein-compression literature.
_SCHEMES: Dict[str, GroupingScheme] = {}


def _register(name: str, groups: Sequence[str]) -> None:
    _SCHEMES[name] = make_grouping(name, groups)


# Identity: 20 singleton groups (no reduction — the control).
_register("identity20", tuple(AMINO_ACIDS))

# Hydrophobic / polar split (the canonical HP model).
_register("hp2", ("AILMFWVC", "DEGHKNPQRSTY"))

# Dayhoff's six chemical classes.
_register("dayhoff6", ("AGPST", "C", "DENQ", "FWY", "HKR", "ILMV"))

# GBMR4 (Rackovsky-style 4-letter alphabet).
_register("gbmr4", ("ADKERNTSQ", "YFLIVMCWH", "G", "P"))

# A chemistry-flavoured 7-group alphabet (aliphatic / aromatic / positive /
# negative / amide+hydroxyl / sulphur / conformational).
_register("chemical7", ("AILV", "FWY", "HKR", "DE", "NQST", "CM", "GP"))

# Sampath-inspired 5-group block coding.
_register("sampath5", ("AGST", "CILMV", "DENQ", "FWYH", "KRP"))


def get_grouping(name: str) -> GroupingScheme:
    try:
        return _SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown grouping {name!r}; available: {sorted(_SCHEMES)}"
        ) from None


def available_groupings() -> List[str]:
    return sorted(_SCHEMES)
