"""Bus clients for the two PReServ ports: query and (bulk) record.

Use case 1's measured cost is "about 15 ms to retrieve a script (through one
store invocation) and map it" — the unit of Figure 5's script-comparison
curve.  :class:`ProvenanceQueryClient` performs exactly one bus call per
method so the virtual clock charges match that structure, and counts its
calls for assertions.

:class:`ProvenanceRecordClient` is the submission side: it ships PReP
records to the store's record port, packing many records into a single
``prep-record-batch`` message — the actor-side batching PReServ's library
used to reach its recording throughput.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.passertion import (
    ActorStatePAssertion,
    InteractionKey,
    InteractionPAssertion,
    ViewKind,
    parse_passertion,
)
from repro.core.prep import PrepAck, PrepQuery, PrepRecord, PrepResult
from repro.soa.bus import MessageBus
from repro.soa.xmldoc import XmlElement
from repro.store.interface import Assertion, StoreCounts
from repro.store.querycache import LruMap, QueryPlan


class ProvenanceRecordClient:
    """Typed wrapper over the PReServ record port, batching-aware.

    One bus call carries either a single ``prep-record`` or a whole
    ``prep-record-batch``; :meth:`record_many` slices an assertion stream
    into batch messages so n assertions cost ``ceil(n / batch_size)`` round
    trips instead of n.
    """

    def __init__(
        self,
        bus: MessageBus,
        store_endpoint: str = "preserv",
        client_endpoint: str = "record-client",
    ):
        self.bus = bus
        self.store_endpoint = store_endpoint
        self.client_endpoint = client_endpoint
        self.calls = 0
        self.acked = 0

    @staticmethod
    def _encode_batch(records: Sequence[PrepRecord]) -> XmlElement:
        """One wire body for a chunk of records (single or batch form)."""
        if len(records) == 1:
            return records[0].to_xml()
        body = XmlElement("prep-record-batch")
        for record in records:
            body.add(record.to_xml())
        return body

    def _post(self, body: XmlElement) -> PrepAck:
        """One bus call to the record port; counts and parses the ack."""
        self.calls += 1
        response = self.bus.call(
            source=self.client_endpoint,
            target=self.store_endpoint,
            operation="record",
            payload=body,
        )
        ack = PrepAck.from_xml(response)
        if ack.ok:
            self.acked += ack.count
        return ack

    def _post_checked(self, body: XmlElement) -> int:
        """Post one body; a rejected batch raises instead of returning."""
        ack = self._post(body)
        if not ack.ok:
            raise RuntimeError(f"store rejected record batch: {ack.detail}")
        return ack.count

    def send_records(self, records: Sequence[PrepRecord]) -> PrepAck:
        """Ship prepared PReP records in one bus call; returns the ack."""
        if not records:
            return PrepAck(status="ok", count=0)
        return self._post(self._encode_batch(records))

    def record(self, assertion: Assertion) -> PrepAck:
        """Record a single assertion (one round trip)."""
        return self.send_records([PrepRecord(assertion=assertion)])

    def send_record_stream(
        self,
        records: Iterable[PrepRecord],
        batch_size: int = 64,
        pipeline_depth: int = 1,
    ) -> int:
        """Ship a record stream in batch messages; returns the count acked.

        Chunks lazily, so a generated stream never materializes beyond
        ``pipeline_depth`` batches.  With ``pipeline_depth > 1`` the wire
        encoding of batch k+1 (building its XML body on worker threads)
        overlaps batch k's store round trip via a
        :class:`~repro.store.pipeline.PipelinedIngest` whose commit stage
        is the bus call — batches are sent strictly in stream order, and
        a rejected batch stops the stream: nothing after it is sent.

        Raises ``RuntimeError`` if the store rejects any batch.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        stream = iter(records)
        if pipeline_depth == 1:
            total = 0
            while True:
                chunk = list(itertools.islice(stream, batch_size))
                if not chunk:
                    return total
                total += self._post_checked(self._encode_batch(chunk))
        from repro.store.pipeline import PipelinedIngest

        with PipelinedIngest(
            commit=self._post_checked,
            decode=self._encode_batch,
            depth=pipeline_depth,
            name="record-client",
        ) as engine:
            while True:
                chunk = list(itertools.islice(stream, batch_size))
                if not chunk:
                    break
                engine.submit(chunk)
            engine.flush()
            return engine.stats.records_committed

    def record_many(
        self,
        assertions: Iterable[Assertion],
        batch_size: int = 64,
        pipeline_depth: int = 1,
    ) -> int:
        """Record a stream of assertions in batch messages; returns acked.

        Raises ``RuntimeError`` if the store rejects any batch.  See
        :meth:`send_record_stream` for the pipelined-send contract.
        """
        return self.send_record_stream(
            (PrepRecord(assertion=a) for a in assertions),
            batch_size=batch_size,
            pipeline_depth=pipeline_depth,
        )


class ProvenanceQueryClient:
    """Typed wrapper over the PReServ query port.

    With a ``generation_source`` — a callable returning the store's current
    write generation, e.g. ``backend.generation`` via
    :meth:`~repro.store.service.PReServActor.store_generation` — repeated
    identical queries are answered from a client-side result cache without a
    bus round trip, for as long as the generation has not advanced.  Without
    one, every query goes to the store (``calls`` counts bus calls only;
    ``cache_hits`` counts locally answered queries).
    """

    def __init__(
        self,
        bus: MessageBus,
        store_endpoint: str = "preserv",
        client_endpoint: str = "query-client",
        generation_source: Optional[Callable[[], int]] = None,
        max_cached_results: int = 1024,
    ):
        self.bus = bus
        self.store_endpoint = store_endpoint
        self.client_endpoint = client_endpoint
        self.generation_source = generation_source
        self.calls = 0
        self.cache_hits = 0
        self._results: LruMap = LruMap(max_cached_results)

    def _query(self, query_type: str, **params: str) -> PrepResult:
        query = PrepQuery(query_type=query_type, params=dict(params))
        generation: Optional[int] = None
        cache_key: Optional[Tuple[str, Tuple[Tuple[str, str], ...]]] = None
        if self.generation_source is not None:
            generation = self.generation_source()
            # same canonical key as the server-side result cache
            cache_key = QueryPlan.key_for(query)
            entry = self._results.get(cache_key)
            if entry is not None and entry[0] == generation:
                self.cache_hits += 1
                # fresh wrapper per hit so callers can't poison the entry's
                # item list (the elements themselves are shared, frozen by
                # the server cache when it is enabled)
                return PrepResult(items=list(entry[1].items))
        self.calls += 1
        response = self.bus.call(
            source=self.client_endpoint,
            target=self.store_endpoint,
            operation="query",
            payload=query.to_xml(),
        )
        result = PrepResult.from_xml(response)
        if cache_key is not None and generation is not None:
            # store a private copy so the caller's wrapper can't poison it
            self._results.put(
                cache_key, (generation, PrepResult(items=list(result.items)))
            )
        return result

    @staticmethod
    def _key_params(key: InteractionKey) -> Dict[str, str]:
        return {
            "id": key.interaction_id,
            "sender": key.sender,
            "receiver": key.receiver,
        }

    def interaction_keys(self) -> List[InteractionKey]:
        result = self._query("interactions")
        return [InteractionKey.from_xml(el) for el in result.items]

    def interaction_passertions(
        self, key: InteractionKey, view: Optional[ViewKind] = None
    ) -> List[InteractionPAssertion]:
        params = self._key_params(key)
        if view is not None:
            params["view"] = view.value
        result = self._query("interaction", **params)
        out = []
        for el in result.items:
            pa = parse_passertion(el)
            assert isinstance(pa, InteractionPAssertion)
            out.append(pa)
        return out

    def actor_state_passertions(
        self,
        key: InteractionKey,
        view: Optional[ViewKind] = None,
        state_type: Optional[str] = None,
    ) -> List[ActorStatePAssertion]:
        params = self._key_params(key)
        if view is not None:
            params["view"] = view.value
        if state_type is not None:
            params["state-type"] = state_type
        result = self._query("actor-state", **params)
        out = []
        for el in result.items:
            pa = parse_passertion(el)
            assert isinstance(pa, ActorStatePAssertion)
            out.append(pa)
        return out

    def interaction_record(
        self, key: InteractionKey
    ) -> List[object]:
        """All p-assertions about one interaction, in a single store call."""
        result = self._query("record", **self._key_params(key))
        return [parse_passertion(el) for el in result.items]

    def group_members(self, group_id: str) -> List[InteractionKey]:
        result = self._query("by-group", group=group_id)
        return [InteractionKey.from_xml(el) for el in result.items]

    def groups_of(self, key: InteractionKey) -> List[str]:
        """Group ids an interaction belongs to (session, threads, ...)."""
        result = self._query("groups-of", **self._key_params(key))
        return [el.attrs["id"] for el in result.items]

    def group_ids(self, kind: Optional[str] = None) -> List[str]:
        params = {"kind": kind} if kind else {}
        result = self._query("groups", **params)
        return [el.attrs["id"] for el in result.items]

    def passertion_counts(self, key: InteractionKey) -> Tuple[int, int]:
        """Both per-key p-assertion counts in one query round trip."""
        result = self._query("passertion-counts", **self._key_params(key))
        el = result.items[0]
        return (
            int(el.attrs["interaction-passertions"]),
            int(el.attrs["actor-state-passertions"]),
        )

    def counts(self) -> StoreCounts:
        result = self._query("count")
        el = result.items[0]
        return StoreCounts(
            interaction_passertions=int(el.attrs["interaction-passertions"]),
            actor_state_passertions=int(el.attrs["actor-state-passertions"]),
            group_assertions=int(el.attrs["group-assertions"]),
            interaction_records=int(el.attrs["interaction-records"]),
        )
