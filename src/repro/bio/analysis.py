"""Compressibility statistics: Collate Sizes and Average.

The workflow's tail: per-permutation compressed sizes are collated into a
sizes table, and compressibility is computed as the ratio of the sample's
compressed length to the mean compressed length of its permutations — the
permutation standard "removes the influence of the particular data encoding
used to represent the groups, and the non-uniform frequency of groups"
(Section 2).  The spread over permutations yields the standard deviation the
workflow is sized to estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class SizeRow:
    """One Measure result: which input, which codec, what sizes."""

    label: str
    codec: str
    original_size: int
    compressed_size: int

    def __post_init__(self) -> None:
        if self.original_size < 0 or self.compressed_size < 0:
            raise ValueError("sizes must be non-negative")

    @property
    def ratio(self) -> float:
        if self.original_size == 0:
            raise ValueError(f"row {self.label!r} has zero original size")
        return self.compressed_size / self.original_size


@dataclass
class SizesTable:
    """The Collate Sizes output: all rows of one workflow run."""

    rows: List[SizeRow] = field(default_factory=list)

    def add(self, row: SizeRow) -> None:
        self.rows.append(row)

    def extend(self, rows: Sequence[SizeRow]) -> None:
        self.rows.extend(rows)

    def for_codec(self, codec: str) -> List[SizeRow]:
        return [r for r in self.rows if r.codec == codec]

    def labelled(self, label: str) -> List[SizeRow]:
        return [r for r in self.rows if r.label == label]

    def codecs(self) -> List[str]:
        return sorted({r.codec for r in self.rows})

    def __len__(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class CompressibilityResult:
    """The Average output for one (sample, codec) pair."""

    codec: str
    sample_ratio: float
    permutation_mean_ratio: float
    permutation_std_ratio: float
    n_permutations: int
    #: sample compressed length / mean permutation compressed length; < 1
    #: means the sample carries structure beyond symbol frequencies.
    compressibility: float
    #: std of the compressibility estimate across permutations.
    compressibility_std: float


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _std(values: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for fewer than two values."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = _mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


def compressibility(
    table: SizesTable, codec: str, sample_label: str = "sample"
) -> CompressibilityResult:
    """Compute the compressibility of the sample relative to its permutations.

    Rows labelled ``sample_label`` are the unshuffled encoded sample; every
    other row for ``codec`` is a permutation measurement.
    """
    rows = table.for_codec(codec)
    sample_rows = [r for r in rows if r.label == sample_label]
    perm_rows = [r for r in rows if r.label != sample_label]
    if len(sample_rows) != 1:
        raise ValueError(
            f"expected exactly one {sample_label!r} row for codec {codec!r}, "
            f"found {len(sample_rows)}"
        )
    if not perm_rows:
        raise ValueError(f"no permutation rows for codec {codec!r}")
    sample = sample_rows[0]
    perm_sizes = [float(r.compressed_size) for r in perm_rows]
    perm_ratios = [r.ratio for r in perm_rows]
    mean_perm_size = _mean(perm_sizes)
    if mean_perm_size == 0:
        raise ValueError("permutations compressed to zero bytes")
    value = sample.compressed_size / mean_perm_size
    # Delta-method spread: relative std of permutation sizes scales the value.
    rel_std = _std(perm_sizes) / mean_perm_size
    return CompressibilityResult(
        codec=codec,
        sample_ratio=sample.ratio,
        permutation_mean_ratio=_mean(perm_ratios),
        permutation_std_ratio=_std(perm_ratios),
        n_permutations=len(perm_rows),
        compressibility=value,
        compressibility_std=value * rel_std,
    )


def average_results(
    table: SizesTable, sample_label: str = "sample"
) -> Dict[str, CompressibilityResult]:
    """The Average activity: compressibility per codec present in the table."""
    return {
        codec: compressibility(table, codec, sample_label)
        for codec in table.codecs()
    }
