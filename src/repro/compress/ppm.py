"""PPM (prediction by partial matching) with escape method C.

Substitutes for the paper's ``ppmz`` binary: a context-mixing compressor in
the same family (ppmz is an advanced PPM variant).  Features:

* contexts of order 0..``max_order`` (default 3) with fallback to an
  order -1 uniform model,
* escape method C (escape weight = number of distinct symbols seen),
* symbol exclusion across escape levels,
* PPMC-style update exclusion (a symbol's count is bumped in the coding
  context and every higher-order context it escaped from),
* periodic count halving to bound model totals for the arithmetic coder.

Encoder and decoder share the model code path, so symmetry is structural
rather than duplicated logic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.compress.api import Compressor, register_compressor
from repro.compress.arithmetic import ArithmeticDecoder, ArithmeticEncoder
from repro.compress.bitio import BitReader, BitWriter, read_varint, write_varint

#: Symbol alphabet: 256 byte values plus a dedicated end-of-stream symbol.
EOF_SYMBOL = 256
NUM_SYMBOLS = 257

#: Rescale (halve) a context's counts once its total reaches this.
RESCALE_LIMIT = 4096


class _Distribution:
    """A coding distribution: ordered (symbol, cum_low, cum_high) plus escape."""

    __slots__ = ("entries", "escape_low", "total")

    def __init__(self, entries: List[Tuple[int, int, int]], escape_low: int, total: int):
        self.entries = entries
        self.escape_low = escape_low
        self.total = total


class PPMModel:
    """The adaptive context model shared by encoder and decoder."""

    def __init__(self, max_order: int = 3):
        if max_order < 0:
            raise ValueError(f"max_order must be >= 0, got {max_order}")
        self.max_order = max_order
        # contexts[o] maps an order-o context (bytes) to {symbol: count}.
        self.contexts: List[Dict[bytes, Dict[int, int]]] = [
            {} for _ in range(max_order + 1)
        ]
        self.history = bytearray()

    # -- distributions -----------------------------------------------------
    def distribution(
        self, table: Dict[int, int], excluded: Set[int]
    ) -> Optional[_Distribution]:
        """Method-C distribution over ``table`` minus ``excluded``.

        Returns None when every symbol is excluded (the context is silently
        skipped — both sides know this without any bits).
        """
        entries: List[Tuple[int, int, int]] = []
        cum = 0
        for sym in sorted(table):
            if sym in excluded:
                continue
            count = table[sym]
            entries.append((sym, cum, cum + count))
            cum += count
        if not entries:
            return None
        distinct = len(entries)
        # Escape weight = number of distinct (non-excluded) symbols.
        return _Distribution(entries, escape_low=cum, total=cum + distinct)

    def order_minus_one(self, excluded: Set[int]) -> _Distribution:
        """Uniform distribution over the not-yet-excluded alphabet."""
        entries: List[Tuple[int, int, int]] = []
        cum = 0
        for sym in range(NUM_SYMBOLS):
            if sym in excluded:
                continue
            entries.append((sym, cum, cum + 1))
            cum += 1
        # No escape at order -1: every symbol is representable.
        return _Distribution(entries, escape_low=cum, total=cum)

    # -- context access ------------------------------------------------------
    def context_key(self, order: int) -> Optional[bytes]:
        """The order-``order`` context for the current history, if long enough."""
        if order > len(self.history):
            return None
        if order == 0:
            return b""
        return bytes(self.history[-order:])

    def update(self, symbol: int, coded_order: int) -> None:
        """PPMC update exclusion: bump ``symbol`` in orders coded_order..max."""
        low = max(coded_order, 0)
        for order in range(low, self.max_order + 1):
            key = self.context_key(order)
            if key is None:
                continue
            table = self.contexts[order].setdefault(key, {})
            table[symbol] = table.get(symbol, 0) + 1
            if sum(table.values()) >= RESCALE_LIMIT:
                self._rescale(table)
        if symbol != EOF_SYMBOL:
            self.history.append(symbol)

    @staticmethod
    def _rescale(table: Dict[int, int]) -> None:
        for sym in list(table):
            halved = table[sym] // 2
            if halved:
                table[sym] = halved
            else:
                del table[sym]


class PPMCompressor(Compressor):
    """PPM over arithmetic coding, standing in for ppmz."""

    name = "ppm-like"

    def __init__(self, max_order: int = 3):
        self.max_order = max_order

    # -- encoding ------------------------------------------------------------
    def compress(self, data: bytes) -> bytes:
        model = PPMModel(self.max_order)
        writer = BitWriter()
        encoder = ArithmeticEncoder(writer)
        for byte in data:
            self._encode_symbol(model, encoder, byte)
        self._encode_symbol(model, encoder, EOF_SYMBOL, update=False)
        encoder.finish()
        return write_varint(len(data)) + writer.getvalue()

    def _encode_symbol(
        self,
        model: PPMModel,
        encoder: ArithmeticEncoder,
        symbol: int,
        update: bool = True,
    ) -> None:
        excluded: Set[int] = set()
        start = min(model.max_order, len(model.history))
        coded_order = -1
        for order in range(start, -1, -1):
            key = model.context_key(order)
            if key is None:
                continue
            table = model.contexts[order].get(key)
            if not table:
                continue
            dist = model.distribution(table, excluded)
            if dist is None:
                continue
            hit = next(
                ((lo, hi) for sym, lo, hi in dist.entries if sym == symbol), None
            )
            if hit is not None:
                encoder.encode(hit[0], hit[1], dist.total)
                coded_order = order
                break
            # Escape: encode the escape range, exclude what this context knew.
            encoder.encode(dist.escape_low, dist.total, dist.total)
            excluded.update(sym for sym, _, _ in dist.entries)
        else:
            dist = model.order_minus_one(excluded)
            hit = next(
                ((lo, hi) for sym, lo, hi in dist.entries if sym == symbol), None
            )
            if hit is None:
                raise AssertionError(f"symbol {symbol} missing from order -1 model")
            encoder.encode(hit[0], hit[1], dist.total)
        if update:
            model.update(symbol, coded_order if coded_order >= 0 else 0)

    # -- decoding ------------------------------------------------------------
    def decompress(self, blob: bytes) -> bytes:
        n, offset = read_varint(blob, 0)
        model = PPMModel(self.max_order)
        reader = BitReader(blob, start_byte=offset)
        decoder = ArithmeticDecoder(reader)
        out = bytearray()
        while True:
            symbol = self._decode_symbol(model, decoder)
            if symbol == EOF_SYMBOL:
                break
            out.append(symbol)
            if len(out) > n:
                raise ValueError("corrupt PPM stream: ran past declared length")
        if len(out) != n:
            raise ValueError(
                f"corrupt PPM stream: declared {n} bytes, decoded {len(out)}"
            )
        return bytes(out)

    def _decode_symbol(self, model: PPMModel, decoder: ArithmeticDecoder) -> int:
        excluded: Set[int] = set()
        start = min(model.max_order, len(model.history))
        for order in range(start, -1, -1):
            key = model.context_key(order)
            if key is None:
                continue
            table = model.contexts[order].get(key)
            if not table:
                continue
            dist = model.distribution(table, excluded)
            if dist is None:
                continue
            target = decoder.decode_target(dist.total)
            if target >= dist.escape_low:
                decoder.consume(dist.escape_low, dist.total, dist.total)
                excluded.update(sym for sym, _, _ in dist.entries)
                continue
            for sym, lo, hi in dist.entries:
                if lo <= target < hi:
                    decoder.consume(lo, hi, dist.total)
                    if sym != EOF_SYMBOL:
                        model.update(sym, order)
                    return sym
            raise AssertionError("target not covered by distribution")
        dist = model.order_minus_one(excluded)
        target = decoder.decode_target(dist.total)
        for sym, lo, hi in dist.entries:
            if lo <= target < hi:
                decoder.consume(lo, hi, dist.total)
                if sym != EOF_SYMBOL:
                    model.update(sym, 0)
                return sym
        raise AssertionError("target not covered by order -1 distribution")


register_compressor(PPMCompressor())
