"""Bit-level I/O used by the entropy coders.

MSB-first bit order throughout (the first bit written is the most significant
bit of the first byte), plus LEB128-style varints for headers.
"""

from __future__ import annotations

from typing import List, Tuple


class BitWriter:
    """Accumulates bits MSB-first into a growing byte buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0
        self._nbits = 0

    def write_bit(self, bit: int) -> None:
        self._acc = (self._acc << 1) | (bit & 1)
        self._nbits += 1
        if self._nbits == 8:
            self._bytes.append(self._acc)
            self._acc = 0
            self._nbits = 0

    def write_bits(self, value: int, width: int) -> None:
        """Write ``width`` bits of ``value``, most significant first."""
        if width < 0:
            raise ValueError(f"negative width {width}")
        if value < 0 or (width < 64 and value >> width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """Write ``value`` as unary: ``value`` one-bits then a zero."""
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    @property
    def bit_length(self) -> int:
        return len(self._bytes) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Final byte string, zero-padding the trailing partial byte."""
        out = bytearray(self._bytes)
        if self._nbits:
            out.append(self._acc << (8 - self._nbits))
        return bytes(out)


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes, start_byte: int = 0) -> None:
        self._data = data
        self._pos = start_byte * 8

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    def read_bit(self) -> int:
        byte_idx, bit_idx = divmod(self._pos, 8)
        if byte_idx >= len(self._data):
            raise EOFError("bit stream exhausted")
        self._pos += 1
        return (self._data[byte_idx] >> (7 - bit_idx)) & 1

    def read_bit_padded(self) -> int:
        """Like :meth:`read_bit` but returns 0 past end-of-stream.

        Arithmetic decoders legitimately read a few bits past the encoded
        payload; zero padding there is part of the format.
        """
        byte_idx, bit_idx = divmod(self._pos, 8)
        self._pos += 1
        if byte_idx >= len(self._data):
            return 0
        return (self._data[byte_idx] >> (7 - bit_idx)) & 1

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        count = 0
        while self.read_bit():
            count += 1
        return count


def write_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise ValueError(f"varint requires non-negative value, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a LEB128 varint; returns ``(value, next_offset)``."""
    value = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise EOFError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def pack_varints(values: List[int]) -> bytes:
    return b"".join(write_varint(v) for v in values)


def unpack_varints(data: bytes, count: int, offset: int = 0) -> Tuple[List[int], int]:
    out: List[int] = []
    pos = offset
    for _ in range(count):
        v, pos = read_varint(data, pos)
        out.append(v)
    return out, pos
