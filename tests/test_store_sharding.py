"""Tests for the hash-partitioned ShardedKVLog and the sharded backend.

The acceptance bar: a sharded log is indistinguishable from a single
:class:`KVLog` fed the same operations — same scan order and content
(byte-identical replay), same dict semantics, same crash-recovery
guarantees — while its files, compaction, and dead-byte accounting work
per shard.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.store.backends import KVLogBackend
from repro.store.interface import interaction_scope
from repro.store.kvlog import KVLog
from repro.store.sharding import ShardedKVLog, pipe_partition

from tests.test_store_backends import ga, ipa, key, spa


class TestBasicParity:
    def test_put_get_delete_overwrite(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            log.put(b"k", b"v1")
            assert log.get(b"k") == b"v1"
            log.put(b"k", b"v2")
            assert log.get(b"k") == b"v2"
            assert len(log) == 1
            assert log.delete(b"k") is True
            assert log.get(b"k") is None
            assert log.delete(b"k") is False

    def test_missing_key_and_empty_value(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=2) as log:
            assert log.get(b"ghost") is None
            log.put(b"k", b"")
            assert log.get(b"k") == b""

    def test_empty_key_rejected(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=2) as log:
            with pytest.raises(ValueError):
                log.put(b"", b"v")
            with pytest.raises(ValueError):
                log.put_many([(b"ok", b"v"), (b"", b"v")])

    def test_contains_len_keys_items(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            log.put(b"b", b"2")
            log.put(b"a", b"1")
            assert b"a" in log and b"c" not in log
            assert len(log) == 2
            assert list(log.keys()) == [b"a", b"b"]
            assert list(log.items()) == [(b"a", b"1"), (b"b", b"2")]

    def test_closed_log_rejects_ops(self, tmp_path):
        log = ShardedKVLog(tmp_path / "db", shards=2)
        log.close()
        log.close()  # idempotent
        with pytest.raises(ValueError):
            log.put(b"k", b"v")

    def test_empty_batch_is_noop(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            assert log.put_many([]) == 0
            assert len(log) == 0

    def test_invalid_shard_count(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedKVLog(tmp_path / "db", shards=0)


class TestLayout:
    def test_shard_files_created(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            log.put_many([(b"k%d" % i, b"v") for i in range(40)])
        names = sorted(p.name for p in (tmp_path / "db").iterdir())
        assert names == ["log.00.kv", "log.01.kv", "log.02.kv", "log.03.kv"]

    def test_reopen_with_other_shard_count_refused(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            log.put(b"k", b"v")
        with pytest.raises(ValueError, match="shard files"):
            ShardedKVLog(tmp_path / "db", shards=2)

    def test_records_spread_across_shards(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            log.put_many([(b"key-%04d" % i, b"v" * 20) for i in range(200)])
            sizes = log.shard_file_sizes()
        assert sum(1 for s in sizes if s > 0) == 4  # every shard took work

    def test_partition_extractor_groups_keys(self, tmp_path):
        with ShardedKVLog(
            tmp_path / "db", shards=4, partition=pipe_partition
        ) as log:
            for i in range(32):
                log.put(b"sess-a|%04d" % i, b"v")
            target = log.shard_of(b"sess-a|0000")
            assert all(
                log.shard_of(b"sess-a|%04d" % i) == target for i in range(32)
            )
            sizes = log.shard_file_sizes()
        assert sum(1 for s in sizes if s > 0) == 1  # affine keys, one shard


class TestScanOrder:
    def test_scan_matches_single_log_explicit(self, tmp_path):
        single = KVLog(tmp_path / "one.kv")
        sharded = ShardedKVLog(tmp_path / "many", shards=4)
        for log in (single, sharded):
            log.put(b"a", b"1")
            log.put(b"b", b"2")
            log.put_many([(b"c", b"3"), (b"a", b"4"), (b"d", b"5")])
            log.delete(b"b")
            log.put(b"e", b"6")
        assert list(sharded.scan()) == list(single.scan())
        assert list(sharded.scan()) == [
            (b"c", b"3"),
            (b"a", b"4"),
            (b"d", b"5"),
            (b"e", b"6"),
        ]
        single.close()
        sharded.close()

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "put_many", "delete"]),
                st.lists(
                    st.tuples(
                        st.binary(min_size=1, max_size=6),
                        st.binary(min_size=0, max_size=24),
                    ),
                    min_size=1,
                    max_size=8,
                ),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_replay_byte_identical_across_shard_counts(
        self, tmp_path_factory, ops
    ):
        """Same puts => same scan() order/content for shards in {1, 4}."""
        root = tmp_path_factory.mktemp("shards")
        single = KVLog(root / "one.kv", sync=False)
        logs = {
            1: ShardedKVLog(root / "s1", shards=1, sync=False),
            4: ShardedKVLog(root / "s4", shards=4, sync=False),
        }
        for op, pairs in ops:
            if op == "put":
                k, v = pairs[0]
                single.put(k, v)
                for log in logs.values():
                    log.put(k, v)
            elif op == "put_many":
                single.put_many(pairs)
                for log in logs.values():
                    log.put_many(pairs)
            else:
                k = pairs[0][0]
                expected = single.delete(k)
                for log in logs.values():
                    assert log.delete(k) == expected
        reference = list(single.scan())
        for n, log in logs.items():
            assert list(log.scan()) == reference, f"shards={n} diverged"
            assert list(log.items()) == list(single.items())
        single.close()
        for log in logs.values():
            log.close()
        # And the same equality must hold after reopen (replay path).
        with KVLog(root / "one.kv", sync=False) as single:
            reference = list(single.scan())
            for n in (1, 4):
                with ShardedKVLog(root / f"s{n}", shards=n, sync=False) as log:
                    assert list(log.scan()) == reference


class TestStreamingScan:
    def test_merge_holds_at_most_one_pending_record_per_shard(
        self, tmp_path, monkeypatch
    ):
        """Memory bound: the k-way merge must stream, not materialize.

        Counts records pulled from the per-shard streams but not yet
        yielded by the merge; the high-water mark must stay at one pending
        record per shard (plus the record in flight) — a materializing
        merge would hold all of them.
        """
        shards, records = 4, 600
        with ShardedKVLog(tmp_path / "db", shards=shards, sync=False) as log:
            log.put_many([(b"k-%05d" % i, b"v%d" % i) for i in range(records)])
            outstanding = {"now": 0, "max": 0}
            real_scan = KVLog.scan

            def counting_scan(self):
                for pair in real_scan(self):
                    outstanding["now"] += 1
                    outstanding["max"] = max(
                        outstanding["max"], outstanding["now"]
                    )
                    yield pair

            monkeypatch.setattr(KVLog, "scan", counting_scan)
            seen = 0
            for _key, _value in log.scan():
                outstanding["now"] -= 1
                seen += 1
            monkeypatch.undo()
            assert seen == records
            assert outstanding["max"] <= shards + 1, (
                f"merge held {outstanding['max']} records at once — "
                f"it materialized instead of streaming"
            )

    def test_scan_is_lazy_and_consumable_incrementally(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=2, sync=False) as log:
            log.put_many([(b"k%d" % i, b"v") for i in range(10)])
            stream = log.scan()
            first = next(stream)
            assert first == (b"k0", b"v")
            # Abandoning the stream mid-way must be safe (no locks held).
            del stream
            assert len(list(log.scan())) == 10

    def test_out_of_order_shard_file_detected(self, tmp_path):
        """A shard whose seq prefixes regress must fail loudly, not mis-merge."""
        import struct

        root = tmp_path / "db"
        with ShardedKVLog(root, shards=1, sync=False) as log:
            log.put(b"a", b"1")
            log.put(b"b", b"2")
        # Corrupt the shard out-of-band: swap the two records' seq prefixes
        # so the log's physical order no longer matches sequence order.
        shard = root / "log.00.kv"
        with KVLog(shard, sync=False) as raw:
            raw.put(b"a", struct.pack(">Q", 5) + b"1")
            raw.put(b"b", struct.pack(">Q", 3) + b"2")
        with ShardedKVLog(root, shards=1, sync=False) as log:
            with pytest.raises(Exception, match="sequence"):
                list(log.scan())


class TestConcurrency:
    def test_concurrent_put_many_loses_nothing(self, tmp_path):
        log = ShardedKVLog(tmp_path / "db", shards=4, partition=pipe_partition)
        clients, batches, per_batch = 4, 10, 8
        errors = []

        def client(c: int) -> None:
            try:
                for b in range(batches):
                    log.put_many(
                        [
                            (b"client-%d|%06d" % (c, b * per_batch + r), b"v%d" % c)
                            for r in range(per_batch)
                        ]
                    )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(c,)) for c in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(log) == clients * batches * per_batch
        scanned = list(log.scan())
        assert len(scanned) == len(log)
        # Per-client order is preserved even though clients interleave.
        for c in range(clients):
            mine = [k for k, _ in scanned if k.startswith(b"client-%d|" % c)]
            assert mine == sorted(mine)
        log.close()
        # Reopen: everything survives, sequence counter stays consistent.
        with ShardedKVLog(
            tmp_path / "db", shards=4, partition=pipe_partition
        ) as reopened:
            assert len(reopened) == clients * batches * per_batch
            reopened.put(b"client-0|after", b"new")
            assert list(reopened.scan())[-1] == (b"client-0|after", b"new")


class TestCrashRecovery:
    def test_torn_tail_in_one_shard_only_loses_that_tail(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            log.put_many([(b"k%02d" % i, b"value-%02d" % i) for i in range(40)])
            survivors = dict(log.items())
        # Simulate a crash mid-append on one shard file.
        shard_files = sorted((tmp_path / "db").glob("log.*.kv"))
        torn = shard_files[2]
        with open(torn, "ab") as f:
            f.write(b"\x07garbage-torn-tail")
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            assert dict(log.items()) == survivors  # committed data intact
            log.put(b"new-key", b"new-value")  # and appends stay well-formed
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            assert log.get(b"new-key") == b"new-value"

    def test_truncated_shard_drops_only_its_records(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            log.put_many([(b"k%02d" % i, b"value-%02d" % i) for i in range(40)])
            per_shard = {}
            for i in range(40):
                per_shard.setdefault(log.shard_of(b"k%02d" % i), []).append(i)
        shard_files = sorted((tmp_path / "db").glob("log.*.kv"))
        torn_index = 1
        data = shard_files[torn_index].read_bytes()
        shard_files[torn_index].write_bytes(data[: len(data) - 7])  # tear last record
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            lost = per_shard[torn_index][-1]
            assert log.get(b"k%02d" % lost) is None
            kept = [i for i in range(40) if i != lost]
            assert all(log.get(b"k%02d" % i) is not None for i in kept)


class TestMaintenance:
    def test_compact_per_shard_preserves_scan_order(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            for round_ in range(5):
                log.put_many([(b"k%02d" % i, b"r%d" % round_) for i in range(20)])
            log.delete(b"k03")
            before = list(log.scan())
            assert log.dead_bytes > 0
            size_before = log.file_size()
            log.compact()
            assert log.dead_bytes == 0
            assert log.file_size() < size_before
            assert list(log.scan()) == before
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            assert list(log.scan()) == before

    def test_compact_single_shard(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=2) as log:
            for i in range(30):
                log.put(b"key-%d" % (i % 6), b"v%d" % i)
            target = log.shard_of(b"key-0")
            other = 1 - target
            sizes_before = log.shard_file_sizes()
            log.compact(shard=target)
            sizes_after = log.shard_file_sizes()
            assert sizes_after[target] <= sizes_before[target]
            assert sizes_after[other] == sizes_before[other]

    def test_dead_bytes_survive_reopen(self, tmp_path):
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            log.put_many([(b"k%d" % i, b"v" * 10) for i in range(20)])
            log.put_many([(b"k%d" % i, b"w" * 10) for i in range(10)])  # overwrite
            log.delete(b"k15")
            live_dead = log.dead_bytes
        with ShardedKVLog(tmp_path / "db", shards=4) as log:
            assert log.dead_bytes == live_dead

    def test_backend_shard_generations_move_with_writes(self, tmp_path):
        store = KVLogBackend(tmp_path / "kv4", shards=4)
        before = store.shard_generations()
        store.put(ipa(1))
        target = store.scope_shard(interaction_scope(key(1)))
        after = store.shard_generations()
        assert after[target] == before[target] + 1
        assert all(after[i] == before[i] for i in range(4) if i != target)
        store.close()


class TestShardedBackend:
    def assertions(self, n=12):
        out = []
        for i in range(n):
            out.append(ipa(i))
            out.append(spa(i))
            if i % 3 == 0:
                out.append(ga(i))
        return out

    def state(self, store):
        return (
            store.counts(),
            store.interaction_keys(),
            [
                getattr(a, "store_key", None) or (a.group_id, a.member)
                for a in store.all_assertions()
            ],
            store.group_ids(),
        )

    def test_sharded_backend_matches_single_log_backend(self, tmp_path):
        sharded = KVLogBackend(tmp_path / "kv4", shards=4)
        single = KVLogBackend(tmp_path / "kv1.db")
        batch = self.assertions()
        for store in (sharded, single):
            for a in batch[:5]:
                store.put(a)
            store.put_many(batch[5:])
        assert self.state(sharded) == self.state(single)
        sharded.close()
        single.close()
        # Replay after reopen rebuilds identical indexes in identical order.
        sharded = KVLogBackend(tmp_path / "kv4", shards=4)
        single = KVLogBackend(tmp_path / "kv1.db")
        assert self.state(sharded) == self.state(single)
        sharded.close()
        single.close()

    def test_sharded_backend_compact_and_reopen(self, tmp_path):
        store = KVLogBackend(tmp_path / "kv4", shards=4)
        store.put_many(self.assertions())
        before = self.state(store)
        store.compact()
        assert self.state(store) == before
        store.close()
        reopened = KVLogBackend(tmp_path / "kv4", shards=4)
        assert self.state(reopened) == before
        reopened.close()

    def test_generation_token_is_shard_granular(self, tmp_path):
        store = KVLogBackend(tmp_path / "kv4", shards=4)
        store.put(ipa(0))
        scope = interaction_scope(key(0))
        home = store.scope_shard(scope)
        token = store.generation_token(scope)
        other = next(
            i
            for i in range(1, 200)
            if store.scope_shard(interaction_scope(key(i))) != home
        )
        store.put(ipa(other))  # lands in a different shard
        assert store.generation_token(scope) == token
        same = next(
            i
            for i in range(1, 200)
            if store.scope_shard(interaction_scope(key(i))) == home and i != 0
        )
        store.put(ipa(same))  # lands in the scope's shard
        assert store.generation_token(scope) != token
        store.close()

    def test_unsharded_backend_token_is_whole_store(self, tmp_path):
        store = KVLogBackend(tmp_path / "kv1.db")
        store.put(ipa(0))
        scope = interaction_scope(key(0))
        token = store.generation_token(scope)
        store.put(ipa(1))
        assert store.generation_token(scope) != token  # scalar generation
        assert store.shard_generations() == (store.generation,)
        store.close()

    def test_invalid_shard_count_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            KVLogBackend(tmp_path / "kv", shards=0)

    def test_partial_init_crash_never_blocks_reopen(self, tmp_path):
        # Simulate a crash during first-time initialization: only some of
        # the (still empty) shard files were created.
        root = tmp_path / "db"
        root.mkdir()
        (root / "log.00.kv").touch()
        (root / "log.01.kv").touch()
        with ShardedKVLog(root, shards=4) as log:  # correct count reopens
            log.put(b"k", b"v")
        # The reverse debris (extra empty files) is trimmed, not fatal.
        root2 = tmp_path / "db2"
        root2.mkdir()
        for i in range(6):
            (root2 / f"log.{i:02d}.kv").touch()
        with ShardedKVLog(root2, shards=4) as log:
            log.put(b"k", b"v")
        assert sorted(p.name for p in root2.iterdir()) == [
            f"log.{i:02d}.kv" for i in range(4)
        ]
        # But once any shard holds data, the count mismatch stays fatal.
        with pytest.raises(ValueError, match="with\\s+data"):
            ShardedKVLog(tmp_path / "db", shards=2)

    def test_scoped_token_expires_even_when_persist_fails(self, tmp_path, monkeypatch):
        from repro.store.interface import interaction_scope as scope_of
        from repro.store.sharding import ShardedKVLog as _SL

        backend = KVLogBackend(tmp_path / "kv4", shards=4)
        backend.put(ipa(1))
        scope = scope_of(key(1))
        token = backend.generation_token(scope)
        same = next(
            i
            for i in range(2, 300)
            if backend.scope_shard(scope_of(key(i)))
            == backend.scope_shard(scope)
        )

        def exploding_put(self, key_, value):
            raise OSError("disk full")

        monkeypatch.setattr(_SL, "put", exploding_put)
        with pytest.raises(OSError, match="disk full"):
            backend.put(ipa(same))  # indexed, but persist fails
        monkeypatch.undo()
        # The assertion is visible to queries, so the scoped token must
        # have moved — a cached result from before would now be stale.
        assert backend.generation_token(scope) != token
        backend.close()

    def test_scoped_token_expires_when_key_resolution_fails(
        self, tmp_path, monkeypatch
    ):
        import repro.store.backends as backends_mod
        from repro.store.interface import interaction_scope as scope_of

        backend = KVLogBackend(tmp_path / "kv4", shards=4)
        backend.put(ipa(1))
        scope = scope_of(key(1))
        token = backend.generation_token(scope)

        def exploding_scope(assertion):
            raise UnicodeEncodeError("utf-8", "x", 0, 1, "simulated")

        monkeypatch.setattr(backends_mod, "_assertion_scope", exploding_scope)
        with pytest.raises(UnicodeEncodeError):
            backend.put(ipa(2))  # indexed, but its shard is unresolvable
        monkeypatch.undo()
        # The shard of the indexed-but-unkeyed write is unknown, so every
        # shard's scoped results must expire.
        assert backend.generation_token(scope) != token
        backend.close()

    def test_layout_mismatch_reported_clearly(self, tmp_path):
        sharded = KVLogBackend(tmp_path / "store", shards=4)
        sharded.put(ipa(1))
        sharded.close()
        with pytest.raises(ValueError, match="sharded store directory"):
            KVLogBackend(tmp_path / "store")  # shards=1 against a directory
        single = KVLogBackend(tmp_path / "single")
        single.put(ipa(1))
        single.close()
        with pytest.raises(ValueError, match="single-log store file"):
            KVLogBackend(tmp_path / "single", shards=4)


class TestConfigThreading:
    """The shard knob reaches every deployment surface."""

    def test_make_backend_factory(self, tmp_path):
        from repro.store import make_backend
        from repro.store.backends import FileSystemBackend, MemoryBackend

        assert isinstance(make_backend("memory"), MemoryBackend)
        fs = make_backend("filesystem", tmp_path / "fs", sync=False)
        assert isinstance(fs, FileSystemBackend)
        fs.close()
        kv = make_backend("kvlog", tmp_path / "kv", shards=4)
        assert isinstance(kv, KVLogBackend) and kv.shards == 4
        kv.put(ipa(1))
        kv.close()
        with pytest.raises(ValueError, match="requires a path"):
            make_backend("kvlog")
        with pytest.raises(ValueError, match="unknown store backend"):
            make_backend("cloud")
        # Layout knobs must never be silently ignored.
        with pytest.raises(ValueError, match="only supported by the 'kvlog'"):
            make_backend("filesystem", tmp_path / "fs2", shards=4)
        with pytest.raises(ValueError, match="only supported by the 'kvlog'"):
            make_backend("memory", shards=4)
        with pytest.raises(ValueError, match="only supported by the 'filesystem'"):
            make_backend("kvlog", tmp_path / "kv3", segment_size=64)

    def test_actor_with_store_and_shard_generations(self, tmp_path):
        from repro.store.service import PReServActor

        actor = PReServActor.with_store("kvlog", tmp_path / "kv", shards=4)
        assert isinstance(actor.backend, KVLogBackend)
        actor.bulk_ingest([ipa(1), ipa(2), spa(1)])
        gens = actor.store_shard_generations()
        assert len(gens) == 4 and sum(gens) > 0
        scope = interaction_scope(key(1))
        assert actor.store_generation_token(scope) == (
            actor.backend.generation_token(scope)
        )
        actor.backend.close()

    def test_actor_with_store_unsharded_token(self, tmp_path):
        from repro.store.service import PReServActor

        actor = PReServActor.with_store("memory")
        actor.bulk_ingest([ipa(1)])
        assert actor.store_shard_generations() == (actor.backend.generation,)
        assert actor.store_generation_token() == actor.backend.generation

    def test_sharded_store_fleet(self, tmp_path):
        from repro.store.distributed import sharded_store_fleet

        router = sharded_store_fleet(tmp_path / "fleet", members=2, shards=4)
        batch = [ipa(i) for i in range(12)] + [ga(2)]
        router.put_many(batch)
        total = sum(
            router.store(name).counts().interaction_passertions
            for name in router.store_names
        )
        assert total == 12
        for name in router.store_names:
            store = router.store(name)
            assert isinstance(store, KVLogBackend) and store.shards == 4
            store.close()
        # Reopening a member store replays everything it took.
        reopened = KVLogBackend(tmp_path / "fleet" / "store-00", shards=4)
        assert reopened.counts().group_assertions == 1  # broadcast membership
        reopened.close()
        # Reopening the fleet with the wrong shard count hits the layout
        # guard instead of silently serving fresh empty stores.
        with pytest.raises(ValueError, match="sharded store directory"):
            sharded_store_fleet(tmp_path / "fleet", members=2, shards=1)

    def test_experiment_config_store_shards(self, tmp_path):
        from repro.app.experiment import ExperimentConfig, _make_backend

        config = ExperimentConfig(
            store_backend="kvlog", store_path=tmp_path / "kv", store_shards=2
        )
        backend = _make_backend(config)
        assert isinstance(backend, KVLogBackend) and backend.shards == 2
        backend.close()
