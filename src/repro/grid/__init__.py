"""Grid execution substrate: the VDT/Condor/DAGMan stand-in.

The paper runs the compressibility workflow under the Virtual Data Toolkit,
"which offers good possibility of scheduling over the Grid through the use
of Condor", batching 100 permutations per script so activity granularity
(~15 minutes) offsets scheduling overhead.  This package provides:

* :mod:`repro.grid.dag` — the workflow DAG model (DAGMan's role),
* :mod:`repro.grid.vdl` — a small VDL-like workflow language parsed to DAGs,
* :mod:`repro.grid.condor` — a Condor-style scheduler on the simulation
  kernel: worker slots, matchmaking delay, stage-in/out file transfer,
* :mod:`repro.grid.executor` — a real (non-simulated) topological executor
  for DAGs of Python callables.
"""

from repro.grid.dag import Activity, CycleError, WorkflowDag
from repro.grid.vdl import parse_vdl, render_vdl
from repro.grid.condor import CondorScheduler, GridJob, JobTiming, ScheduleReport
from repro.grid.executor import ExecutionResult, LocalExecutor

__all__ = [
    "Activity",
    "CondorScheduler",
    "CycleError",
    "ExecutionResult",
    "GridJob",
    "JobTiming",
    "LocalExecutor",
    "ScheduleReport",
    "WorkflowDag",
    "parse_vdl",
    "render_vdl",
]
