"""Real (non-simulated) execution of workflow DAGs.

The paper's workflow runs both under VDT on the Grid and — for our
reproduction's real code path — in process.  :class:`LocalExecutor` runs a
DAG whose activities are Python callables, threading each activity's inputs
(its dependencies' outputs) through in topological order and collecting
results.  Failure of an activity aborts dependents but independent branches
still run, and the error report says exactly what failed and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping

from repro.grid.dag import WorkflowDag

#: An activity implementation: (activity params, {dep name: dep output}) -> output.
ActivityFn = Callable[[Mapping[str, str], Mapping[str, Any]], Any]


@dataclass
class ExecutionResult:
    """Outputs and failures of one DAG execution."""

    outputs: Dict[str, Any] = field(default_factory=dict)
    errors: Dict[str, Exception] = field(default_factory=dict)
    skipped: List[str] = field(default_factory=list)
    order: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors and not self.skipped

    def output(self, name: str) -> Any:
        if name in self.errors:
            raise RuntimeError(f"activity {name!r} failed") from self.errors[name]
        if name in self.skipped:
            raise RuntimeError(f"activity {name!r} was skipped (failed dependency)")
        try:
            return self.outputs[name]
        except KeyError:
            raise KeyError(f"no output recorded for activity {name!r}") from None


class LocalExecutor:
    """Topological in-process DAG executor."""

    def __init__(self, implementations: Mapping[str, ActivityFn]):
        self.implementations = dict(implementations)

    def run(self, dag: WorkflowDag) -> ExecutionResult:
        missing = [n for n in dag.names() if n not in self.implementations]
        if missing:
            raise KeyError(f"no implementation for activities: {missing}")
        result = ExecutionResult()
        failed_or_skipped = set()
        for name in dag.topological_order():
            deps = dag.dependencies_of(name)
            if any(d in failed_or_skipped for d in deps):
                result.skipped.append(name)
                failed_or_skipped.add(name)
                continue
            inputs = {d: result.outputs[d] for d in deps}
            activity = dag.activity(name)
            try:
                output = self.implementations[name](activity.param_dict, inputs)
            except Exception as exc:  # noqa: BLE001 - reported, not swallowed
                result.errors[name] = exc
                failed_or_skipped.add(name)
                continue
            result.outputs[name] = output
            result.order.append(name)
        return result

    def run_or_raise(self, dag: WorkflowDag) -> ExecutionResult:
        """Like :meth:`run` but raises on the first recorded failure."""
        result = self.run(dag)
        if result.errors:
            name, exc = next(iter(result.errors.items()))
            raise RuntimeError(f"activity {name!r} failed: {exc}") from exc
        return result
