"""Tests for amino-acid grouping schemes and group encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.bio.alphabet import AMINO_ACIDS
from repro.bio.encode import encode_by_groups, encode_nucleotides_by_codon_groups
from repro.bio.groupings import (
    GroupingScheme,
    available_groupings,
    get_grouping,
    make_grouping,
)


class TestSchemes:
    def test_builtin_schemes_exist(self):
        names = available_groupings()
        for expected in ("identity20", "hp2", "dayhoff6", "gbmr4", "chemical7", "sampath5"):
            assert expected in names

    @pytest.mark.parametrize("name", ["identity20", "hp2", "dayhoff6", "gbmr4", "chemical7", "sampath5"])
    def test_every_scheme_partitions_all_twenty(self, name):
        scheme = get_grouping(name)
        covered = "".join(scheme.groups)
        assert sorted(covered) == sorted(AMINO_ACIDS)

    def test_group_counts(self):
        assert get_grouping("identity20").n_groups == 20
        assert get_grouping("hp2").n_groups == 2
        assert get_grouping("dayhoff6").n_groups == 6

    def test_symbol_lookup_consistent_with_groups(self):
        scheme = get_grouping("dayhoff6")
        for aa in AMINO_ACIDS:
            assert aa in scheme.group_of(aa)

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_grouping("nonexistent")

    def test_symbol_for_invalid_aa(self):
        with pytest.raises(ValueError):
            get_grouping("hp2").symbol_for("X")


class TestMakeGrouping:
    def test_missing_amino_acids_rejected(self):
        with pytest.raises(ValueError, match="not covered"):
            make_grouping("bad", ["AC"])

    def test_duplicate_assignment_rejected(self):
        groups = ["AILMFWVC", "DEGHKNPQRSTY", "A"]
        with pytest.raises(ValueError, match="appears in groups"):
            make_grouping("bad", groups)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="empty group"):
            make_grouping("bad", ["", "ACDEFGHIKLMNPQRSTVWY"])

    def test_non_amino_acid_rejected(self):
        with pytest.raises(ValueError, match="not an amino acid"):
            make_grouping("bad", ["ACDEFGHIKLMNPQRSTVWX"])

    def test_valid_custom_scheme(self):
        scheme = make_grouping("halves", ["ACDEFGHIKL", "MNPQRSTVWY"])
        assert scheme.n_groups == 2
        assert scheme.symbol_for("A") == "0"
        assert scheme.symbol_for("Y") == "1"


class TestEncodeByGroups:
    def test_hp2_encoding(self):
        # A, I hydrophobic -> group 0; D, E polar -> group 1.
        assert encode_by_groups("AIDE", get_grouping("hp2")) == "0011"

    def test_identity_preserves_distinctions(self):
        scheme = get_grouping("identity20")
        encoded = encode_by_groups(AMINO_ACIDS, scheme)
        assert len(set(encoded)) == 20

    def test_reduces_alphabet(self):
        encoded = encode_by_groups(AMINO_ACIDS, get_grouping("hp2"))
        assert set(encoded) == {"0", "1"}

    def test_nucleotide_sequence_encodes_silently(self):
        """The UC2 trap: DNA flows through without error."""
        encoded = encode_by_groups("ACGTACGT", get_grouping("hp2"))
        assert len(encoded) == 8

    def test_invalid_symbol_raises(self):
        with pytest.raises(ValueError):
            encode_by_groups("MKTX", get_grouping("hp2"))

    def test_length_preserved(self):
        seq = "MKTAYIAKQRQISFVKSHFSRQ"
        assert len(encode_by_groups(seq, get_grouping("dayhoff6"))) == len(seq)

    @given(st.text(alphabet=AMINO_ACIDS, min_size=0, max_size=300))
    def test_encoding_is_pointwise_property(self, seq):
        """encode(a + b) == encode(a) + encode(b) symbol-wise."""
        scheme = get_grouping("dayhoff6")
        encoded = encode_by_groups(seq, scheme)
        assert encoded == "".join(scheme.symbol_for(c) for c in seq)


class TestCodonGroups:
    CODON_GROUPS = [["AAA", "AAC"], ["GGG", "GGC"], ["ACG"]]

    def test_encodes_triplets(self):
        out = encode_nucleotides_by_codon_groups("AAAGGGACG", self.CODON_GROUPS)
        assert out == "012"

    def test_partial_codon_rejected(self):
        with pytest.raises(ValueError, match="whole number of codons"):
            encode_nucleotides_by_codon_groups("AAAG", self.CODON_GROUPS)

    def test_uncovered_codon_rejected(self):
        with pytest.raises(ValueError, match="not covered"):
            encode_nucleotides_by_codon_groups("TTT", self.CODON_GROUPS)

    def test_duplicate_codon_rejected(self):
        with pytest.raises(ValueError, match="two groups"):
            encode_nucleotides_by_codon_groups("AAA", [["AAA"], ["AAA"]])

    def test_non_triplet_codon_rejected(self):
        with pytest.raises(ValueError, match="not a triplet"):
            encode_nucleotides_by_codon_groups("AAA", [["AAAA"]])

    def test_non_nucleotide_input_rejected(self):
        with pytest.raises(ValueError):
            encode_nucleotides_by_codon_groups("MKT", self.CODON_GROUPS)
