#!/usr/bin/env python
"""Quickstart: run one instrumented protein compressibility experiment.

Stands up the full deployment (synthetic RefSeq, message bus, PReServ
provenance store, Grimoires registry, workflow services), runs the paper's
Figure 1 workflow with asynchronous provenance recording, and prints the
scientific result plus what the provenance store captured.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.app import Experiment, ExperimentConfig
from repro.core.query import build_trace, data_lineage


def main() -> None:
    config = ExperimentConfig(
        sample_bytes=4000,       # the paper used ~100 KB; keep the demo quick
        n_permutations=5,        # permutations form the comparison standard
        grouping="hp2",          # hydrophobic/polar reduced alphabet
        codecs=("gz-like",),     # our from-scratch LZ77+Huffman codec
        record_scripts=True,     # extra actor provenance (use case 1 needs it)
    )
    experiment = Experiment(config)
    result = experiment.run()

    print("=== Protein compressibility experiment ===")
    print(f"session:              {result.session_id}")
    print(f"sample accessions:    {', '.join(result.run.sample_accessions)}")
    for codec in config.codecs:
        value = result.compressibility(codec)
        std = result.run.compressibility_std(codec)
        print(f"compressibility[{codec}]: {value:.4f} +/- {std:.4f}")
        if value < 1.0:
            print("  -> sample compresses better than its permutations:")
            print("     the sequence carries structure beyond symbol frequencies.")

    print("\n=== What provenance recorded ===")
    counts = experiment.backend.counts()
    print(f"interaction records:        {counts.interaction_records}")
    print(f"interaction p-assertions:   {counts.interaction_passertions}")
    print(f"actor-state p-assertions:   {counts.actor_state_passertions}")
    print(f"group assertions:           {counts.group_assertions}")
    print(f"records flushed (async):    {result.records_flushed}")

    print("\n=== Lineage of the final result ===")
    trace = build_trace(experiment.backend, result.session_id)
    average_id = result.run.message_ids["average"]
    lineage = data_lineage(trace, average_id)
    print(f"the Average output ({average_id}) derives from "
          f"{len(lineage)} recorded interactions,")
    print(f"rooted at the Collate Sample call "
          f"({result.run.message_ids['collate']} in roots: "
          f"{result.run.message_ids['collate'] in trace.roots()})")


if __name__ == "__main__":
    main()
