"""PReServ plug-ins: message handlers behind the SOAP translator.

"Based on the port that the message was sent to, the SOAP Message Translator
strips off the HTTP and SOAP Headers and passes the contents of the SOAP
body to an appropriate PlugIn, which must conform to the schemas distributed
with PReServ." (Section 5, Figure 3)

* :class:`StorePlugIn` handles ``prep-record`` (and batch) submissions,
* :class:`QueryPlugIn` handles ``prep-query`` retrieval requests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.passertion import InteractionKey, ViewKind
from repro.core.prep import PrepAck, PrepQuery, PrepRecord, PrepResult
from repro.soa.envelope import Fault
from repro.soa.xmldoc import XmlElement
from repro.store.interface import (
    DuplicateAssertionError,
    ProvenanceStoreInterface,
    interaction_scope,
)
from repro.store.querycache import QueryCache, QueryPlan


class PlugIn(ABC):
    """A handler for one family of body documents."""

    #: element names this plug-in accepts.
    handles: Tuple[str, ...] = ()

    @abstractmethod
    def handle(
        self, body: XmlElement, backend: ProvenanceStoreInterface
    ) -> XmlElement:
        """Process ``body`` against ``backend`` and return the response body."""


class StorePlugIn(PlugIn):
    """Records p-assertions (singly or batched) into the backend.

    With ``pipeline_depth > 1``, a large ``prep-record-batch`` submission
    runs through a per-message :class:`~repro.store.pipeline.PipelinedIngest`:
    the message is sliced into ``pipeline_chunk``-record chunks whose XML
    decode runs on worker threads one chunk ahead of the backend's group
    commits, overlapping the parse CPU with the commit fsyncs.  Commit
    order is submission order and a chunk failure drops every later chunk,
    so the store's contents after any failure are a prefix of the message
    — the same contract as the blocking path.  The ack is returned only
    after the whole message is durable.
    """

    handles = ("prep-record", "prep-record-batch")

    def __init__(self, pipeline_depth: int = 1, pipeline_chunk: int = 64):
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if pipeline_chunk < 1:
            raise ValueError("pipeline_chunk must be >= 1")
        self.pipeline_depth = pipeline_depth
        self.pipeline_chunk = pipeline_chunk

    @staticmethod
    def _decode_chunk(elements: List[XmlElement]) -> List:
        return [PrepRecord.from_xml(el).assertion for el in elements]

    def handle(
        self, body: XmlElement, backend: ProvenanceStoreInterface
    ) -> XmlElement:
        if body.name == "prep-record":
            elements = [body]
        else:
            elements = body.find_all("prep-record")
        try:
            if (
                self.pipeline_depth > 1
                and len(elements) > self.pipeline_chunk
            ):
                stored = self._handle_pipelined(elements, backend)
            else:
                # Bulk ingest: the whole submission becomes one backend
                # group commit (put_many persists singles via that path).
                stored = backend.put_many(self._decode_chunk(elements))
        except DuplicateAssertionError as exc:
            raise Fault("duplicate-assertion", str(exc)) from exc
        return PrepAck(status="ok", count=stored).to_xml()

    def _handle_pipelined(
        self, elements: List[XmlElement], backend: ProvenanceStoreInterface
    ) -> int:
        with backend.pipelined_ingest(
            depth=self.pipeline_depth, decode=self._decode_chunk
        ) as engine:
            for start in range(0, len(elements), self.pipeline_chunk):
                engine.submit(elements[start : start + self.pipeline_chunk])
            engine.flush()
            return engine.stats.records_committed


class QueryPlugIn(PlugIn):
    """Serves PReP queries from the backend's Provenance Store Interface.

    Dispatch runs through a handler table built once in ``__init__`` (no
    per-call ``getattr`` munging).  With a :class:`QueryCache` (the default),
    parsed query plans are reused across identical bodies and whole result
    documents are memoized per backend, invalidated by the store's write
    generation; pass ``cache=None`` with ``enable_cache=False`` for the
    uncached reference path.
    """

    handles = ("prep-query",)

    def __init__(
        self,
        cache: Optional[QueryCache] = None,
        enable_cache: bool = True,
    ):
        self._handlers: Dict[
            str,
            Callable[[PrepQuery, ProvenanceStoreInterface], List[XmlElement]],
        ] = {
            "interaction": self._q_interaction,
            "interactions": self._q_interactions,
            "record": self._q_record,
            "actor-state": self._q_actor_state,
            "by-group": self._q_by_group,
            "groups": self._q_groups,
            "groups-of": self._q_groups_of,
            "count": self._q_count,
            "passertion-counts": self._q_passertion_counts,
        }
        self.cache = cache if cache is not None else (
            QueryCache() if enable_cache else None
        )

    #: query types whose result depends only on one interaction's records
    #: (its p-assertions and the memberships naming it) — these plans carry
    #: a scope so sharded backends can invalidate them per shard.
    _KEY_SCOPED = frozenset(
        {
            "interaction",
            "record",
            "actor-state",
            "groups-of",
            "passertion-counts",
        }
    )

    def _build_plan(self, body: XmlElement) -> QueryPlan:
        query = PrepQuery.from_xml(body)
        handler = self._handlers.get(query.query_type)
        if handler is None:
            raise Fault("unknown-query", f"no such query type {query.query_type!r}")
        scope = None
        if query.query_type in self._KEY_SCOPED:
            try:
                scope = interaction_scope(self._key_from_params(query))
            except KeyError:
                scope = None  # malformed query; the handler faults on dispatch
        return QueryPlan(
            query=query,
            handler=handler,
            result_key=QueryPlan.key_for(query),
            scope_key=scope,
        )

    def handle(
        self, body: XmlElement, backend: ProvenanceStoreInterface
    ) -> XmlElement:
        if self.cache is None:
            plan = self._build_plan(body)
        else:
            plan = self.cache.plan_for(body, self._build_plan)
            cached = self.cache.lookup_result(backend, plan)
            if cached is not None:
                return cached
        try:
            items = plan.handler(plan.query, backend)
        except KeyError as exc:
            raise Fault("bad-query", f"missing parameter: {exc}") from exc
        response = PrepResult(items=items).to_xml()
        if self.cache is not None:
            response = self.cache.store_result(backend, plan, response)
        return response

    # -- individual query types ----------------------------------------------
    @staticmethod
    def _key_from_params(query: PrepQuery) -> InteractionKey:
        return InteractionKey(
            interaction_id=query.params["id"],
            sender=query.params["sender"],
            receiver=query.params["receiver"],
        )

    @staticmethod
    def _view_from_params(query: PrepQuery) -> ViewKind | None:
        view = query.params.get("view")
        return ViewKind(view) if view else None

    def _q_interaction(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        key = self._key_from_params(query)
        found = backend.interaction_passertions(key, self._view_from_params(query))
        return [p.to_xml() for p in found]

    def _q_interactions(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        return [key.to_xml() for key in backend.interaction_keys()]

    def _q_record(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        """The full interaction record: every p-assertion about one key."""
        key = self._key_from_params(query)
        items = [p.to_xml() for p in backend.interaction_passertions(key)]
        items.extend(p.to_xml() for p in backend.actor_state_passertions(key))
        return items

    def _q_actor_state(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        key = self._key_from_params(query)
        found = backend.actor_state_passertions(
            key,
            view=self._view_from_params(query),
            state_type=query.params.get("state-type"),
        )
        return [p.to_xml() for p in found]

    def _q_by_group(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        members = backend.group_members(query.params["group"])
        return [m.to_xml() for m in members]

    def _q_groups(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        gids = backend.group_ids(query.params.get("kind"))
        kinds = backend.group_kinds(gids)
        return [
            XmlElement("group", attrs={"id": gid, "kind": kinds.get(gid, "")})
            for gid in gids
        ]

    def _q_groups_of(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        gids = backend.groups_of(self._key_from_params(query))
        kinds = backend.group_kinds(gids)
        return [
            XmlElement("group", attrs={"id": gid, "kind": kinds.get(gid, "")})
            for gid in gids
        ]

    def _q_passertion_counts(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        """Both of one interaction's p-assertion counts in one round trip."""
        key = self._key_from_params(query)
        inter, state = backend.passertion_counts(key)
        el = XmlElement(
            "passertion-counts",
            attrs={
                "interaction-passertions": str(inter),
                "actor-state-passertions": str(state),
            },
        )
        return [el]

    def _q_count(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        counts = backend.counts()
        el = XmlElement(
            "store-counts",
            attrs={
                "interaction-passertions": str(counts.interaction_passertions),
                "actor-state-passertions": str(counts.actor_state_passertions),
                "group-assertions": str(counts.group_assertions),
                "interaction-records": str(counts.interaction_records),
            },
        )
        return [el]
