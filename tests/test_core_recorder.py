"""Tests for the client-side recorder, journal, and recording modes."""

from __future__ import annotations

import pytest

from repro.core.passertion import GroupKind, InteractionKey, ViewKind
from repro.core.prep import PrepRecord
from repro.core.recorder import Journal, ProvenanceRecorder, RecordingMode
from repro.soa.bus import LatencyModel, MessageBus
from repro.soa.xmldoc import XmlElement
from repro.store.backends import MemoryBackend
from repro.store.service import PReServActor


@pytest.fixture
def deployment():
    bus = MessageBus()
    backend = MemoryBackend()
    bus.register(PReServActor(backend), latency=LatencyModel(round_trip_s=0.018))
    return bus, backend


def content(text="x") -> XmlElement:
    el = XmlElement("doc")
    el.add(text)
    return el


def make_key(i=1) -> InteractionKey:
    return InteractionKey(interaction_id=f"m-{i}", sender="a", receiver="b")


class TestJournal:
    def test_append_drain(self):
        journal = Journal()
        journal.append(PrepRecord(assertion=_ipa(1)))
        assert len(journal) == 1
        drained = journal.drain()
        assert len(drained) == 1
        assert len(journal) == 0

    def test_peek_does_not_drain(self):
        journal = Journal()
        journal.append(PrepRecord(assertion=_ipa(1)))
        assert len(journal.peek()) == 1
        assert len(journal) == 1

    def test_file_persistence_and_replay(self, tmp_path):
        path = tmp_path / "journal.log"
        journal = Journal(path)
        for i in range(3):
            journal.append(PrepRecord(assertion=_ipa(i)))
        journal.close()
        replayed = Journal.load(path)
        assert len(replayed) == 3
        restored = replayed.drain()[1].assertion
        assert restored.interaction_key == make_key(1)

    def test_truncated_journal_detected(self, tmp_path):
        path = tmp_path / "journal.log"
        journal = Journal(path)
        journal.append(PrepRecord(assertion=_ipa(1)))
        journal.close()
        data = path.read_text()
        path.write_text(data[: len(data) // 2])
        with pytest.raises(ValueError):
            Journal.load(path)


def _ipa(i):
    from repro.core.passertion import InteractionPAssertion

    return InteractionPAssertion(
        interaction_key=make_key(i),
        view=ViewKind.SENDER,
        asserter="a",
        local_id=f"pa-{i}",
        operation="op",
        content=content(),
    )


class TestRecordingModes:
    def test_none_mode_records_nothing(self, deployment):
        bus, backend = deployment
        recorder = ProvenanceRecorder(bus, mode=RecordingMode.NONE)
        recorder.record_interaction(
            make_key(), ViewKind.SENDER, "a", "op", content()
        )
        assert backend.counts().total == 0
        assert recorder.submitted == 0
        assert bus.calls == 0

    def test_sync_mode_ships_immediately(self, deployment):
        bus, backend = deployment
        recorder = ProvenanceRecorder(bus, mode=RecordingMode.SYNCHRONOUS)
        recorder.record_interaction(make_key(), ViewKind.SENDER, "a", "op", content())
        assert backend.counts().interaction_passertions == 1
        assert recorder.acked == 1
        assert bus.calls == 1

    def test_async_mode_defers_until_flush(self, deployment):
        bus, backend = deployment
        recorder = ProvenanceRecorder(bus, mode=RecordingMode.ASYNCHRONOUS)
        for i in range(5):
            recorder.record_interaction(
                make_key(i), ViewKind.SENDER, "a", "op", content()
            )
        assert backend.counts().total == 0
        assert recorder.pending == 5
        assert bus.calls == 0
        flushed = recorder.flush()
        assert flushed == 5
        assert recorder.pending == 0
        assert backend.counts().interaction_passertions == 5

    def test_async_flush_batches_calls(self, deployment):
        """Batching is the async mode's cost advantage: fewer round trips."""
        bus, backend = deployment
        recorder = ProvenanceRecorder(
            bus, mode=RecordingMode.ASYNCHRONOUS, flush_batch_size=10
        )
        for i in range(25):
            recorder.record_interaction(
                make_key(i), ViewKind.SENDER, "a", "op", content()
            )
        recorder.flush()
        assert bus.calls == 3  # ceil(25 / 10)

    def test_async_cheaper_than_sync_in_virtual_time(self, deployment):
        bus, _ = deployment
        sync_rec = ProvenanceRecorder(bus, mode=RecordingMode.SYNCHRONOUS)
        for i in range(10):
            sync_rec.record_interaction(
                make_key(i), ViewKind.SENDER, "a", "op", content()
            )
        sync_cost = bus.clock.now

        bus2 = MessageBus()
        bus2.register(
            PReServActor(MemoryBackend()), latency=LatencyModel(round_trip_s=0.018)
        )
        async_rec = ProvenanceRecorder(
            bus2, mode=RecordingMode.ASYNCHRONOUS, flush_batch_size=64
        )
        for i in range(10):
            async_rec.record_interaction(
                make_key(i + 100), ViewKind.SENDER, "a", "op", content()
            )
        async_rec.flush()
        assert bus2.clock.now < sync_cost

    def test_record_actor_state_and_group(self, deployment):
        bus, backend = deployment
        recorder = ProvenanceRecorder(bus, mode=RecordingMode.SYNCHRONOUS)
        recorder.record_actor_state(
            make_key(), ViewKind.RECEIVER, "b", "script", content("#!/bin/sh")
        )
        recorder.record_group(
            "session-1", GroupKind.SESSION, make_key(), "a"
        )
        counts = backend.counts()
        assert counts.actor_state_passertions == 1
        assert counts.group_assertions == 1

    def test_local_ids_unique(self, deployment):
        bus, _ = deployment
        recorder = ProvenanceRecorder(bus, mode=RecordingMode.ASYNCHRONOUS)
        a = recorder.record_interaction(
            make_key(1), ViewKind.SENDER, "a", "op", content()
        )
        b = recorder.record_interaction(
            make_key(1), ViewKind.RECEIVER, "b", "op", content()
        )
        assert a.local_id != b.local_id

    def test_flush_batch_size_validated(self, deployment):
        bus, _ = deployment
        with pytest.raises(ValueError):
            ProvenanceRecorder(bus, flush_batch_size=0)

    def test_crash_recovery_via_on_disk_journal(self, deployment, tmp_path):
        """Async journal on disk survives a 'crash' before flush."""
        bus, backend = deployment
        path = tmp_path / "journal.log"
        recorder = ProvenanceRecorder(
            bus, mode=RecordingMode.ASYNCHRONOUS, journal=Journal(path)
        )
        for i in range(4):
            recorder.record_interaction(
                make_key(i), ViewKind.SENDER, "a", "op", content()
            )
        recorder.journal.close()  # crash before flush
        # Recovery: reload the journal and flush through a new recorder.
        recovered = ProvenanceRecorder(
            bus, mode=RecordingMode.ASYNCHRONOUS, journal=Journal.load(path)
        )
        assert recovered.flush() == 4
        assert backend.counts().interaction_passertions == 4
