"""The ``bz-like`` codec: block-wise BWT + MTF + ZRLE + Huffman.

Substitutes for the paper's ``bzip2`` binary.  Input is split into fixed-size
blocks; each block is Burrows-Wheeler transformed, move-to-front coded,
zero-run-length encoded and finally Huffman compressed.

Stream layout::

    varint n_blocks
    per block: varint primary_index · varint len(payload) · payload
"""

from __future__ import annotations

from repro.compress.api import Compressor, register_compressor
from repro.compress.bitio import read_varint, write_varint
from repro.compress.bwt import bwt, ibwt
from repro.compress.huffman import huffman_compress, huffman_decompress
from repro.compress.mtf import mtf_decode, mtf_encode, zrle_decode, zrle_encode

DEFAULT_BLOCK_SIZE = 32 * 1024


class BzLikeCompressor(Compressor):
    """BWT pipeline, standing in for bzip2."""

    name = "bz-like"

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE):
        if block_size < 1:
            raise ValueError(f"block size must be >= 1, got {block_size}")
        self.block_size = block_size

    def compress(self, data: bytes) -> bytes:
        blocks = [
            data[i : i + self.block_size] for i in range(0, len(data), self.block_size)
        ]
        parts = [write_varint(len(blocks))]
        for block in blocks:
            last, primary = bwt(block)
            payload = huffman_compress(zrle_encode(mtf_encode(last)))
            parts.append(write_varint(primary))
            parts.append(write_varint(len(payload)))
            parts.append(payload)
        return b"".join(parts)

    def decompress(self, blob: bytes) -> bytes:
        n_blocks, pos = read_varint(blob, 0)
        out = bytearray()
        for _ in range(n_blocks):
            primary, pos = read_varint(blob, pos)
            plen, pos = read_varint(blob, pos)
            payload = blob[pos : pos + plen]
            pos += plen
            last = mtf_decode(zrle_decode(huffman_decompress(payload)))
            out += ibwt(last, primary)
        return bytes(out)


register_compressor(BzLikeCompressor())
