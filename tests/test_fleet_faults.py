"""Deterministic fault injection: plans, points, and scripted crashes.

Three layers under test: the :class:`FaultPlan` scheduling machinery
itself (pure, in-process), the transport's instrumented fault points
(drop/corrupt/sever over a real socket server), and the crash-sim
primitive — a fleet worker scripted to ``die`` at a named commit point,
verified by its exit code (:data:`FAULT_EXIT_CODE`, distinct from a
stray SIGKILL) and by what its recovered log does and does not hold.
"""

from __future__ import annotations

import time

import pytest

from repro.fleet.faults import (
    FAULT_EXIT_CODE,
    FaultInjected,
    FaultPlan,
    FaultRule,
    attach_fault_points,
)
from repro.soa.envelope import Fault
from repro.soa.transport import EnvelopeClient, EnvelopeServer, RetryPolicy
from repro.soa.xmldoc import XmlElement
from repro.store.backends import MemoryBackend

from tests.test_soa_transport import WireTestActor
from tests.test_store_backends import ipa, key


class TestFaultRules:
    def test_action_validated(self):
        with pytest.raises(ValueError):
            FaultRule("commit", "explode")
        with pytest.raises(ValueError):
            FaultRule("commit", "die", after=-1)
        with pytest.raises(ValueError):
            FaultRule("commit", "die", count=0)

    def test_fires_on_window(self):
        rule = FaultRule("commit", "fault", after=2, count=2)
        assert [rule.fires_on(h) for h in range(1, 6)] == [
            False, False, True, True, False,
        ]

    def test_unbounded_count(self):
        rule = FaultRule("worker-start", "die", after=1, count=-1)
        assert not rule.fires_on(1)
        assert all(rule.fires_on(h) for h in range(2, 10))

    def test_plan_counts_per_point_and_logs(self):
        plan = FaultPlan([FaultRule("commit", "fault", after=1, count=1)])
        assert plan.check("commit") is None
        rule = plan.check("commit")
        assert rule is not None and rule.action == "fault"
        assert plan.check("commit") is None
        assert plan.hits("commit") == 3
        assert plan.log == [("commit", "fault", 2)]

    def test_fire_applies_fault_action(self):
        plan = FaultPlan([FaultRule("commit", "fault")])
        with pytest.raises(FaultInjected):
            plan.fire("commit")

    def test_fire_delay_sleeps(self):
        plan = FaultPlan([FaultRule("commit", "delay", delay_s=0.05)])
        start = time.monotonic()
        plan.fire("commit")
        assert time.monotonic() - start >= 0.05


class TestBackendFaultPoints:
    def test_die_at_commit_loses_unacked_batch(self):
        """``commit`` fires before persistence: nothing lands."""
        backend = MemoryBackend()
        plan = FaultPlan([FaultRule("commit", "fault")])
        attach_fault_points(backend, plan)
        with pytest.raises(FaultInjected):
            backend.put(ipa(1))
        assert not backend.interaction_passertions(key(1))

    def test_fault_at_committed_is_durable_but_unacked(self):
        """``committed`` fires after persistence: the data must survive."""
        backend = MemoryBackend()
        plan = FaultPlan([FaultRule("committed", "fault")])
        attach_fault_points(backend, plan)
        with pytest.raises(FaultInjected):
            backend.put_many([ipa(1), ipa(2)])
        assert backend.interaction_passertions(key(1))
        assert backend.interaction_passertions(key(2))


@pytest.fixture
def fault_served(tmp_path):
    """A wire server whose fault plan the test fills in post-hoc."""
    plan = FaultPlan()
    actor = WireTestActor()
    server = EnvelopeServer(
        actor,
        ("unix", str(tmp_path / "faulty.sock")),
        poll_interval_s=0.05,
        fault_plan=plan,
    )
    address = server.start()
    client = EnvelopeClient(
        address, retry=RetryPolicy(attempts=3, backoff_s=0.01)
    )
    yield plan, server, client
    client.close()
    server.stop()


class TestTransportFaultPoints:
    def _echo(self, client, idempotent=None):
        return client.call(
            source="t",
            target="wire",
            operation="echo",
            payload=XmlElement("ping", {"n": "1"}),
            idempotent=idempotent,
        )

    def test_server_send_drop_severs_and_retry_recovers(self, fault_served):
        plan, _server, client = fault_served
        plan.rules = (FaultRule("server-send", "drop"),)
        reply = self._echo(client, idempotent=True)
        assert reply.attrs["n"] == "1"
        assert ("server-send", "drop", 1) in plan.log
        assert client.retries >= 1

    def test_server_send_drop_fails_non_idempotent_call(self, fault_served):
        plan, _server, client = fault_served
        plan.rules = (FaultRule("server-send", "drop"),)
        with pytest.raises(Fault) as excinfo:
            self._echo(client, idempotent=False)
        assert excinfo.value.code == "worker-unavailable"
        assert excinfo.value.detail["attempts"] == "1"

    def test_corrupt_reply_is_rejected_not_trusted(self, fault_served):
        plan, _server, client = fault_served
        plan.rules = (FaultRule("server-send", "corrupt"),)
        reply = self._echo(client, idempotent=True)
        # First reply had a flipped byte and was rejected; the retry's
        # reply is clean.  The client never surfaces the corrupt one.
        assert reply.attrs["n"] == "1"
        assert ("server-send", "corrupt", 1) in plan.log

    def test_server_recv_drop_severs_connection(self, fault_served):
        plan, _server, client = fault_served
        plan.rules = (FaultRule("server-recv", "drop"),)
        reply = self._echo(client, idempotent=True)
        assert reply.attrs["n"] == "1"

    def test_client_connect_fault_refuses_dial(self, tmp_path, fault_served):
        _plan, server, _client = fault_served
        client_plan = FaultPlan([FaultRule("client-connect", "drop")])
        client = EnvelopeClient(
            server.address,
            retry=RetryPolicy(attempts=2, backoff_s=0.01),
            fault_plan=client_plan,
        )
        try:
            reply = self._echo(client, idempotent=True)
            assert reply.attrs["n"] == "1"
            assert client_plan.log[0][:2] == ("client-connect", "drop")
        finally:
            client.close()

    def test_client_send_fault_on_non_idempotent_op_fails_fast(
        self, fault_served
    ):
        _plan, server, _client = fault_served
        client_plan = FaultPlan(
            [FaultRule("client-send", "drop", count=-1)]
        )
        client = EnvelopeClient(
            server.address,
            retry=RetryPolicy(attempts=3, backoff_s=0.01),
            fault_plan=client_plan,
        )
        try:
            with pytest.raises(Fault) as excinfo:
                self._echo(client, idempotent=False)
            assert excinfo.value.code == "worker-unavailable"
        finally:
            client.close()


class TestScriptedWorkerCrash:
    """The crash-sim primitive over a real process fleet."""

    def _fleet(self, tmp_path, rules):
        from repro.fleet.manager import ProcessFleet

        return ProcessFleet(
            tmp_path / "fleet",
            members=1,
            sync=True,
            fault_rules={"store-00": tuple(rules)},
        )

    def test_die_at_commit_point_has_fault_exit_code(self, tmp_path):
        from repro.store.distributed import StoreRouter

        fleet = self._fleet(
            tmp_path, [FaultRule("commit", "die", after=1, count=1)]
        )
        try:
            router = StoreRouter(fleet.stores())
            router.put(ipa(1))  # first commit passes (after=1)
            with pytest.raises(Fault) as excinfo:
                router.put(ipa(2))  # second commit dies mid-write
            assert excinfo.value.code == "worker-unavailable"
            handle = fleet.handle("store-00")
            handle.process.join(timeout=10.0)
            assert handle.process.exitcode == FAULT_EXIT_CODE
            # Recovery: the restarted log holds the acked write and NOT
            # the one whose commit the crash preempted.
            fleet.restart("store-00")
            store = fleet.store("store-00")
            assert store.interaction_passertions(key(1))
            assert not store.interaction_passertions(key(2))
        finally:
            fleet.close(raise_errors=False)

    def test_die_at_committed_point_keeps_durable_write(self, tmp_path):
        fleet = self._fleet(tmp_path, [FaultRule("committed", "die")])
        try:
            store = fleet.store("store-00")
            with pytest.raises(Fault):
                store.put(ipa(1))  # persisted, then died before the ack
            handle = fleet.handle("store-00")
            handle.process.join(timeout=10.0)
            assert handle.process.exitcode == FAULT_EXIT_CODE
            fleet.restart("store-00")
            # Durable-but-unacked: recovery must keep it.
            assert fleet.store("store-00").interaction_passertions(key(1))
        finally:
            fleet.close(raise_errors=False)
