"""Self-healing fleet: supervised restart, resync, and the crash drill.

The acceptance scenario for the replicated fleet: a process fleet under a
:class:`~repro.fleet.supervisor.FleetSupervisor` takes concurrent writes
and reads while one worker is SIGKILLed — zero acknowledged writes may be
lost (verified byte-identically on every replica), reads must answer
throughout, and the supervisor must restore full replication on its own.

Process-spawn tests are slow (~1 s per worker); everything that does not
need a real process lives in ``test_store_replication.py`` instead.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.fleet.faults import FAULT_EXIT_CODE, FaultRule
from repro.fleet.manager import ProcessFleet
from repro.fleet.supervisor import FleetSupervisor
from repro.store.distributed import (
    FederatedQueryClient,
    PartialCommitError,
    sharded_store_fleet,
)
from repro.soa.envelope import Fault

from tests.test_store_backends import ipa, key


def wait_until(predicate, timeout_s=60.0, interval_s=0.05, message="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError(f"timed out waiting for {message}")


def put_with_retry(router, batch, timeout_s=60.0):
    """Ack ``batch`` even across an outage (the drill's writer contract)."""
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            return router.put_many(batch)
        except (PartialCommitError, Fault):
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


class TestSupervisedRestart:
    def test_kill_restart_resync_restore(self, tmp_path):
        router = sharded_store_fleet(
            tmp_path / "fleet",
            members=2,
            transport="process",
            replicas=2,
        )
        fleet = router.fleet
        try:
            with FleetSupervisor(
                fleet, router=router, probe_interval_s=0.1
            ) as supervisor:
                before = [ipa(i) for i in range(6)]
                router.put_many(before)
                # Let the supervisor record healthy watermarks first.
                wait_until(
                    lambda: supervisor.status()["store-00"]["watermark"]
                    is not None,
                    message="a healthy watermark probe",
                )
                fleet.kill("store-00")
                # Writes during the outage: journaled + retried until the
                # supervisor restores the member (R=2 needs both copies).
                during = [ipa(i) for i in range(6, 12)]
                put_with_retry(router, during)
                wait_until(
                    lambda: supervisor.status()["store-00"]["state"]
                    == "healthy"
                    and not router.degraded_members
                    and not router.pending_repairs(),
                    message="supervised recovery",
                )
                events = [e for _, w, e, _ in supervisor.events if w == "store-00"]
                assert "died" in events
                assert "restarted" in events
                assert "resynced" in events
                assert "restored" in events
                assert events.index("died") < events.index("restored")
                # Every acked record is on every member of its replica set
                # (members == replicas == 2: both stores hold everything).
                for assertion in before + during:
                    for member in router.replica_set(assertion.interaction_key):
                        held = router.store(member).interaction_passertions(
                            assertion.interaction_key
                        )
                        assert [
                            p for p in held if p.store_key == assertion.store_key
                        ], f"{assertion.store_key} missing on {member}"
                assert supervisor.status()["store-00"]["restarts"] == 1
        finally:
            router.close()

    def test_flapping_worker_hits_backoff_cap_and_quarantines(self, tmp_path):
        # Fault-plan hits count per process, so a die-at-start rule is
        # injected into the worker's config only after the healthy spawn:
        # every supervised restart then crashes on arrival.
        fleet = ProcessFleet(tmp_path / "fleet", members=2)
        handle = fleet.handle("store-00")
        handle.config = dataclasses.replace(
            handle.config,
            fault_rules=(FaultRule("worker-start", "die", count=-1),),
        )
        try:
            supervisor = FleetSupervisor(
                fleet,
                probe_interval_s=0.05,
                backoff_s=0.05,
                backoff_max_s=0.2,
                flap_limit=2,
                restart_timeout_s=15.0,
            )
            with supervisor:
                fleet.kill("store-00")
                wait_until(
                    lambda: supervisor.quarantined == ["store-00"],
                    message="quarantine after the flap cap",
                )
            status = supervisor.status()["store-00"]
            assert status["state"] == "quarantined"
            assert status["attempts"] == supervisor.flap_limit
            failures = [
                e for _, w, e, _ in supervisor.events
                if w == "store-00" and e == "restart-failed"
            ]
            assert len(failures) == supervisor.flap_limit
            loud = [
                detail
                for _, w, e, detail in supervisor.events
                if w == "store-00" and e == "quarantined"
            ]
            assert loud and "flap cap" in loud[0]
            # The scripted deaths carry the fault exit code, and the
            # healthy sibling was never touched.
            assert fleet.handle("store-00").process.exitcode in (
                FAULT_EXIT_CODE,
                None,
            )
            assert fleet.handle("store-01").alive
        finally:
            fleet.close(raise_errors=False)

    def test_quarantine_can_be_lifted_manually(self, tmp_path):
        fleet = ProcessFleet(tmp_path / "fleet", members=1)
        handle = fleet.handle("store-00")
        healthy_config = handle.config
        handle.config = dataclasses.replace(
            handle.config,
            fault_rules=(FaultRule("worker-start", "die", count=-1),),
        )
        try:
            supervisor = FleetSupervisor(
                fleet,
                probe_interval_s=0.05,
                backoff_s=0.05,
                flap_limit=2,
                restart_timeout_s=15.0,
            )
            with supervisor:
                fleet.kill("store-00")
                wait_until(
                    lambda: supervisor.quarantined == ["store-00"],
                    message="quarantine",
                )
                # Operator intervention: fix the config (drop the scripted
                # crash), then give the worker its restarts back.
                fleet.handle("store-00").config = healthy_config
                supervisor.lift_quarantine("store-00")
                wait_until(
                    lambda: supervisor.status()["store-00"]["state"]
                    == "healthy",
                    message="recovery after lifting quarantine",
                )
        finally:
            fleet.close(raise_errors=False)

    def test_restart_races_compaction_scheduler(self, tmp_path):
        """A killed auto-compacting worker reopens its shard dir cleanly."""
        router = sharded_store_fleet(
            tmp_path / "fleet",
            members=2,
            transport="process",
            replicas=2,
            auto_compact=True,
        )
        fleet = router.fleet
        try:
            with FleetSupervisor(
                fleet, router=router, probe_interval_s=0.1
            ) as supervisor:
                router.put_many([ipa(i) for i in range(10)])
                fleet.kill("store-01")
                put_with_retry(router, [ipa(i) for i in range(10, 20)])
                wait_until(
                    lambda: supervisor.status()["store-01"]["state"]
                    == "healthy"
                    and not router.degraded_members,
                    message="recovery with auto-compaction",
                )
                queries = FederatedQueryClient(router)
                counts = queries.counts()
                assert counts.interaction_passertions == 20
        finally:
            router.close()


class TestCrashDrill:
    def test_availability_drill_loses_nothing(self, tmp_path):
        """The PR's acceptance drill: R=2, 4 workers, kill one mid-stream."""
        from repro.figures.fleet import run_availability_drill

        report = run_availability_drill(
            tmp_path,
            workers=4,
            replicas=2,
            batches=12,
            records_per_batch=3,
            kill_after_batches=4,
        )
        assert report.read_failures == 0
        assert report.read_error_rate == 0.0
        assert report.verified_records == report.acked_records == 36
        assert report.reads > 0
        # Bounded recovery: probe + backoff + spawn + resync, with slack
        # for a loaded CI host.
        assert 0.0 < report.recovery_s < 30.0


class TestQuarantineDeferral:
    """Quarantine must not wedge an in-flight migration (no processes:
    the restart ladder is driven directly against a stub fleet)."""

    class _StubFleet:
        worker_names = ["store-00", "store-01"]

        def handle(self, name):  # pragma: no cover - not reached
            raise AssertionError("handle() not expected in this drill")

        def restart(self, name, health_timeout_s=None):
            raise FleetError(f"worker {name!r} keeps dying")

    @staticmethod
    def _make_router(in_transition):
        from repro.store.backends import MemoryBackend
        from repro.store.distributed import StoreRouter
        from repro.store.placement import PlacementSpec

        router = StoreRouter(
            {"store-00": MemoryBackend(), "store-01": MemoryBackend()},
            placement="ring",
        )
        if in_transition:
            router.placement.begin_transition(
                PlacementSpec(
                    members=("store-00", "store-01", "store-02"), mode="ring"
                )
            )
        return router

    def _exhausted_supervisor(self, router):
        supervisor = FleetSupervisor(
            self._StubFleet(), router=router, flap_limit=2
        )
        supervisor._states["store-00"] = "dead"
        supervisor._attempts["store-00"] = 2  # the flap cap is spent
        return supervisor

    def test_participant_is_deferred_not_quarantined(self):
        router = self._make_router(in_transition=True)
        supervisor = self._exhausted_supervisor(router)
        supervisor._try_restart("store-00")
        assert supervisor.status()["store-00"]["state"] == "dead"
        assert supervisor.quarantined == []
        events = [event for _t, _n, event, _d in supervisor.events]
        assert "quarantine-deferred" in events
        # a deferred worker backs off at the max delay, not forever
        assert supervisor._not_before["store-00"] > 0

    def test_non_participant_quarantines_as_before(self):
        router = self._make_router(in_transition=False)
        supervisor = self._exhausted_supervisor(router)
        supervisor._try_restart("store-00")
        assert supervisor.quarantined == ["store-00"]
        events = [event for _t, _n, event, _d in supervisor.events]
        assert "quarantined" in events

    def test_deferral_ends_when_migration_resolves(self):
        router = self._make_router(in_transition=True)
        supervisor = self._exhausted_supervisor(router)
        supervisor._try_restart("store-00")
        assert supervisor.quarantined == []
        router.placement.abort_transition()
        supervisor._not_before["store-00"] = 0.0  # backoff elapsed
        supervisor._try_restart("store-00")
        assert supervisor.quarantined == ["store-00"]
