"""The three PReServ backends: in-memory, file system, database.

"Currently, PReServ comes with in-memory, file system and database
backends" (Section 5).  All three implement
:class:`~repro.store.interface.ProvenanceStoreInterface`; the persistent two
serialize assertions as XML documents and rebuild their in-memory indexes by
re-reading those documents on open.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Sequence, Union

from repro.core.passertion import GroupAssertion, parse_passertion
from repro.core.prep import PrepRecord
from repro.soa.xmldoc import XmlElement, parse_xml
from repro.store.interface import Assertion, ProvenanceStoreInterface
from repro.store.kvlog import KVLog


def _assertion_to_text(assertion: Assertion) -> str:
    return assertion.to_xml().serialize()


def _assertion_from_el(el: XmlElement) -> Assertion:
    if el.name == "group-assertion":
        return GroupAssertion.from_xml(el)
    return parse_passertion(el)


def _assertion_from_text(text: str) -> Assertion:
    return _assertion_from_el(parse_xml(text))


class MemoryBackend(ProvenanceStoreInterface):
    """Volatile backend: the index *is* the store."""

    def _persist(self, assertion: Assertion) -> None:
        pass  # nothing beyond the in-memory index

    def _persist_many(self, assertions: Sequence[Assertion]) -> None:
        pass


class FileSystemBackend(ProvenanceStoreInterface):
    """XML files under a directory tree, one file per put *or* per batch.

    Layout: ``root/NNNNNNNN.xml`` where the stem is the sequence number of
    the file's first assertion.  A file holds either one bare assertion
    document (single :meth:`put`) or a ``<segment>`` document wrapping up to
    ``segment_size`` assertions (one :meth:`put_many` group commit).  The
    monotonically increasing start sequence keeps replay order identical to
    insertion order when the index is rebuilt on open.
    """

    def __init__(
        self,
        root: Union[str, "os.PathLike[str]"],
        segment_size: int = 256,
    ):
        if segment_size < 1:
            raise ValueError("segment_size must be >= 1")
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_size = segment_size
        self._seq = 0
        self._replay()

    def _replay(self) -> None:
        for path in sorted(self.root.glob("*.xml"), key=lambda p: int(p.stem)):
            el = parse_xml(path.read_text(encoding="utf-8"))
            start_seq = int(path.stem)
            if el.name == "segment":
                members = list(el.iter_elements())
                for child in members:
                    self._index.add(_assertion_from_el(child))
                self._seq = max(self._seq, start_seq + len(members))
            else:
                self._index.add(_assertion_from_el(el))
                self._seq = max(self._seq, start_seq + 1)

    def _write_file(self, name: str, text: str) -> None:
        path = self.root / name
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    def _persist(self, assertion: Assertion) -> None:
        name = f"{self._seq:08d}.xml"
        self._seq += 1
        self._write_file(name, _assertion_to_text(assertion))

    def _persist_many(self, assertions: Sequence[Assertion]) -> None:
        # Segment files: N assertions per file instead of one file (and one
        # fsync-ordered rename) per assertion.
        for start in range(0, len(assertions), self.segment_size):
            chunk = assertions[start : start + self.segment_size]
            if len(chunk) == 1:
                self._persist(chunk[0])
                continue
            segment = XmlElement("segment", attrs={"count": str(len(chunk))})
            for assertion in chunk:
                segment.add(assertion.to_xml())
            name = f"{self._seq:08d}.xml"
            self._seq += len(chunk)
            self._write_file(name, segment.serialize())


class KVLogBackend(ProvenanceStoreInterface):
    """Database backend over the embedded :class:`KVLog` store.

    Plays the role of the paper's Berkeley DB JE backend: assertions are
    values keyed by an insertion sequence number; the index is rebuilt by
    scanning the log on open.
    """

    def __init__(self, path: Union[str, "os.PathLike[str]"], sync: bool = True):
        super().__init__()
        self._log = KVLog(path, sync=sync)
        self._seq = 0
        self._replay()

    def _replay(self) -> None:
        # One sequential pass over the log; keys are fixed-width sequence
        # numbers, so log order is insertion order.
        for key, value in self._log.scan():
            assertion = _assertion_from_text(value.decode("utf-8"))
            self._index.add(assertion)
            self._seq = max(self._seq, int(key.decode("ascii")) + 1)

    def _persist(self, assertion: Assertion) -> None:
        key = f"{self._seq:016d}".encode("ascii")
        self._seq += 1
        self._log.put(key, _assertion_to_text(assertion).encode("utf-8"))

    def _persist_many(self, assertions: Sequence[Assertion]) -> None:
        # Group commit: every assertion of the batch lands in the log with a
        # single write + flush.
        pairs: List[tuple] = []
        for assertion in assertions:
            key = f"{self._seq:016d}".encode("ascii")
            self._seq += 1
            pairs.append((key, _assertion_to_text(assertion).encode("utf-8")))
        self._log.put_many(pairs)

    def compact(self) -> None:
        self._log.compact()

    def close(self) -> None:
        self._log.close()


def record_to_xml(record: PrepRecord) -> XmlElement:
    """Convenience used by tests: a PReP record's wire form."""
    return record.to_xml()
