"""Distributed PReServ: the paper's §7 scalability design, implemented.

"PReServ may become a bottleneck when handling p-assertion submission
requests.  To combat such scalability concern, we are undertaking the
design of a distributed version of PReServ, which would allow parallel
submissions into several provenance store instances; additionally,
documentation recorded in different stores should be cross-linked to allow
navigation; a facility is also required to consolidate data into a single
provenance store."

Three pieces:

* :class:`StoreRouter` — deterministically routes each assertion to one of
  several PReServ instances (hash of the interaction key), so submissions
  can proceed in parallel; group assertions are broadcast so every store
  can answer membership queries for navigation.
* **cross-links** — when the router places an interaction's assertion, it
  records a :class:`CrossLink` naming the owning store, and each store keeps
  a ``link`` table mapping foreign interaction ids to their home store, so
  a navigator can hop between stores.
* :func:`consolidate` — merges several stores' contents into one backend,
  deduplicating broadcast group assertions and verifying that no
  p-assertion was lost or duplicated.

The federated query side is :class:`FederatedQueryClient`, which fans a
query out to all member stores and merges results.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.passertion import (
    ActorStatePAssertion,
    GroupAssertion,
    InteractionKey,
    InteractionPAssertion,
    PAssertion,
    ViewKind,
)
from repro.store.interface import (
    DuplicateAssertionError,
    ProvenanceStoreInterface,
    StoreCounts,
    interaction_scope,
)
from repro.store.querycache import GenerationVector

Assertion = Union[PAssertion, GroupAssertion]


class StoreCloseError(RuntimeError):
    """Aggregated member-close failures from :meth:`StoreRouter.close`.

    ``failures`` holds ``(member_name, exception)`` pairs, one per member
    whose ``close()`` raised — every member was still attempted.
    """

    def __init__(
        self, message: str, failures: List[Tuple[str, BaseException]]
    ):
        super().__init__(message)
        self.failures = failures


@dataclass(frozen=True)
class CrossLink:
    """A navigation pointer: this interaction's records live at ``store``."""

    interaction_key: InteractionKey
    store: str


def _hash_to_bucket(key: InteractionKey, n: int) -> int:
    # Same canonical scope string as shard placement and cache scoping, so
    # every layer agrees on which records belong together.
    digest = hashlib.sha256(interaction_scope(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n


class StoreRouter:
    """Routes assertions across several named PReServ backends.

    Placement is deterministic (rendezvous by key hash), so every client
    computes the same owner without coordination — the property that makes
    *parallel submission* safe.
    """

    def __init__(
        self,
        stores: Dict[str, ProvenanceStoreInterface],
        on_close: Optional[Callable[[], None]] = None,
    ):
        if not stores:
            raise ValueError("router needs at least one store")
        self._names: List[str] = sorted(stores)
        self._stores = dict(stores)
        #: per-store cross-link tables: store name -> {interaction key -> owner}.
        self._links: Dict[str, Dict[InteractionKey, str]] = {
            name: {} for name in self._names
        }
        self.records_routed = 0
        self._on_close = on_close
        self._closed = False

    @property
    def store_names(self) -> List[str]:
        return list(self._names)

    def close(self) -> None:
        """Close every member store (stopping any attached maintenance).

        The teardown entry point for factory-built fleets — callers hold
        the router, not the members, so the router owns shutdown.
        Idempotent, and *every* member is attempted even when one fails
        (a dead process-fleet worker must not leak its siblings'
        processes or fsync handles): per-member errors are collected and
        re-raised together as one :class:`StoreCloseError`.  An
        ``on_close`` hook (the process fleet's manager teardown) runs
        last, whether or not members failed.
        """
        if self._closed:
            return
        self._closed = True
        failures: List[Tuple[str, BaseException]] = []
        for name in self._names:
            try:
                self._stores[name].close()
            except BaseException as exc:
                failures.append((name, exc))
        try:
            if self._on_close is not None:
                self._on_close()
        except BaseException as exc:
            failures.append(("<on_close>", exc))
        if failures:
            detail = "; ".join(
                f"{name}: {type(exc).__name__}: {exc}" for name, exc in failures
            )
            raise StoreCloseError(
                f"{len(failures)} member store(s) failed to close: {detail}",
                failures,
            )

    def store(self, name: str) -> ProvenanceStoreInterface:
        try:
            return self._stores[name]
        except KeyError:
            raise KeyError(f"unknown store {name!r}") from None

    def owner_of(self, key: InteractionKey) -> str:
        """The store that owns this interaction's p-assertions."""
        return self._names[_hash_to_bucket(key, len(self._names))]

    # -- cache freshness ----------------------------------------------------
    def generations(self) -> Dict[str, int]:
        """Per-member write generations (cross-links ride member writes)."""
        return {name: self._stores[name].generation for name in self._names}

    def generation_vector(self) -> GenerationVector:
        """Freshness token: a router query is cacheable iff no member advanced."""
        return GenerationVector.of(self._stores)

    def put(self, assertion: Assertion) -> str:
        """Route one assertion; returns the name of the store that took it.

        Group assertions are broadcast (membership supports navigation from
        any store); p-assertions go to their owner, and every *other* store
        gains a cross-link to the owner.
        """
        self.records_routed += 1
        if isinstance(assertion, GroupAssertion):
            for name in self._names:
                self._stores[name].put(assertion)
            owner = self.owner_of(assertion.member)
            self._note_link(assertion.member, owner)
            return "*"
        owner = self.owner_of(assertion.interaction_key)
        self._stores[owner].put(assertion)
        self._note_link(assertion.interaction_key, owner)
        return owner

    def put_many(self, assertions: Iterable[Assertion]) -> List[str]:
        """Route a batch: one group commit per member store.

        Assertions are partitioned by owning store (group assertions are
        broadcast, as in :meth:`put`), then each store takes its share in a
        single :meth:`~ProvenanceStoreInterface.put_many` call — per-store
        relative order is preserved.  Returns each assertion's placement.

        If a member store rejects part of its batch the exception
        propagates; cross-links and ``records_routed`` are then recorded
        exactly for the assertions that were durably stored (including the
        accepted prefix of the failing store's batch, just as a put loop
        would have linked each stored assertion before failing) — the
        navigation tables never point at a store that did not take the
        data, and never miss data a store did take.
        """
        per_store: Dict[str, List[Assertion]] = {name: [] for name in self._names}
        plan: List[Tuple[Assertion, str]] = []
        for assertion in assertions:
            if isinstance(assertion, GroupAssertion):
                for name in self._names:
                    per_store[name].append(assertion)
                plan.append((assertion, "*"))
            else:
                owner = self.owner_of(assertion.interaction_key)
                per_store[owner].append(assertion)
                plan.append((assertion, owner))
        committed: set = set()
        failed: Optional[str] = None
        try:
            for name in self._names:
                if per_store[name]:
                    try:
                        self._stores[name].put_many(per_store[name])
                    except BaseException:
                        failed = name
                        raise
                committed.add(name)
        finally:
            for assertion, owner in plan:
                if owner == "*":
                    if all(
                        name in committed or self._holds(name, assertion)
                        for name in self._names
                    ):
                        self.records_routed += 1
                        self._note_link(
                            assertion.member, self.owner_of(assertion.member)
                        )
                elif owner in committed or (
                    owner == failed and self._holds(owner, assertion)
                ):
                    self.records_routed += 1
                    self._note_link(assertion.interaction_key, owner)
        return [owner for _, owner in plan]

    def _holds(self, store_name: str, assertion: Assertion) -> bool:
        """Whether ``store_name`` durably holds ``assertion`` (post-failure)."""
        store = self._stores[store_name]
        if isinstance(assertion, GroupAssertion):
            return assertion.member in store.group_members(assertion.group_id)
        if isinstance(assertion, InteractionPAssertion):
            found = store.interaction_passertions(assertion.interaction_key)
        else:
            found = store.actor_state_passertions(assertion.interaction_key)
        return any(p.store_key == assertion.store_key for p in found)

    def _note_link(self, key: InteractionKey, owner: str) -> None:
        for name in self._names:
            if name != owner:
                self._links[name][key] = owner

    def cross_links(self, store_name: str) -> List[CrossLink]:
        """The navigation table held at ``store_name``."""
        table = self._links.get(store_name)
        if table is None:
            raise KeyError(f"unknown store {store_name!r}")
        return [
            CrossLink(interaction_key=key, store=owner)
            for key, owner in sorted(table.items())
        ]

    def resolve(self, start_store: str, key: InteractionKey) -> str:
        """Navigate: from ``start_store``, find where ``key`` lives.

        Returns ``start_store`` itself when the records are local; otherwise
        follows the cross-link.
        """
        store = self.store(start_store)
        if store.interaction_passertions(key) or store.actor_state_passertions(key):
            return start_store
        owner = self._links[start_store].get(key)
        if owner is None:
            raise KeyError(
                f"no records or cross-link for {key} at store {start_store!r}"
            )
        return owner


class FederatedQueryClient:
    """Answers store-interface queries over all members of a router.

    Federation-wide merges (:meth:`interaction_keys`, :meth:`counts`) are
    memoized under the router's generation vector: a merged result is served
    from cache iff no member store advanced since it was built.
    """

    def __init__(self, router: StoreRouter):
        self.router = router
        self._keys_cache: Optional[
            Tuple[GenerationVector, List[InteractionKey]]
        ] = None
        self._counts_cache: Optional[Tuple[GenerationVector, StoreCounts]] = None
        self.cache_hits = 0

    def interaction_keys(self) -> List[InteractionKey]:
        vector = self.router.generation_vector()
        if self._keys_cache is not None and self._keys_cache[0].fresh(vector):
            self.cache_hits += 1
            return list(self._keys_cache[1])
        keys = set()
        for name in self.router.store_names:
            keys.update(self.router.store(name).interaction_keys())
        merged = sorted(keys)
        self._keys_cache = (vector, merged)
        return list(merged)

    def interaction_passertions(
        self, key: InteractionKey, view: Optional[ViewKind] = None
    ) -> List[InteractionPAssertion]:
        owner = self.router.owner_of(key)
        return self.router.store(owner).interaction_passertions(key, view)

    def actor_state_passertions(
        self,
        key: InteractionKey,
        view: Optional[ViewKind] = None,
        state_type: Optional[str] = None,
    ) -> List[ActorStatePAssertion]:
        owner = self.router.owner_of(key)
        return self.router.store(owner).actor_state_passertions(key, view, state_type)

    def group_members(self, group_id: str) -> List[InteractionKey]:
        # Groups are broadcast; any store can answer.
        first = self.router.store_names[0]
        return self.router.store(first).group_members(group_id)

    def counts(self) -> StoreCounts:
        """Aggregate counts (group assertions counted once, not per replica)."""
        vector = self.router.generation_vector()
        if self._counts_cache is not None and self._counts_cache[0].fresh(vector):
            self.cache_hits += 1
            return self._counts_cache[1]
        inter = state = 0
        records = set()
        for name in self.router.store_names:
            store = self.router.store(name)
            c = store.counts()
            inter += c.interaction_passertions
            state += c.actor_state_passertions
            records.update(store.interaction_keys())
        first = self.router.store(self.router.store_names[0])
        groups = first.counts().group_assertions
        merged = StoreCounts(
            interaction_passertions=inter,
            actor_state_passertions=state,
            group_assertions=groups,
            interaction_records=len(records),
        )
        self._counts_cache = (vector, merged)
        return merged


def sharded_store_fleet(
    root: "Path | str",
    members: int = 2,
    shards: int = 1,
    sync: bool = True,
    auto_compact: bool = False,
    transport: str = "inprocess",
    pipeline_depth: int = 1,
    commit_barrier_s: float = 0.0,
) -> StoreRouter:
    """A §7 deployment in one call: a router over KVLog-backed members.

    Each member store lives under ``root/store-NN`` with its own
    (optionally sharded) log, so the two scaling axes compose: the router
    parallelises submission *across* stores, ``shards`` parallelises group
    commits *within* each store.

    ``transport`` selects where the member stores run — the two layouts
    are identical on disk, so a fleet written with one transport reopens
    with the other:

    ``"inprocess"`` (default)
        Members are :class:`~repro.store.backends.KVLogBackend` instances
        in this process; every call is a direct method call.
    ``"process"``
        Members are worker *processes* (one
        :class:`~repro.fleet.manager.ProcessFleet` child per member, each
        hosting a PReServ actor over its own backend) reached through the
        Envelope socket transport; the router holds
        :class:`~repro.fleet.remote.RemoteStore` proxies and
        ``router.close()`` tears the whole fleet down (terminate/join +
        socket cleanup).  ``pipeline_depth`` configures each worker's
        ingest pipeline, and ``commit_barrier_s`` models a per-group-commit
        device stall (see :func:`repro.fleet.worker.attach_commit_barrier`)
        — both apply to the in-process transport too, for like-for-like
        baselines.

    ``auto_compact=True`` attaches background compaction: in-process, **one**
    shared :class:`~repro.store.maintenance.CompactionScheduler` across all
    members (a single maintenance budget for the whole fleet); per-worker
    schedulers in process mode (each child owns its maintenance).  Tear the
    fleet down with :meth:`StoreRouter.close`.
    """
    from repro.store.backends import KVLogBackend
    from repro.store.maintenance import CompactionScheduler

    if members < 1:
        raise ValueError("fleet needs at least one member store")
    if transport not in ("inprocess", "process"):
        raise ValueError(
            f"unknown transport {transport!r}; use 'inprocess' or 'process'"
        )
    root = Path(root)
    if transport == "process":
        from repro.fleet.manager import ProcessFleet

        fleet = ProcessFleet(
            root,
            members=members,
            shards=shards,
            sync=sync,
            auto_compact=auto_compact,
            pipeline_depth=pipeline_depth,
            commit_barrier_s=commit_barrier_s,
        )
        router = StoreRouter(
            fleet.stores(), on_close=lambda: fleet.close(raise_errors=False)
        )
        router.fleet = fleet  # type: ignore[attr-defined]
        return router
    existing = sorted(p for p in root.glob("store-*") if p.name[6:].isdigit())
    if existing and len(existing) != members:
        raise ValueError(
            f"{root} holds {len(existing)} member stores but "
            f"members={members}; reopen with members={len(existing)} "
            f"(rerouting keys across a different member count would "
            f"strand existing records)"
        )
    scheduler = CompactionScheduler() if auto_compact else None
    stores: Dict[str, ProvenanceStoreInterface] = {}
    for i in range(members):
        name = f"store-{i:02d}"
        # One path per member whatever the layout (file when shards=1,
        # directory otherwise), so reopening an existing fleet with the
        # wrong shard count hits KVLogBackend's layout guard instead of
        # silently standing up empty stores beside the old data.
        store = KVLogBackend(root / name, sync=sync, shards=shards)
        if commit_barrier_s > 0:
            from repro.fleet.worker import attach_commit_barrier

            attach_commit_barrier(store, commit_barrier_s)
        if scheduler is not None:
            scheduler.register(store, name)
            store.maintenance = scheduler
        stores[name] = store
    if scheduler is not None:
        scheduler.start()
    return StoreRouter(stores)


def consolidate(
    router: StoreRouter, target: ProvenanceStoreInterface
) -> Tuple[int, int]:
    """§7's consolidation facility: merge all member stores into ``target``.

    Returns ``(p_assertions_moved, group_assertions_moved)``.  Broadcast
    group assertions are deduplicated; duplicate p-assertions (which should
    not exist under routing) are detected and reported as errors.
    """
    moved_p = 0
    moved_g = 0
    seen_groups: set = set()
    for name in router.store_names:
        for assertion in router.store(name).all_assertions():
            if isinstance(assertion, GroupAssertion):
                dedupe_key = (
                    assertion.group_id,
                    assertion.member,
                    assertion.asserter,
                    assertion.sequence,
                )
                if dedupe_key in seen_groups:
                    continue
                seen_groups.add(dedupe_key)
                target.put(assertion)
                moved_g += 1
            else:
                try:
                    target.put(assertion)
                except DuplicateAssertionError as exc:
                    raise RuntimeError(
                        f"consolidation found a duplicated p-assertion "
                        f"(routing invariant violated): {exc}"
                    ) from exc
                moved_p += 1
    return moved_p, moved_g
