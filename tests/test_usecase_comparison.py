"""Use case 1: execution comparison — the paper's §3 scenario end to end.

"B downloads sequence data of microbial proteins from RefSeq and runs the
compressibility experiment.  B later performs the same experiment on the
same sequence data ... B compares the two experiment results and notices a
difference.  B determines whether the difference was caused by the
algorithms used to process the sequence data having been changed."
"""

from __future__ import annotations

import pytest

from repro.core.client import ProvenanceQueryClient
from repro.usecases.comparison import (
    categorise_scripts,
    compare_sessions,
    script_fingerprint,
)


@pytest.fixture
def two_identical_runs(experiment_factory):
    exp = experiment_factory(n_permutations=2)
    r1 = exp.run()
    r2 = exp.run()
    return exp, r1, r2


class TestCategorisation:
    def test_scripts_categorised_per_service(self, two_identical_runs):
        exp, r1, r2 = two_identical_runs
        client = ProvenanceQueryClient(exp.bus)
        cat = categorise_scripts(client)
        # Every service that ran has a category.
        services = cat.services()
        assert "encode-by-groups" in services
        assert "compress-gz-like" in services
        # Both sessions seen.
        assert cat.sessions() == {r1.session_id, r2.session_id}

    def test_identical_runs_share_fingerprints(self, two_identical_runs):
        exp, r1, r2 = two_identical_runs
        cat = categorise_scripts(ProvenanceQueryClient(exp.bus))
        for service in cat.services():
            assert cat.fingerprints_for(service, r1.session_id) == cat.fingerprints_for(
                service, r2.session_id
            )

    def test_one_store_call_per_interaction_record(self, two_identical_runs):
        """The paper's cost unit: one store invocation per script retrieved."""
        exp, r1, r2 = two_identical_runs
        client = ProvenanceQueryClient(exp.bus)
        cat = categorise_scripts(client)
        n_records = exp.backend.counts().interaction_records
        n_sessions = 2
        # 1 (session list) + n_sessions (members) + n_records (scripts).
        assert cat.store_calls == 1 + n_sessions + n_records
        assert cat.interactions_scanned == n_records

    def test_scoped_to_selected_sessions(self, two_identical_runs):
        exp, r1, _ = two_identical_runs
        cat = categorise_scripts(
            ProvenanceQueryClient(exp.bus), sessions=[r1.session_id]
        )
        assert cat.sessions() == {r1.session_id}

    def test_fingerprint_is_content_hash(self):
        assert script_fingerprint("x") == script_fingerprint("x")
        assert script_fingerprint("x") != script_fingerprint("y")


class TestUseCase1:
    def test_same_process_detected(self, two_identical_runs):
        exp, r1, r2 = two_identical_runs
        cat = categorise_scripts(ProvenanceQueryClient(exp.bus))
        comparison = compare_sessions(cat, r1.session_id, r2.session_id)
        assert comparison.same_process
        assert comparison.changed == {}

    def test_changed_algorithm_detected_and_localised(self, experiment_factory):
        """The headline UC1 scenario: same data, reconfigured encoder."""
        exp = experiment_factory(n_permutations=2, release=1)
        r1 = exp.run()
        # Same sequence data (release pinned), but the encoding algorithm's
        # configuration changes between the runs.
        exp.encode.reconfigure("dayhoff6", version="2.0")
        r2 = exp.run()

        # The results genuinely differ...
        assert r1.compressibility("gz-like") != r2.compressibility("gz-like")

        # ...and provenance explains why: exactly the encode script changed.
        cat = categorise_scripts(ProvenanceQueryClient(exp.bus))
        comparison = compare_sessions(cat, r1.session_id, r2.session_id)
        assert not comparison.same_process
        assert comparison.changed_services() == ["encode-by-groups"]
        assert "compress-gz-like" in comparison.unchanged

    def test_changed_compressor_detected(self, experiment_factory):
        exp = experiment_factory(n_permutations=1, release=1)
        r1 = exp.run()
        exp.compressors[0].reconfigure("gz-like", version="9.9")
        r2 = exp.run()
        cat = categorise_scripts(ProvenanceQueryClient(exp.bus))
        comparison = compare_sessions(cat, r1.session_id, r2.session_id)
        assert comparison.changed_services() == ["compress-gz-like"]

    def test_script_contents_recoverable_for_inspection(self, experiment_factory):
        """Provenance must store the scripts themselves, not just hashes."""
        exp = experiment_factory(n_permutations=1)
        exp.run()
        cat = categorise_scripts(ProvenanceQueryClient(exp.bus))
        encode_fps = {
            fp
            for (svc, _), fps in cat.by_service_session.items()
            if svc == "encode-by-groups"
            for fp in fps
        }
        assert len(encode_fps) == 1
        content = cat.categories[encode_fps.pop()].content
        assert "--grouping hp2" in content

    def test_comparison_handles_disjoint_services(self, experiment_factory):
        """A service present in only one run is reported, not crashed on."""
        exp = experiment_factory(n_permutations=1)
        r1 = exp.run()
        r2 = exp.run(
            sample_source_endpoint="nucleotide-db", sample_source_operation="fetch"
        )
        cat = categorise_scripts(ProvenanceQueryClient(exp.bus))
        comparison = compare_sessions(cat, r1.session_id, r2.session_id)
        assert "collate-sample" in comparison.only_in_a
        assert "nucleotide-db" in comparison.only_in_b
