"""Standard-library-backed codecs.

``zlib`` and ``bz2`` give fast, battle-tested implementations of the same
algorithm families as our from-scratch codecs; the benchmark harness uses
them for large sweeps where pure-Python compression would dominate runtime.
``StoredCompressor`` (identity) provides the no-compression baseline.
"""

from __future__ import annotations

import bz2
import zlib

from repro.compress.api import Compressor, register_compressor


class ZlibCompressor(Compressor):
    """DEFLATE via ``zlib`` — the fast stand-in for gzip."""

    name = "gzip"

    def __init__(self, level: int = 6):
        if not 0 <= level <= 9:
            raise ValueError(f"zlib level must be 0..9, got {level}")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, blob: bytes) -> bytes:
        return zlib.decompress(blob)


class Bz2Compressor(Compressor):
    """BWT pipeline via ``bz2`` — the fast stand-in for bzip2."""

    name = "bzip2"

    def __init__(self, level: int = 9):
        if not 1 <= level <= 9:
            raise ValueError(f"bz2 level must be 1..9, got {level}")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return bz2.compress(data, self.level)

    def decompress(self, blob: bytes) -> bytes:
        return bz2.decompress(blob)


class StoredCompressor(Compressor):
    """Identity codec: the no-compression baseline."""

    name = "stored"

    def compress(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress(self, blob: bytes) -> bytes:
        return bytes(blob)


register_compressor(ZlibCompressor())
register_compressor(Bz2Compressor())
register_compressor(StoredCompressor())
