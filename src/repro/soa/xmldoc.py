"""A small XML document model with serializer and parser, from scratch.

PReServ stores p-assertions as XML conforming to published schemas; this
module provides the equivalent document layer for the reproduction.  The
supported subset is what the provenance documents need:

* elements with attributes and ordered children,
* children are elements or text,
* the five standard entity references (``&amp; &lt; &gt; &quot; &apos;``),
* an optional XML declaration and comments (skipped on parse).

Not supported (by design): namespaces-as-semantics (colons in names are just
characters), DOCTYPEs, processing instructions, and CDATA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;"), ('"', "&quot;"), ("'", "&apos;")]
_UNESCAPES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}
#: str.translate table for the five standard entities (one pass, C speed).
_ESCAPE_TABLE = {ord(raw): ent for raw, ent in _ESCAPES}


def xml_escape(text: str) -> str:
    """Escape the five standard XML entities.

    Fast path: provenance payloads rarely contain markup characters, so
    return the input unchanged when none of the five are present.
    """
    if (
        "&" not in text
        and "<" not in text
        and ">" not in text
        and '"' not in text
        and "'" not in text
    ):
        return text
    return text.translate(_ESCAPE_TABLE)


def _unescape(text: str) -> str:
    # Fast path: no ampersand means no entity references to expand.
    if "&" not in text:
        return text
    out: List[str] = []
    pos = 0
    n = len(text)
    while pos < n:
        amp = text.find("&", pos)
        if amp == -1:
            out.append(text[pos:])
            break
        if amp > pos:
            out.append(text[pos:amp])
        end = text.find(";", amp + 1)
        if end == -1:
            raise ValueError(f"unterminated entity reference at offset {amp}")
        name = text[amp + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        else:
            try:
                out.append(_UNESCAPES[name])
            except KeyError:
                raise ValueError(f"unknown entity &{name};") from None
        pos = end + 1
    return "".join(out)


Child = Union["XmlElement", str]


#: ASCII characters valid anywhere in a name (non-ASCII falls back to isalnum).
_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:.-"
)


def _name_ok(name: str) -> bool:
    if not name:
        return False
    first = name[0]
    if not (first.isalpha() or first in "_:"):
        return False
    for c in name:
        if c not in _NAME_CHARS and not c.isalnum():
            return False
    return True


@dataclass
class XmlElement:
    """An XML element: tag name, attributes, ordered children."""

    name: str
    attrs: Dict[str, str] = field(default_factory=dict)
    children: List[Child] = field(default_factory=list)
    #: compact serialization cache, set by :meth:`freeze` — not part of the
    #: element's value (excluded from equality and repr).
    _frozen_text: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not _name_ok(self.name):
            raise ValueError(f"invalid element name {self.name!r}")
        for key in self.attrs:
            if not _name_ok(key):
                raise ValueError(f"invalid attribute name {key!r}")

    # -- construction helpers ----------------------------------------------
    def add(self, child: Child) -> "XmlElement":
        """Append a child; returns self for chaining."""
        if not isinstance(child, (XmlElement, str)):
            raise TypeError(f"child must be XmlElement or str, got {type(child)}")
        if self._frozen_text is not None:
            raise ValueError(f"element <{self.name}> is frozen")
        self.children.append(child)
        return self

    def element(self, tag: str, text: Optional[str] = None, **attrs: str) -> "XmlElement":
        """Create, append and return a child element named ``tag``.

        Attribute names arrive as keyword arguments; the positional
        parameter is called ``tag`` (not ``name``) so that ``name=...`` can
        be used as an attribute.
        """
        el = XmlElement(name=tag, attrs=dict(attrs))
        if text is not None:
            el.add(text)
        self.add(el)
        return el

    # -- navigation -------------------------------------------------------
    @property
    def text(self) -> str:
        """Concatenated direct text children."""
        return "".join(c for c in self.children if isinstance(c, str))

    def iter_elements(self) -> Iterator["XmlElement"]:
        for c in self.children:
            if isinstance(c, XmlElement):
                yield c

    def find(self, name: str) -> Optional["XmlElement"]:
        for el in self.iter_elements():
            if el.name == name:
                return el
        return None

    def find_all(self, name: str) -> List["XmlElement"]:
        return [el for el in self.iter_elements() if el.name == name]

    def require(self, name: str) -> "XmlElement":
        el = self.find(name)
        if el is None:
            raise KeyError(f"element <{self.name}> has no child <{name}>")
        return el

    def path(self, *names: str) -> Optional["XmlElement"]:
        """Descend through a chain of child names; None if any hop is missing."""
        cur: Optional[XmlElement] = self
        for n in names:
            if cur is None:
                return None
            cur = cur.find(n)
        return cur

    def copy(self) -> "XmlElement":
        """A deep, unfrozen copy of this subtree."""
        return XmlElement(
            name=self.name,
            attrs=dict(self.attrs),
            children=[
                c.copy() if isinstance(c, XmlElement) else c for c in self.children
            ],
        )

    # -- serialization -----------------------------------------------------
    def freeze(self) -> "XmlElement":
        """Declare this subtree immutable and cache its compact serialization.

        Query-result documents are built once and then re-serialized on every
        envelope that carries them; freezing computes the compact form a
        single time and lets :meth:`serialize`/:meth:`to_xml_string` (and any
        unfrozen ancestor's ``serialize``) splice the cached string in.
        After freezing, :meth:`add`/:meth:`element` raise.
        """
        if self._frozen_text is None:
            for child in self.children:
                if isinstance(child, XmlElement):
                    child.freeze()
            self._frozen_text = self.serialize()
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen_text is not None

    def to_xml_string(self) -> str:
        """Compact serialized form; cached for frozen elements."""
        if self._frozen_text is not None:
            return self._frozen_text
        return self.serialize()

    def serialize(self, indent: Optional[int] = None) -> str:
        if indent is None and self._frozen_text is not None:
            return self._frozen_text
        out: List[str] = []
        self._write(out, indent, 0)
        return "".join(out)

    def _write(self, out: List[str], indent: Optional[int], depth: int) -> None:
        if indent is None and self._frozen_text is not None:
            out.append(self._frozen_text)
            return
        pad = "" if indent is None else "\n" + " " * (indent * depth)
        if depth or indent is not None:
            out.append(pad if depth else "")
        out.append(f"<{self.name}")
        for key in sorted(self.attrs):
            out.append(f' {key}="{xml_escape(self.attrs[key])}"')
        if not self.children:
            out.append("/>")
            return
        out.append(">")
        only_text = all(isinstance(c, str) for c in self.children)
        for child in self.children:
            if isinstance(child, str):
                out.append(xml_escape(child))
            else:
                child._write(out, indent, depth + 1)
        if indent is not None and not only_text:
            out.append("\n" + " " * (indent * depth))
        out.append(f"</{self.name}>")

    def byte_size(self) -> int:
        """UTF-8 size of the serialized document (message-size modelling)."""
        return len(self.serialize().encode("utf-8"))

    # -- structural equality is provided by dataclass --------------------


class _Parser:
    """Recursive-descent parser for the supported XML subset."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ValueError:
        line = self.text.count("\n", 0, self.pos) + 1
        return ValueError(f"XML parse error at line {line}: {message}")

    def parse(self) -> XmlElement:
        self._skip_prolog()
        el = self._parse_element()
        self._skip_misc()
        if self.pos != len(self.text):
            raise self.error("content after document element")
        return el

    # -- lexing helpers -----------------------------------------------------
    def _skip_ws(self) -> None:
        text = self.text
        pos = self.pos
        n = len(text)
        while pos < n and text[pos].isspace():
            pos += 1
        self.pos = pos

    def _skip_comment(self) -> bool:
        if self.text.startswith("<!--", self.pos):
            end = self.text.find("-->", self.pos + 4)
            if end == -1:
                raise self.error("unterminated comment")
            self.pos = end + 3
            return True
        return False

    def _skip_prolog(self) -> None:
        self._skip_ws()
        if self.text.startswith("<?xml", self.pos):
            end = self.text.find("?>", self.pos)
            if end == -1:
                raise self.error("unterminated XML declaration")
            self.pos = end + 2
        self._skip_misc()

    def _skip_misc(self) -> None:
        while True:
            self._skip_ws()
            if not self._skip_comment():
                return

    def _read_name(self) -> str:
        text = self.text
        start = pos = self.pos
        n = len(text)
        while pos < n:
            c = text[pos]
            if c not in _NAME_CHARS and not c.isalnum():
                break
            pos += 1
        self.pos = pos
        name = text[start:pos]
        if not _name_ok(name):
            raise self.error(f"invalid name {name!r}")
        return name

    def _expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            found = self.text[self.pos : self.pos + 10]
            raise self.error(f"expected {literal!r}, found {found!r}")
        self.pos += len(literal)

    # -- grammar ---------------------------------------------------------
    def _parse_element(self) -> XmlElement:
        self._expect("<")
        name = self._read_name()
        attrs: Dict[str, str] = {}
        while True:
            self._skip_ws()
            if self.text.startswith("/>", self.pos):
                self.pos += 2
                return XmlElement(name=name, attrs=attrs)
            if self.text.startswith(">", self.pos):
                self.pos += 1
                break
            key, value = self._parse_attribute()
            if key in attrs:
                raise self.error(f"duplicate attribute {key!r}")
            attrs[key] = value
        el = XmlElement(name=name, attrs=attrs)
        self._parse_content(el)
        self._expect("</")
        closing = self._read_name()
        if closing != name:
            raise self.error(f"mismatched close tag </{closing}> for <{name}>")
        self._skip_ws()
        self._expect(">")
        return el

    def _parse_attribute(self) -> Tuple[str, str]:
        key = self._read_name()
        self._skip_ws()
        self._expect("=")
        self._skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] not in "\"'":
            raise self.error("attribute value must be quoted")
        quote = self.text[self.pos]
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end == -1:
            raise self.error("unterminated attribute value")
        raw = self.text[self.pos : end]
        self.pos = end + 1
        return key, _unescape(raw)

    def _parse_content(self, el: XmlElement) -> None:
        text = self.text
        n = len(text)
        buffer: List[str] = []

        def flush_text() -> None:
            if buffer:
                joined = _unescape("".join(buffer))
                if joined.strip():
                    el.add(joined)
                buffer.clear()

        while True:
            if self.pos >= n:
                raise self.error(f"unterminated element <{el.name}>")
            # Slice the whole text run up to the next markup in one scan.
            lt = text.find("<", self.pos)
            if lt == -1:
                raise self.error(f"unterminated element <{el.name}>")
            if lt > self.pos:
                buffer.append(text[self.pos : lt])
                self.pos = lt
            if text.startswith("</", lt):
                flush_text()
                return
            if self._skip_comment():
                continue
            flush_text()
            el.add(self._parse_element())


def parse_xml(text: str) -> XmlElement:
    """Parse an XML document and return its root element."""
    return _Parser(text).parse()
