"""Ablations supporting the paper's §7 discussion.

* **Granularity** (A1): "automatic recording of p-assertions has an
  acceptable cost if the granularity of activities is coarse enough" —
  sweep the number of permutations batched per script and report recording
  overhead per configuration.
* **Backends** (A2): record/query throughput of the three store backends.
* **Compressors** (A3): compressibility of structured vs shuffled protein
  samples per codec and grouping — the experiment's scientific output.
* **Bulk ingest** (A5): recording throughput of the per-assertion ``put``
  path versus the ``put_many`` group-commit path, per backend — the
  Figure-4-style table behind the batched actor-side library.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.app.costmodel import Fig4CostModel, RecordingConfig
from repro.bio.analysis import average_results, SizeRow, SizesTable
from repro.bio.encode import encode_by_groups
from repro.bio.groupings import get_grouping
from repro.bio.refseq import RefSeqDatabase, sample_of_size
from repro.bio.shuffle import permutations_of
from repro.compress.api import get_compressor
from repro.figures.microbench import pregenerated_record
from repro.figures.stats import format_table
from repro.figures.fig4 import simulate_run
from repro.store.backends import FileSystemBackend, KVLogBackend, MemoryBackend
from repro.store.interface import ProvenanceStoreInterface


# --------------------------------------------------------------------------
# A1: granularity
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class GranularityPoint:
    permutations_per_script: int
    none_s: float
    sync_s: float
    overhead: float


def run_granularity(
    batch_sizes: Sequence[int] = (1, 5, 10, 25, 50, 100, 200),
    n_permutations: int = 400,
    model: Fig4CostModel = Fig4CostModel(),
) -> List[GranularityPoint]:
    """Recording overhead as a function of script granularity.

    Small batches mean many scheduler round trips, so the *fixed* scheduling
    overhead dominates and recording overhead (a per-permutation cost)
    shrinks relative to total time — but total time explodes; the paper's
    point is the joint choice of granularity for scheduling *and* recording.
    """
    points: List[GranularityPoint] = []
    for batch in batch_sizes:
        none_s = simulate_run(
            model, RecordingConfig.NONE, n_permutations, permutations_per_script=batch
        )
        sync_s = simulate_run(
            model, RecordingConfig.SYNC, n_permutations, permutations_per_script=batch
        )
        points.append(
            GranularityPoint(
                permutations_per_script=batch,
                none_s=none_s,
                sync_s=sync_s,
                overhead=(sync_s - none_s) / none_s,
            )
        )
    return points


def granularity_table(points: List[GranularityPoint]) -> str:
    headers = ["perms/script", "no recording (s)", "sync recording (s)", "overhead"]
    rows = [
        [
            p.permutations_per_script,
            f"{p.none_s:.1f}",
            f"{p.sync_s:.1f}",
            f"{p.overhead * 100:.1f}%",
        ]
        for p in points
    ]
    return format_table(headers, rows)


# ----------------------------------------------------------------------------
# A2: backends
# ----------------------------------------------------------------------------

@dataclass(frozen=True)
class BackendPoint:
    backend: str
    records: int
    record_s: float
    reopen_s: Optional[float]

    @property
    def records_per_second(self) -> float:
        return self.records / self.record_s if self.record_s else float("inf")


def run_backends(
    tmp_dir: Path, records: int = 500
) -> List[BackendPoint]:
    """Record throughput (and reopen/replay cost) per backend."""
    points: List[BackendPoint] = []

    def bench(name: str, make: "object", reopen: "object" = None) -> None:
        backend: ProvenanceStoreInterface = make()
        prepared = [pregenerated_record(i) for i in range(records)]
        start = time.perf_counter()
        for record in prepared:
            backend.put(record.assertion)
        elapsed = time.perf_counter() - start
        backend.close()
        reopen_s = None
        if reopen is not None:
            start = time.perf_counter()
            reopened = reopen()
            reopen_s = time.perf_counter() - start
            assert reopened.counts().interaction_passertions == records
            reopened.close()
        points.append(
            BackendPoint(backend=name, records=records, record_s=elapsed, reopen_s=reopen_s)
        )

    bench("memory", MemoryBackend)
    fs_root = tmp_dir / "fs-backend"
    bench(
        "filesystem",
        lambda: FileSystemBackend(fs_root),
        lambda: FileSystemBackend(fs_root),
    )
    kv_path = tmp_dir / "kvlog-backend.db"
    bench(
        "kvlog",
        lambda: KVLogBackend(kv_path),
        lambda: KVLogBackend(kv_path),
    )
    return points


def backends_table(points: List[BackendPoint]) -> str:
    headers = ["backend", "records", "record time (s)", "records/s", "reopen (s)"]
    rows = [
        [
            p.backend,
            p.records,
            f"{p.record_s:.3f}",
            f"{p.records_per_second:.0f}",
            f"{p.reopen_s:.3f}" if p.reopen_s is not None else "-",
        ]
        for p in points
    ]
    return format_table(headers, rows)


# ----------------------------------------------------------------------------
# A5: bulk ingest (single put vs put_many group commit)
# ----------------------------------------------------------------------------

@dataclass(frozen=True)
class BulkIngestPoint:
    backend: str
    records: int
    batch_size: int
    single_s: float
    batch_s: float

    @property
    def single_rps(self) -> float:
        return self.records / self.single_s if self.single_s else float("inf")

    @property
    def batch_rps(self) -> float:
        return self.records / self.batch_s if self.batch_s else float("inf")

    @property
    def speedup(self) -> float:
        return self.single_s / self.batch_s if self.batch_s else float("inf")


def run_bulk_ingest(
    tmp_dir: Path, records: int = 2000, batch_size: int = 256
) -> List[BulkIngestPoint]:
    """p-assertions/sec of ``put`` vs ``put_many`` for every backend."""
    if records < 1:
        raise ValueError("records must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    assertions = [pregenerated_record(i).assertion for i in range(records)]
    points: List[BulkIngestPoint] = []

    def bench(name: str, make) -> None:
        single_store: ProvenanceStoreInterface = make("single")
        start = time.perf_counter()
        for assertion in assertions:
            single_store.put(assertion)
        single_s = time.perf_counter() - start
        single_store.close()

        batch_store: ProvenanceStoreInterface = make("batch")
        start = time.perf_counter()
        for begin in range(0, records, batch_size):
            batch_store.put_many(assertions[begin : begin + batch_size])
        batch_s = time.perf_counter() - start
        assert batch_store.counts().interaction_passertions == records
        batch_store.close()
        points.append(
            BulkIngestPoint(
                backend=name,
                records=records,
                batch_size=batch_size,
                single_s=single_s,
                batch_s=batch_s,
            )
        )

    bench("memory", lambda tag: MemoryBackend())
    bench("filesystem", lambda tag: FileSystemBackend(tmp_dir / f"fs-{tag}"))
    bench("kvlog", lambda tag: KVLogBackend(tmp_dir / f"kv-{tag}.db"))
    return points


def bulk_ingest_table(points: List[BulkIngestPoint]) -> str:
    headers = [
        "backend",
        "records",
        "batch",
        "single put (rec/s)",
        "put_many (rec/s)",
        "speedup",
    ]
    rows = [
        [
            p.backend,
            p.records,
            p.batch_size,
            f"{p.single_rps:.0f}",
            f"{p.batch_rps:.0f}",
            f"{p.speedup:.2f}x",
        ]
        for p in points
    ]
    return format_table(headers, rows)


# --------------------------------------------------------------------------
# A3: compressors / groupings (the scientific result)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CompressibilityPoint:
    codec: str
    grouping: str
    sample_ratio: float
    permutation_mean_ratio: float
    compressibility: float
    compressibility_std: float


def run_compressibility(
    codecs: Sequence[str] = ("gz-like", "bz-like", "ppm-like"),
    groupings: Sequence[str] = ("hp2", "dayhoff6", "identity20"),
    sample_bytes: int = 2000,
    n_permutations: int = 5,
    seed: int = 7,
) -> List[CompressibilityPoint]:
    """Compressibility of a structured protein sample per codec/grouping."""
    db = RefSeqDatabase(seed=seed)
    _, sample = sample_of_size(db, sample_bytes)
    points: List[CompressibilityPoint] = []
    for grouping in groupings:
        encoded = encode_by_groups(sample, get_grouping(grouping))
        perms = list(permutations_of(encoded, n_permutations, seed=seed))
        for codec_name in codecs:
            codec = get_compressor(codec_name)
            table = SizesTable()
            table.add(
                SizeRow(
                    label="sample",
                    codec=codec_name,
                    original_size=len(encoded),
                    compressed_size=codec.compressed_size(encoded.encode()),
                )
            )
            for i, perm in enumerate(perms):
                table.add(
                    SizeRow(
                        label=f"perm-{i}",
                        codec=codec_name,
                        original_size=len(perm),
                        compressed_size=codec.compressed_size(perm.encode()),
                    )
                )
            result = average_results(table)[codec_name]
            points.append(
                CompressibilityPoint(
                    codec=codec_name,
                    grouping=grouping,
                    sample_ratio=result.sample_ratio,
                    permutation_mean_ratio=result.permutation_mean_ratio,
                    compressibility=result.compressibility,
                    compressibility_std=result.compressibility_std,
                )
            )
    return points


def compressibility_table(points: List[CompressibilityPoint]) -> str:
    headers = [
        "grouping",
        "codec",
        "sample ratio",
        "perm mean ratio",
        "compressibility",
        "std",
    ]
    rows = [
        [
            p.grouping,
            p.codec,
            f"{p.sample_ratio:.4f}",
            f"{p.permutation_mean_ratio:.4f}",
            f"{p.compressibility:.4f}",
            f"{p.compressibility_std:.4f}",
        ]
        for p in points
    ]
    return format_table(headers, rows)
