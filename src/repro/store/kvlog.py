"""An embedded append-only key-value store (the Berkeley DB substitute).

PReServ's evaluated configuration used "a database backend based on the
Berkeley DB Java Edition".  We substitute a from-scratch log-structured KV
store in the Bitcask style:

* writes append ``(crc, key_len, val_len, tombstone, key, value)`` records
  to a single data file and update an in-memory hash index
  ``key -> (offset, length)``;
* reads seek directly via the index;
* deletes append tombstones;
* :meth:`KVLog.compact` rewrites only live records into a fresh file;
* every record is CRC32-checked on read, and a truncated/corrupt tail is
  detected (and ignored) on open, giving crash-safe recovery semantics;
* commits are durable (``fsync``) by default; :meth:`KVLog.put_many` is a
  *group commit* — the whole batch is appended with one write and one
  fsync, which is where the bulk-ingest throughput win comes from;
* :meth:`KVLog.compact` is crash-safe end to end: the replacement file is
  fsynced before the atomic rename and the parent directory is fsynced
  after it, so a power loss leaves either the old log or the complete
  compacted one — never a truncated in-between.

For a store that scales past one append file and one fsync stream, see
:class:`repro.store.sharding.ShardedKVLog`, which hash-partitions this
same format across several shard files.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: record header: crc32, key length, value length, tombstone flag
_HEADER = struct.Struct("<IIIB")


class CorruptRecordError(Exception):
    """A record failed its CRC or structural check."""


def fsync_dir(path: "os.PathLike[str] | str") -> None:
    """fsync a directory, making a just-renamed entry durable.

    ``os.replace`` is atomic but only orders the *rename* against other
    directory operations; the new entry itself is not on disk until the
    directory inode is synced.  No-op on platforms that cannot open
    directories (Windows), where the old rename-only behavior remains.
    """
    if os.name == "nt":  # pragma: no cover - POSIX-only durability upgrade
        return
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def mkdir_durable(path: "os.PathLike[str] | str", sync: bool = True) -> None:
    """``mkdir -p`` whose created entries are fsynced into their parents.

    A plain mkdir leaves the new directory's dirent in the page cache; a
    crash can then drop the whole directory tree together with the fsynced
    files inside it.
    """
    path = Path(path)
    created = []
    probe = path
    while not probe.exists() and probe != probe.parent:
        created.append(probe)
        probe = probe.parent
    path.mkdir(parents=True, exist_ok=True)
    if sync:
        for entry in reversed(created):
            fsync_dir(entry.parent)


class KVLog:
    """A single-file, CRC-checked, log-structured key-value store."""

    def __init__(self, path: "os.PathLike[str] | str", sync: bool = True):
        self.path = Path(path)
        mkdir_durable(self.path.parent, sync=sync)
        #: fsync on every commit (durable like the paper's Berkeley DB JE
        #: backend); set sync=False for page-cache-only durability.
        self._sync = sync
        # key -> (value offset, value length); tombstoned keys absent.
        self._index: Dict[bytes, Tuple[int, int]] = {}
        self._dead_bytes = 0
        # Cached sorted key view; invalidated whenever the key set changes.
        self._sorted_keys: Optional[List[bytes]] = None
        created = not self.path.exists()
        self._file = open(self.path, "a+b")
        if created and self._sync:
            # The file's directory entry must be durable before the first
            # acknowledged write can claim to be — without this, power loss
            # can drop a freshly created log together with its fsynced data.
            fsync_dir(self.path.parent)
        self._rebuild_index()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "KVLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._file.closed:
            raise ValueError("operation on closed KVLog")

    def _commit(self) -> None:
        """Make everything appended so far durable (one flush, one fsync)."""
        self._file.flush()
        if self._sync:
            os.fsync(self._file.fileno())

    # -- index reconstruction ----------------------------------------------
    def _rebuild_index(self) -> None:
        """Scan the log, building the index; truncate a corrupt tail."""
        self._index.clear()
        self._sorted_keys = None
        self._dead_bytes = 0
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        self._file.seek(0)
        pos = 0
        valid_end = 0
        while pos < size:
            try:
                key, value_span, tombstone, next_pos = self._read_record_at(pos)
            except (CorruptRecordError, EOFError):
                break
            if tombstone:
                old = self._index.pop(key, None)
                if old is not None:
                    self._dead_bytes += _HEADER.size + len(key) + old[1]
                self._dead_bytes += _HEADER.size + len(key)
            else:
                old = self._index.get(key)
                if old is not None:
                    self._dead_bytes += _HEADER.size + len(key) + old[1]
                self._index[key] = value_span
            pos = next_pos
            valid_end = pos
        if valid_end < size:
            # Crash recovery: drop the torn tail so future appends are clean.
            self._file.truncate(valid_end)
        self._file.seek(0, os.SEEK_END)

    def _read_record_at(
        self, pos: int
    ) -> Tuple[bytes, Tuple[int, int], bool, int]:
        self._file.seek(pos)
        header = self._file.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise EOFError
        crc, key_len, val_len, tombstone = _HEADER.unpack(header)
        payload = self._file.read(key_len + val_len)
        if len(payload) < key_len + val_len:
            raise CorruptRecordError("truncated record payload")
        if zlib.crc32(payload) != crc:
            raise CorruptRecordError(f"CRC mismatch at offset {pos}")
        key = payload[:key_len]
        value_offset = pos + _HEADER.size + key_len
        next_pos = pos + _HEADER.size + key_len + val_len
        return key, (value_offset, val_len), bool(tombstone), next_pos

    # -- operations --------------------------------------------------------
    @staticmethod
    def _encode_record(key: bytes, value: bytes) -> bytes:
        payload = key + value
        return _HEADER.pack(zlib.crc32(payload), len(key), len(value), 0) + payload

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise ValueError("key must be non-empty bytes")
        key = bytes(key)
        value = bytes(value)
        record = self._encode_record(key, value)
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        self._file.write(record)
        self._commit()
        old = self._index.get(key)
        if old is not None:
            self._dead_bytes += _HEADER.size + len(key) + old[1]
        else:
            self._sorted_keys = None
        self._index[key] = (offset + _HEADER.size + len(key), len(value))

    def put_many(self, pairs: Iterable[Tuple[bytes, bytes]]) -> int:
        """Group commit: append a whole batch with one write + one flush.

        Equivalent to a sequence of :meth:`put` calls, but the records are
        concatenated into a single buffer first, so the batch costs one
        syscall-and-flush instead of one per record.  Each record carries
        its own CRC, so a crash mid-batch leaves a torn tail that
        :meth:`_rebuild_index` truncates cleanly on the next open — the
        records fully written before the crash survive.
        """
        self._check_open()
        chunks: List[bytes] = []
        spans: List[Tuple[bytes, int, int]] = []  # key, relative offset, length
        rel = 0
        for key, value in pairs:
            if not isinstance(key, (bytes, bytearray)) or not key:
                raise ValueError("key must be non-empty bytes")
            key = bytes(key)
            value = bytes(value)
            chunks.append(self._encode_record(key, value))
            spans.append((key, rel + _HEADER.size + len(key), len(value)))
            rel += _HEADER.size + len(key) + len(value)
        if not chunks:
            return 0
        self._file.seek(0, os.SEEK_END)
        base = self._file.tell()
        self._file.write(b"".join(chunks))
        self._commit()
        for key, value_rel, value_len in spans:
            old = self._index.get(key)
            if old is not None:
                self._dead_bytes += _HEADER.size + len(key) + old[1]
            else:
                self._sorted_keys = None
            self._index[key] = (base + value_rel, value_len)
        return len(spans)

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        span = self._index.get(bytes(key))
        if span is None:
            return None
        offset, length = span
        self._file.seek(offset)
        value = self._file.read(length)
        if len(value) < length:
            raise CorruptRecordError(f"short read for key {key!r}")
        return value

    def delete(self, key: bytes) -> bool:
        """Append a tombstone; returns True if the key was present."""
        self._check_open()
        key = bytes(key)
        if key not in self._index:
            return False
        payload = key
        record = _HEADER.pack(zlib.crc32(payload), len(key), 0, 1) + payload
        self._file.seek(0, os.SEEK_END)
        self._file.write(record)
        self._commit()
        old = self._index.pop(key)
        self._sorted_keys = None
        self._dead_bytes += 2 * (_HEADER.size + len(key)) + old[1]
        return True

    def __contains__(self, key: bytes) -> bool:
        return bytes(key) in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> Iterator[bytes]:
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._index)
        return iter(self._sorted_keys)

    def scan(self) -> Iterator[Tuple[bytes, bytes]]:
        """Yield live ``(key, value)`` pairs in log order, one sequential pass.

        This is the replay path: instead of a sort plus one seek+read per
        value, the log file is read front to back through a buffered handle;
        records superseded by a later write (or tombstoned) are skipped by
        checking the record's offset against the in-memory index.

        Raises :class:`CorruptRecordError` if the pass ends before every
        live record the index references was read back — mid-log corruption
        must not silently drop the records behind it.
        """
        self._check_open()
        self._file.flush()
        index = self._index
        live_yielded = 0
        with open(self.path, "rb") as f:
            pos = 0
            while True:
                header = f.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    break
                crc, key_len, val_len, tombstone = _HEADER.unpack(header)
                payload = f.read(key_len + val_len)
                if len(payload) < key_len + val_len or zlib.crc32(payload) != crc:
                    break
                value_offset = pos + _HEADER.size + key_len
                if not tombstone:
                    key = payload[:key_len]
                    span = index.get(key)
                    if span is not None and span[0] == value_offset:
                        yield key, payload[key_len:]
                        live_yielded += 1
                pos = value_offset + val_len
        if live_yielded != len(index):
            raise CorruptRecordError(
                f"log scan stopped at offset {pos}: only {live_yielded} of "
                f"{len(index)} live records readable"
            )

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Live pairs in sorted-key order (one scan, then an in-memory sort)."""
        return iter(sorted(self.scan()))

    # -- maintenance -------------------------------------------------------
    @property
    def dead_bytes(self) -> int:
        """Bytes occupied by superseded/tombstoned records."""
        return self._dead_bytes

    def compact(self) -> None:
        """Rewrite only live records into a fresh log file (log order kept).

        Crash-safe: the replacement is fully written *and fsynced* before the
        atomic rename, and the parent directory is fsynced after it, so a
        crash at any point leaves either the old log or the complete
        compacted one (``sync=False`` skips both fsyncs).
        """
        self._check_open()
        tmp_path = self.path.with_suffix(self.path.suffix + ".compact")
        try:
            with open(tmp_path, "wb") as tmp:
                for key, value in self.scan():
                    tmp.write(self._encode_record(key, value))
                tmp.flush()
                if self._sync:
                    os.fsync(tmp.fileno())
        except BaseException:
            # A corrupt scan must abort compaction with the log untouched.
            tmp_path.unlink(missing_ok=True)
            raise
        if os.name == "nt":  # pragma: no cover - can't rename over an open file
            self._file.close()
        try:
            # On POSIX the live handle stays open across the rename: if the
            # rename fails, the log keeps serving from the still-valid
            # handle instead of dying half-closed.
            os.replace(tmp_path, self.path)
        except BaseException:
            tmp_path.unlink(missing_ok=True)
            if self._file.closed:  # pragma: no cover - Windows recovery
                self._file = open(self.path, "a+b")
            raise
        try:
            if self._sync:
                fsync_dir(self.path.parent)
        finally:
            # Once the rename happened the old inode is a ghost: whatever
            # the directory sync did, the handle must move to the new file
            # or later "durable" writes would vanish with the ghost.
            self._file.close()
            self._file = open(self.path, "a+b")
            self._rebuild_index()

    def file_size(self) -> int:
        self._file.seek(0, os.SEEK_END)
        return self._file.tell()
