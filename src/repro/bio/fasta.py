"""Minimal, strict FASTA reader/writer.

Sequences move between workflow activities as FASTA text, as in the paper's
experiment (use case 2 speaks of "an experiment on a FASTA sequence").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry: ``>header`` line plus the concatenated sequence."""

    header: str
    sequence: str

    @property
    def accession(self) -> str:
        """First whitespace-delimited token of the header."""
        return self.header.split()[0] if self.header.split() else ""


def parse_fasta(text: str) -> List[FastaRecord]:
    """Parse FASTA text into records.

    Strict about structure: sequence data before the first header, or a
    header with no sequence lines, is an error.  Blank lines are permitted
    between records.
    """
    records: List[FastaRecord] = []
    header: str | None = None
    chunks: List[str] = []

    def flush() -> None:
        nonlocal header, chunks
        if header is None:
            return
        seq = "".join(chunks)
        if not seq:
            raise ValueError(f"FASTA record {header!r} has no sequence data")
        records.append(FastaRecord(header=header, sequence=seq))
        header, chunks = None, []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            flush()
            header = line[1:].strip()
            if not header:
                raise ValueError(f"empty FASTA header at line {lineno}")
        else:
            if header is None:
                raise ValueError(
                    f"sequence data before any FASTA header at line {lineno}"
                )
            chunks.append(line)
    flush()
    return records


def write_fasta(records: Iterable[FastaRecord], width: int = 60) -> str:
    """Serialize records as FASTA with ``width``-column sequence wrapping."""
    if width < 1:
        raise ValueError(f"line width must be >= 1, got {width}")
    lines: List[str] = []
    for rec in records:
        if not rec.sequence:
            raise ValueError(f"record {rec.header!r} has empty sequence")
        lines.append(f">{rec.header}")
        for i in range(0, len(rec.sequence), width):
            lines.append(rec.sequence[i : i + width])
    return "\n".join(lines) + "\n"
