"""Cross-cutting property tests: every wire format round-trips losslessly.

The provenance architecture's value rests on records surviving
serialization, storage, archival and transport unchanged; these properties
pin that down over generated data rather than hand-picked examples.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.passertion import (
    ActorStatePAssertion,
    GroupAssertion,
    GroupKind,
    InteractionKey,
    InteractionPAssertion,
    ViewKind,
    parse_passertion,
)
from repro.core.prep import PrepQuery, PrepRecord, parse_prep_message
from repro.core.recorder import Journal
from repro.grid.dag import Activity, WorkflowDag
from repro.grid.vdl import parse_vdl, render_vdl
from repro.registry.ontology import Ontology
from repro.soa.envelope import Envelope
from repro.soa.xmldoc import XmlElement, parse_xml
from repro.store.backends import MemoryBackend
from repro.store.curation import export_archive, import_archive

# -- strategies ------------------------------------------------------------

_token = st.from_regex(r"[A-Za-z][A-Za-z0-9._-]{0,12}", fullmatch=True)
_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x17F),
    min_size=1,
    max_size=40,
).filter(lambda s: s.strip())

_keys = st.builds(
    InteractionKey,
    interaction_id=_token,
    sender=_token,
    receiver=_token,
)


def _content(text: str) -> XmlElement:
    el = XmlElement("doc")
    el.add(text)
    return el


_interaction_pas = st.builds(
    lambda key, view, asserter, local_id, op, text: InteractionPAssertion(
        interaction_key=key,
        view=view,
        asserter=asserter,
        local_id=local_id,
        operation=op,
        content=_content(text),
    ),
    _keys,
    st.sampled_from(list(ViewKind)),
    _token,
    _token,
    _token,
    _text,
)

_state_pas = st.builds(
    lambda key, view, asserter, local_id, stype, text: ActorStatePAssertion(
        interaction_key=key,
        view=view,
        asserter=asserter,
        local_id=local_id,
        state_type=stype,
        content=_content(text),
    ),
    _keys,
    st.sampled_from(list(ViewKind)),
    _token,
    _token,
    _token,
    _text,
)

_groups = st.builds(
    GroupAssertion,
    group_id=_token,
    kind=st.sampled_from(list(GroupKind)),
    member=_keys,
    asserter=_token,
    sequence=st.one_of(st.none(), st.integers(0, 10_000)),
)


class TestPAssertionRoundtrips:
    @given(_interaction_pas)
    def test_interaction_passertion(self, pa):
        restored = parse_passertion(parse_xml(pa.to_xml().serialize()))
        assert isinstance(restored, InteractionPAssertion)
        assert restored.store_key == pa.store_key
        assert restored.operation == pa.operation
        assert restored.content.text == pa.content.text

    @given(_state_pas)
    def test_actor_state_passertion(self, pa):
        restored = parse_passertion(parse_xml(pa.to_xml().serialize()))
        assert isinstance(restored, ActorStatePAssertion)
        assert restored.store_key == pa.store_key
        assert restored.state_type == pa.state_type

    @given(_groups)
    def test_group_assertion(self, ga):
        assert GroupAssertion.from_xml(parse_xml(ga.to_xml().serialize())) == ga


class TestPrepRoundtrips:
    @given(st.one_of(_interaction_pas, _state_pas, _groups))
    def test_prep_record(self, assertion):
        record = PrepRecord(assertion=assertion)
        restored = parse_prep_message(parse_xml(record.to_xml().serialize()))
        assert isinstance(restored, PrepRecord)
        if isinstance(assertion, GroupAssertion):
            assert restored.assertion == assertion
        else:
            assert restored.assertion.store_key == assertion.store_key

    @given(_token, st.dictionaries(_token, _text, max_size=4))
    def test_prep_query(self, qtype, params):
        query = PrepQuery(query_type=qtype, params=params)
        assert PrepQuery.from_xml(parse_xml(query.to_xml().serialize())) == query

    @given(st.lists(st.one_of(_interaction_pas, _state_pas), max_size=12, unique_by=lambda a: a.store_key))
    def test_journal_file_roundtrip(self, tmp_path_factory, assertions):
        path = tmp_path_factory.mktemp("journal") / "j.log"
        journal = Journal(path)
        for a in assertions:
            journal.append(PrepRecord(assertion=a))
        journal.close()
        replayed = Journal.load(path)
        assert [r.assertion.store_key for r in replayed.peek()] == [
            a.store_key for a in assertions
        ]


class TestEnvelopeRoundtrip:
    @given(
        st.dictionaries(_token, _text, min_size=0, max_size=5),
        _text,
    )
    def test_envelope(self, extra_headers, body_text):
        headers = {
            "source": "a",
            "target": "b",
            "operation": "op",
            "message-id": "m-1",
        }
        headers.update(extra_headers)
        env = Envelope(headers=headers, body=_content(body_text))
        restored = Envelope.deserialize(env.serialize())
        assert restored.headers == env.headers
        assert restored.body.text == body_text


class TestArchiveRoundtrip:
    @given(
        st.lists(
            st.one_of(_interaction_pas, _state_pas),
            max_size=15,
            unique_by=lambda a: a.store_key,
        ),
        st.lists(_groups, max_size=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_store_archive(self, tmp_path_factory, passertions, groups):
        store = MemoryBackend()
        for a in passertions:
            store.put(a)
        seen_kinds = {}
        for g in groups:
            # Respect the one-kind-per-group invariant when planting.
            if seen_kinds.setdefault(g.group_id, g.kind) != g.kind:
                continue
            store.put(g)
        path = tmp_path_factory.mktemp("archive") / "a.xml"
        export_archive(store, path)
        target = MemoryBackend()
        import_archive(path, target)
        assert target.counts() == store.counts()


class TestOntologyProperties:
    @given(st.integers(2, 25), st.data())
    def test_subsumption_transitive(self, n, data):
        """Random DAG ontology: subsumes is transitive along parent chains."""
        onto = Ontology()
        names = [f"t{i}" for i in range(n)]
        onto.add_type(names[0])
        for i in range(1, n):
            k = data.draw(st.integers(0, min(2, i - 1) if i > 1 else 0))
            parents = data.draw(
                st.lists(st.sampled_from(names[:i]), min_size=1, max_size=k + 1, unique=True)
            )
            onto.add_type(names[i], parents)
        for child in names:
            for mid in onto.ancestors(child):
                for top in onto.ancestors(mid):
                    assert onto.subsumes(top, child)

    @given(st.integers(2, 15))
    def test_chain_subsumption(self, n):
        onto = Ontology()
        onto.add_type("t0")
        for i in range(1, n):
            onto.add_type(f"t{i}", [f"t{i - 1}"])
        assert onto.subsumes("t0", f"t{n - 1}")
        assert not onto.subsumes(f"t{n - 1}", "t0")


class TestVdlProperty:
    @given(
        st.lists(
            st.tuples(
                st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True),
                st.dictionaries(
                    st.from_regex(r"[a-z][a-z0-9_]{0,5}", fullmatch=True),
                    st.from_regex(r"[A-Za-z0-9 ._-]{0,12}", fullmatch=True),
                    max_size=3,
                ),
            ),
            min_size=1,
            max_size=8,
            unique_by=lambda t: t[0],
        )
    )
    def test_render_parse_roundtrip(self, activities):
        dag = WorkflowDag("generated")
        names = []
        for i, (name, attrs) in enumerate(activities):
            attrs = {k: v for k, v in attrs.items() if k not in ("after", "script")}
            after = [names[i - 1]] if i else []
            dag.add_activity(
                Activity(name, script=f"{name}.sh", params=tuple(sorted(attrs.items()))),
                after=after,
            )
            names.append(name)
        reparsed = parse_vdl(render_vdl(dag))
        assert reparsed.names() == dag.names()
        for name in dag.names():
            assert reparsed.activity(name) == dag.activity(name)
            assert reparsed.dependencies_of(name) == dag.dependencies_of(name)
