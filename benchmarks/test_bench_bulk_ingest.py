"""A5 — bulk p-assertion ingest: single ``put`` vs ``put_many`` group commit.

The paper's headline evaluation is recording throughput; PReServ's
actor-side library accumulated p-assertions locally and shipped them as
batch records.  This bench measures p-assertions/sec of the per-assertion
path against the batched group-commit path for all three backends and
prints a Figure-4-style table.

Shape criteria:

* batch ingest on the KVLog (database) backend is at least 2x the
  per-assertion path — one fsync per batch instead of one per record;
* batch ingest is never slower than single-put on any backend;
* the rewritten XML codec round-trips the bench corpus losslessly (its
  throughput is reported alongside).
"""

from __future__ import annotations

import time

import pytest

from repro.figures.ablation import bulk_ingest_table, run_bulk_ingest
from repro.figures.microbench import pregenerated_record
from repro.figures.stats import format_table
from repro.soa.xmldoc import parse_xml
from repro.store.backends import KVLogBackend


#: perf assertions on timing-bound paths flake under machine noise (disk
#: writeback from the preceding backend benchmarks in particular); the
#: criteria must hold on at least one of this many measurement attempts.
MAX_ATTEMPTS = 3


@pytest.fixture(scope="module")
def points(tmp_path_factory):
    return run_bulk_ingest(
        tmp_path_factory.mktemp("bulk-ingest"), records=2000, batch_size=256
    )


def _criteria_failures(points) -> list:
    failures = []
    for p in points:
        # Batching must never lose throughput (tolerance for timer noise on
        # the sub-5ms memory-backend measurements).
        if p.batch_s > p.single_s * 1.25:
            failures.append(
                f"{p.backend}: put_many slower than put "
                f"({p.batch_rps:.0f}/s vs {p.single_rps:.0f}/s)"
            )
    # Acceptance bar: group commit >= 2x the per-assertion path on the
    # database backend (one fsync per batch instead of per record).
    kvlog = {p.backend: p for p in points}["kvlog"]
    if kvlog.speedup < 2.0:
        failures.append(f"kvlog bulk ingest speedup {kvlog.speedup:.2f}x < 2x")
    return failures


def test_bench_bulk_ingest_comparison(benchmark, points, report, tmp_path):
    attempts = []
    failures = _criteria_failures(points)
    attempts.append(list(failures))
    for attempt in range(1, MAX_ATTEMPTS):
        if not failures:
            break
        points = run_bulk_ingest(
            tmp_path / f"retry-{attempt}", records=2000, batch_size=256
        )
        failures = _criteria_failures(points)
        attempts.append(list(failures))
    benchmark.pedantic(
        lambda: [p.batch_rps for p in points], rounds=1, iterations=1
    )
    report("A5: bulk ingest — put vs put_many", bulk_ingest_table(points))
    for p in points:
        benchmark.extra_info[f"{p.backend}_single_rps"] = round(p.single_rps)
        benchmark.extra_info[f"{p.backend}_batch_rps"] = round(p.batch_rps)
    assert not failures, (
        f"bulk-ingest criteria failed on all {len(attempts)} attempts: "
        f"{attempts}"
    )


def test_bench_kvlog_put_many(benchmark, tmp_path):
    """Wall-clock cost of one 256-assertion group commit."""
    records = [pregenerated_record(i).assertion for i in range(40_000)]
    backend = KVLogBackend(tmp_path / "kv.db")
    counter = iter(range(150))

    def put_batch():
        start = next(counter) * 256
        backend.put_many(records[start : start + 256])

    benchmark.pedantic(put_batch, rounds=100, iterations=1)
    backend.close()


def test_bench_xml_codec_roundtrip(benchmark, report):
    """The rewritten XML codec: serialize + parse throughput, lossless."""
    docs = [pregenerated_record(i).to_xml() for i in range(500)]
    texts = [doc.serialize() for doc in docs]
    total_bytes = sum(len(t.encode("utf-8")) for t in texts)

    def roundtrip():
        return [parse_xml(text) for text in texts]

    reparsed = benchmark.pedantic(roundtrip, rounds=10, iterations=1)
    assert reparsed == docs  # lossless: structural equality after the trip

    start = time.perf_counter()
    for text in texts:
        parse_xml(text)
    parse_s = time.perf_counter() - start
    start = time.perf_counter()
    for doc in docs:
        doc.serialize()
    serialize_s = time.perf_counter() - start
    report(
        "A5b: XML codec throughput",
        format_table(
            ["direction", "docs/s", "MB/s"],
            [
                [
                    "parse",
                    f"{len(texts) / parse_s:.0f}",
                    f"{total_bytes / parse_s / 1e6:.1f}",
                ],
                [
                    "serialize",
                    f"{len(docs) / serialize_s:.0f}",
                    f"{total_bytes / serialize_s / 1e6:.1f}",
                ],
            ],
        ),
    )
