"""The protein compressibility experiment, assembled.

Wires the paper's Figure 1 / Figure 2 workflow over the SOA bus with full
provenance instrumentation:

* :mod:`repro.app.services` — the workflow activities as service actors
  (Collate Sample, Encode by Groups, compression, Measure Size, Collate
  Sizes, Average), each carrying its ~100-byte script,
* :mod:`repro.app.workflow` — the client-side workflow engine driving the
  activities with thread tags and causal (caused-by) links,
* :mod:`repro.app.experiment` — one-call assembly of database, bus, store,
  registry, recorder and interceptor; runs experiments end to end,
* :mod:`repro.app.costmodel` — the testbed-calibrated cost model behind the
  Figure 4 simulation.
"""

from repro.app.services import (
    AverageService,
    CollateSampleService,
    CollateSizesService,
    CompressService,
    EncodeByGroupsService,
    MeasureSizeService,
    NucleotideSourceService,
    ShuffleService,
)
from repro.app.workflow import CompressibilityWorkflow, WorkflowRunResult
from repro.app.vdlrunner import COMPRESSIBILITY_VDL, VdlRunOutcome, VdlWorkflowRunner
from repro.app.experiment import Experiment, ExperimentConfig, ExperimentResult
from repro.app.costmodel import Fig4CostModel, RecordingConfig

__all__ = [
    "AverageService",
    "COMPRESSIBILITY_VDL",
    "VdlRunOutcome",
    "VdlWorkflowRunner",
    "CollateSampleService",
    "CollateSizesService",
    "CompressService",
    "CompressibilityWorkflow",
    "EncodeByGroupsService",
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "Fig4CostModel",
    "MeasureSizeService",
    "NucleotideSourceService",
    "RecordingConfig",
    "ShuffleService",
    "WorkflowRunResult",
]
