"""The paper's primary contribution: a technology-independent provenance model.

Provenance of a data item is "the documentation of the process that led to
the data"; an element of that documentation is a **p-assertion**.  The model
(Section 5) defines:

* **interaction p-assertions** — an actor's record of a message it sent or
  received (identified by an interaction key and a view: sender/receiver),
* **actor state p-assertions** — an actor's documentation of its internal
  state in the context of a specific interaction (scripts, resource usage,
  the workflow being executed, ...),
* **groups** — well-specified associations of interactions (sessions,
  threads) relating provenance to execution structure.

**PReP**, the Provenance Recording Protocol, specifies the messages actors
exchange with a provenance store to record these p-assertions, sync- or
asynchronously; this package implements the model, the protocol messages,
the client-side recorder, bus instrumentation, and trace queries.
"""

from repro.core.passertion import (
    ActorStatePAssertion,
    GroupAssertion,
    GroupKind,
    InteractionKey,
    InteractionPAssertion,
    PAssertion,
    ViewKind,
    parse_passertion,
)
from repro.core.prep import (
    PrepAck,
    PrepMessage,
    PrepQuery,
    PrepRecord,
    PrepResult,
    ProtocolTracker,
    parse_prep_message,
)
from repro.core.recorder import Journal, ProvenanceRecorder, RecordingMode
from repro.core.instrument import ProvenanceInterceptor, ScriptProvider
from repro.core.client import ProvenanceQueryClient
from repro.core.prepackage import (
    InteractionTemplate,
    PrepackagedTemplates,
    analyse_workflow,
)
from repro.core.query import ProvenanceTrace, build_trace, data_lineage
from repro.core.validation import validate_passertion_xml

__all__ = [
    "ActorStatePAssertion",
    "GroupAssertion",
    "GroupKind",
    "InteractionKey",
    "InteractionPAssertion",
    "InteractionTemplate",
    "Journal",
    "PrepackagedTemplates",
    "ProvenanceQueryClient",
    "analyse_workflow",
    "PAssertion",
    "PrepAck",
    "PrepMessage",
    "PrepQuery",
    "PrepRecord",
    "PrepResult",
    "ProtocolTracker",
    "ProvenanceInterceptor",
    "ProvenanceRecorder",
    "ProvenanceTrace",
    "RecordingMode",
    "ScriptProvider",
    "ViewKind",
    "build_trace",
    "data_lineage",
    "parse_passertion",
    "parse_prep_message",
    "validate_passertion_xml",
]
