"""The paper's provenance use cases, implemented over the recorded data.

* :mod:`repro.usecases.comparison` — use case 1: did two runs of the same
  experiment use the same algorithms/configurations?  Categorises service
  scripts recorded as actor-state p-assertions and maps script equivalence
  classes to sessions.
* :mod:`repro.usecases.semantic` — use case 2: was every datum processed by
  a service that meaningfully processes data of that semantic type?
  Validates output-type/input-type compatibility along the trace using the
  registry's annotations and ontology.
"""

from repro.usecases.comparison import (
    ScriptCategorisation,
    SessionComparison,
    categorise_scripts,
    compare_sessions,
)
from repro.usecases.semantic import (
    SemanticValidationReport,
    SemanticViolation,
    validate_session,
)

__all__ = [
    "ScriptCategorisation",
    "SemanticValidationReport",
    "SemanticViolation",
    "SessionComparison",
    "categorise_scripts",
    "compare_sessions",
    "validate_session",
]
