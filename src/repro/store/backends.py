"""The three PReServ backends: in-memory, file system, database.

"Currently, PReServ comes with in-memory, file system and database
backends" (Section 5).  All three implement
:class:`~repro.store.interface.ProvenanceStoreInterface`; the persistent two
serialize assertions as XML documents and rebuild their in-memory indexes by
re-reading those documents on open.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

from repro.core.passertion import GroupAssertion, parse_passertion
from repro.core.prep import PrepRecord
from repro.soa.xmldoc import XmlElement, parse_xml
from repro.store.interface import Assertion, ProvenanceStoreInterface
from repro.store.kvlog import KVLog


def _assertion_to_text(assertion: Assertion) -> str:
    return assertion.to_xml().serialize()


def _assertion_from_text(text: str) -> Assertion:
    el = parse_xml(text)
    if el.name == "group-assertion":
        return GroupAssertion.from_xml(el)
    return parse_passertion(el)


class MemoryBackend(ProvenanceStoreInterface):
    """Volatile backend: the index *is* the store."""

    def _persist(self, assertion: Assertion) -> None:
        pass  # nothing beyond the in-memory index


class FileSystemBackend(ProvenanceStoreInterface):
    """One XML file per assertion under a directory tree.

    Layout: ``root/NNNNNNNN.xml`` in insertion order; the monotonically
    increasing sequence number keeps replay order identical to insertion
    order when the index is rebuilt on open.
    """

    def __init__(self, root: Union[str, "os.PathLike[str]"]):
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._seq = 0
        self._replay()

    def _replay(self) -> None:
        for path in sorted(self.root.glob("*.xml")):
            text = path.read_text(encoding="utf-8")
            assertion = _assertion_from_text(text)
            self._index.add(assertion)
            stem_seq = int(path.stem)
            self._seq = max(self._seq, stem_seq + 1)

    def _persist(self, assertion: Assertion) -> None:
        path = self.root / f"{self._seq:08d}.xml"
        self._seq += 1
        tmp = path.with_suffix(".tmp")
        tmp.write_text(_assertion_to_text(assertion), encoding="utf-8")
        os.replace(tmp, path)


class KVLogBackend(ProvenanceStoreInterface):
    """Database backend over the embedded :class:`KVLog` store.

    Plays the role of the paper's Berkeley DB JE backend: assertions are
    values keyed by an insertion sequence number; the index is rebuilt by
    scanning the log on open.
    """

    def __init__(self, path: Union[str, "os.PathLike[str]"]):
        super().__init__()
        self._log = KVLog(path)
        self._seq = 0
        self._replay()

    def _replay(self) -> None:
        for key, value in self._log.items():
            assertion = _assertion_from_text(value.decode("utf-8"))
            self._index.add(assertion)
            self._seq = max(self._seq, int(key.decode("ascii")) + 1)

    def _persist(self, assertion: Assertion) -> None:
        key = f"{self._seq:016d}".encode("ascii")
        self._seq += 1
        self._log.put(key, _assertion_to_text(assertion).encode("utf-8"))

    def compact(self) -> None:
        self._log.compact()

    def close(self) -> None:
        self._log.close()


def record_to_xml(record: PrepRecord) -> XmlElement:
    """Convenience used by tests: a PReP record's wire form."""
    return record.to_xml()
