"""Tests for simulation resources (slot pools, FIFO stores)."""

from __future__ import annotations

import pytest

from repro.simkit.kernel import SimulationError, Simulator
from repro.simkit.resources import Resource, Store


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grants_up_to_capacity_immediately(self, sim):
        res = Resource(sim, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert res.in_use == 2
        assert res.queue_length == 1

    def test_release_wakes_fifo_waiter(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        w1, w2 = res.request(), res.request()
        res.release()
        sim.run()
        assert w1.fired and not w2.triggered

    def test_release_without_request_raises(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_cancel_queued_request(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        waiting = res.request()
        assert res.cancel(waiting) is True
        assert res.cancel(waiting) is False
        assert res.queue_length == 0

    def test_serialises_processes(self, sim):
        """Two processes sharing one slot cannot overlap in time."""
        res = Resource(sim, capacity=1)
        spans = []

        def worker(name):
            req = res.request()
            yield req
            start = sim.now
            yield sim.timeout(3)
            res.release()
            spans.append((name, start, sim.now))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert spans == [("a", 0.0, 3.0), ("b", 3.0, 6.0)]

    def test_parallel_capacity_two(self, sim):
        res = Resource(sim, capacity=2)
        done = []

        def worker(name):
            yield res.request()
            yield sim.timeout(3)
            res.release()
            done.append((name, sim.now))

        for name in ("a", "b", "c"):
            sim.process(worker(name))
        sim.run()
        # a and b run together; c follows.
        assert done == [("a", 3.0), ("b", 3.0), ("c", 6.0)]

    def test_available_accounting(self, sim):
        res = Resource(sim, capacity=3)
        res.request()
        res.request()
        assert res.available == 1
        res.release()
        assert res.available == 2


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")
        ev = store.get()
        assert ev.triggered
        sim.run()
        assert ev.value == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(4)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(4.0, "late")]

    def test_fifo_ordering_of_items(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        values = []

        def consumer():
            for _ in range(3):
                values.append((yield store.get()))

        sim.process(consumer())
        sim.run()
        assert values == [0, 1, 2]

    def test_fifo_ordering_of_getters(self, sim):
        store = Store(sim)
        first, second = store.get(), store.get()
        store.put("x")
        assert first.triggered and not second.triggered

    def test_try_get_nonblocking(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        store.put(1)
        assert store.try_get() == 1
        assert len(store) == 0
