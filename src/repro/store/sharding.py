"""A hash-partitioned :class:`~repro.store.kvlog.KVLog` — the sharded store.

The paper's evaluation funnels every write through one Berkeley-DB-backed
store; our single-file :class:`KVLog` equivalently funnels every group
commit through one append file and one fsync stream.  That stream is the
ingest bottleneck once clients submit in parallel: commits serialize behind
one file lock, so concurrent batches queue instead of overlapping.

:class:`ShardedKVLog` keeps the exact on-disk record format but partitions
it across ``N`` shard files (``log.00.kv`` … ``log.NN.kv``), Bitcask style:

* ``put``/``put_many`` split work by ``hash(partition(key)) % N`` — by
  default the whole key is hashed; callers with structured keys (e.g. the
  database backend's ``<interaction-hash>|<seq>`` keys) pass a
  ``partition`` extractor so related records share a shard;
* each sub-batch is a normal KVLog group commit (one write + one fsync)
  against its shard, taken under a per-shard lock — concurrent clients
  whose batches land on different shards commit *in parallel*, which a
  single append file cannot do; sub-commits of one batch can additionally
  be fsynced in parallel via a small thread pool;
* every value is prefixed with a monotonically increasing 8-byte sequence
  number, so :meth:`scan` can merge the shards back into one stream in
  global insertion order — replay is byte-identical to a single log fed
  the same puts;
* :meth:`compact` and :attr:`dead_bytes` work per shard (a shard compaction
  never touches its siblings); the database backend layers per-shard *write
  generations* on top (see
  :meth:`repro.store.backends.KVLogBackend.shard_generations`) so read
  caches can invalidate at shard granularity instead of whole-store.

Crash recovery is inherited from :class:`KVLog`: each shard CRC-checks its
records and truncates a torn tail on open.  A crash in the middle of a
multi-shard batch may keep some shards' sub-commits and lose others — the
batch was never acknowledged — but every *acknowledged* batch survives in
full, and the store always reopens.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.store.kvlog import KVLog, fsync_dir, mkdir_durable

#: global-insertion-order prefix carried by every sharded value.
_SEQ = struct.Struct(">Q")

#: shard file name pattern (two digits keeps directory listings sorted).
SHARD_FILE = "log.{:02d}.kv"


def pipe_partition(key: bytes) -> bytes:
    """Partition extractor for ``<prefix>|<suffix>`` keys: the prefix.

    Keys without a ``|`` partition on their full bytes.
    """
    return key.split(b"|", 1)[0]


def shard_index(partition_key: bytes, shards: int) -> int:
    """THE placement function: which of ``shards`` owns ``partition_key``.

    Shared by :meth:`ShardedKVLog.shard_of` and the shard-sweep figures so
    simulated placement can never drift from the store's.
    """
    return zlib.crc32(partition_key) % shards


class ShardedKVLog:
    """N hash-partitioned :class:`KVLog` files behind the single-log API.

    Thread-safe: a global lock orders sequence assignment, per-shard locks
    serialize each shard's file operations, and concurrent callers touching
    different shards proceed in parallel.

    ``partition`` is part of the store's identity, like ``shards``: every
    open of the same directory must pass the same function, or keys will
    hash to the wrong shards.  Unlike the shard count (whose mismatch is
    detected from the files on disk), a partition mismatch cannot be
    detected for an arbitrary callable — callers own this invariant.
    """

    def __init__(
        self,
        root: "os.PathLike[str] | str",
        shards: int = 1,
        sync: bool = True,
        partition: Optional[Callable[[bytes], bytes]] = None,
        parallel_commit: bool = True,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.root = Path(root)
        mkdir_durable(self.root, sync=sync)
        existing = sorted(self.root.glob("log.*.kv"))
        # A shard-count mismatch only matters once records exist: rehashing
        # keys across a different count would strand them.  Empty shard
        # files are the footprint of a crash during a previous first-time
        # initialization — adopt or trim them so the store always reopens.
        if len(existing) != shards:
            if any(p.stat().st_size > 0 for p in existing):
                raise ValueError(
                    f"{self.root} holds {len(existing)} shard files with "
                    f"data but shards={shards}; reopen with "
                    f"shards={len(existing)} (rehashing keys across a "
                    f"different shard count would strand existing records)"
                )
            if len(existing) > shards:
                for stale in existing[shards:]:
                    stale.unlink()
                if sync:
                    # The unlinks must be durable before this open's shard
                    # count can be trusted: a crash that resurrects trimmed
                    # files would change the count detected next time.
                    fsync_dir(self.root)
        self.shards = shards
        self._partition = partition
        self._shards: List[KVLog] = []
        try:
            for i in range(shards):
                self._shards.append(
                    KVLog(self.root / SHARD_FILE.format(i), sync=sync)
                )
        except BaseException:
            # Don't leak the handles of shards that did open.
            for shard in self._shards:
                shard.close()
            raise
        self._locks = [threading.Lock() for _ in range(shards)]
        self._seq_lock = threading.Lock()
        self._closed = False
        self._pool: Optional[ThreadPoolExecutor] = None
        if parallel_commit and shards > 1:
            self._pool = ThreadPoolExecutor(
                max_workers=min(shards, os.cpu_count() or 2),
                thread_name_prefix="kvshard",
            )
        # Resolved lazily: the first write (or a full scan, which callers
        # replaying the log perform anyway) discovers the max live sequence,
        # so opening costs no extra pass over the data.
        self._next_seq: Optional[int] = None

    def _reserve_seqs(self, count: int) -> int:
        """Atomically reserve ``count`` sequence numbers; returns the first."""
        with self._seq_lock:
            if self._next_seq is None:
                top = -1
                for i in range(self.shards):
                    with self._locks[i]:
                        for _key, value in self._shards[i].scan():
                            seq = _SEQ.unpack_from(value)[0]
                            if seq > top:
                                top = seq
                self._next_seq = top + 1
            base = self._next_seq
            self._next_seq += count
            return base

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedKVLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("operation on closed ShardedKVLog")

    # -- partitioning ------------------------------------------------------
    def shard_of(self, key: bytes) -> int:
        """The shard index this key lives in (stable across reopen)."""
        pkey = self._partition(key) if self._partition is not None else key
        return shard_index(pkey, self.shards)

    # -- operations --------------------------------------------------------
    @staticmethod
    def _validated(key: bytes, value: bytes) -> Tuple[bytes, bytes]:
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise ValueError("key must be non-empty bytes")
        return bytes(key), bytes(value)

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        key, value = self._validated(key, value)
        shard = self.shard_of(key)
        if self._next_seq is None:
            # Resolve the lazy sequence watermark *before* taking the shard
            # lock: resolution scans every shard under its lock, so doing it
            # while holding one would invert the seq-lock/shard-lock order.
            self._reserve_seqs(0)
        with self._locks[shard]:
            # Reserve and commit under one shard lock: two racing puts of
            # the same key commit in sequence order, so the index's live
            # value is always the one scan() calls newest.  (Reservation
            # here only touches the seq counter — the resolution pass that
            # takes shard locks cannot run once the watermark is set.)
            with self._seq_lock:
                seq = self._next_seq
                self._next_seq += 1
            self._shards[shard].put(key, _SEQ.pack(seq) + value)

    def put_many(self, pairs: Iterable[Tuple[bytes, bytes]]) -> int:
        """Group commit: one KVLog batch commit per shard touched.

        Sequence numbers are assigned in input order before any shard is
        written, so a single-writer workload replays in exactly the order
        the pairs were given, whatever the shard count.  Sub-commits run on
        the commit pool when one is configured, overlapping the shards'
        fsyncs.

        A batch that lands on a *single* shard reserves and commits under
        that shard's lock, giving it the same same-key ordering guarantee
        as :meth:`put`.  A multi-shard batch cannot hold every shard lock
        across reservation (that would serialize the whole store), so its
        records may interleave with concurrent same-key writers between
        reservation and commit — concurrent mixed-key batches already have
        no relative-order promise, but callers racing single-key traffic
        against multi-shard batches should know the index keeps the last
        *committed* write, which under that race may not be the highest
        sequence.
        """
        self._check_open()
        batch = [self._validated(k, v) for k, v in pairs]
        if not batch:
            return 0
        owners = [self.shard_of(key) for key, _value in batch]
        if len(set(owners)) == 1:
            shard = owners[0]
            if self._next_seq is None:
                self._reserve_seqs(0)  # resolve before taking the shard lock
            with self._locks[shard]:
                with self._seq_lock:
                    base = self._next_seq
                    self._next_seq += len(batch)
                self._shards[shard].put_many(
                    [
                        (key, _SEQ.pack(base + offset) + value)
                        for offset, (key, value) in enumerate(batch)
                    ]
                )
            return len(batch)
        base = self._reserve_seqs(len(batch))
        per_shard: List[List[Tuple[bytes, bytes]]] = [[] for _ in range(self.shards)]
        for offset, (key, value) in enumerate(batch):
            per_shard[owners[offset]].append(
                (key, _SEQ.pack(base + offset) + value)
            )
        touched = [i for i, sub in enumerate(per_shard) if sub]
        if self._pool is not None and len(touched) > 1:
            futures: List[Future] = [
                self._pool.submit(self._commit_shard, i, per_shard[i])
                for i in touched
            ]
            # Wait for every sub-commit before surfacing a failure, so no
            # write is still in flight when the caller sees the exception.
            errors = [f.exception() for f in futures]
            for err in errors:
                if err is not None:
                    raise err
        else:
            for i in touched:
                self._commit_shard(i, per_shard[i])
        return len(batch)

    def _commit_shard(self, shard: int, sub_batch: List[Tuple[bytes, bytes]]) -> None:
        with self._locks[shard]:
            self._shards[shard].put_many(sub_batch)

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        key = bytes(key)
        shard = self.shard_of(key)
        with self._locks[shard]:
            value = self._shards[shard].get(key)
        return None if value is None else value[_SEQ.size :]

    def delete(self, key: bytes) -> bool:
        self._check_open()
        key = bytes(key)
        shard = self.shard_of(key)
        with self._locks[shard]:
            return self._shards[shard].delete(key)

    def __contains__(self, key: bytes) -> bool:
        key = bytes(key)
        shard = self.shard_of(key)
        with self._locks[shard]:
            return key in self._shards[shard]

    def __len__(self) -> int:
        total = 0
        for i in range(self.shards):
            with self._locks[i]:
                total += len(self._shards[i])
        return total

    def keys(self) -> Iterator[bytes]:
        merged: List[bytes] = []
        for i in range(self.shards):
            with self._locks[i]:
                merged.extend(self._shards[i].keys())
        return iter(sorted(merged))

    def scan(self) -> Iterator[Tuple[bytes, bytes]]:
        """Live pairs in *global* insertion order, merged across shards.

        Each shard is replayed in its own log order, then the per-record
        sequence prefixes stitch the streams back together — the result is
        byte-identical to scanning a single KVLog fed the same puts.

        Unlike the single log's streaming scan, the merge materializes the
        live records before yielding (concurrent batches may interleave
        seqs across shards, so per-shard streams are not merge-sortable in
        general).  That is the same memory envelope as the backend replay
        this feeds, which holds every decoded assertion in its index; a
        streaming k-way merge is a follow-up if logs outgrow RAM.
        """
        self._check_open()
        merged: List[Tuple[int, bytes, bytes]] = []
        for i, shard in enumerate(self._shards):
            with self._locks[i]:
                records = list(shard.scan())
            for key, value in records:
                merged.append((_SEQ.unpack_from(value)[0], key, value[_SEQ.size :]))
        merged.sort(key=lambda item: item[0])
        # A full scan has just discovered the max live sequence; publish it
        # so the first write after a replay needs no extra pass.  (No shard
        # lock is held here, so the seq-lock -> shard-lock order used by
        # _reserve_seqs cannot deadlock against us.)
        with self._seq_lock:
            if self._next_seq is None:
                self._next_seq = (merged[-1][0] + 1) if merged else 0
        for _seq, key, value in merged:
            yield key, value

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Live pairs in sorted-key order."""
        return iter(sorted(self.scan()))

    # -- maintenance -------------------------------------------------------
    @property
    def dead_bytes(self) -> int:
        return sum(self.shard_dead_bytes())

    def shard_dead_bytes(self) -> List[int]:
        """Per-shard dead-byte counters (the scheduler's pressure signal)."""
        return [self._shards[i].dead_bytes for i in range(self.shards)]

    def compact(self, shard: Optional[int] = None) -> None:
        """Compact one shard (or, with ``shard=None``, every shard in turn).

        Per-shard compaction is the point of the partitioning: reclaiming
        one shard's dead bytes rewrites only that file while its siblings
        keep serving.  No shard lock is held here — :meth:`KVLog.compact`
        is internally two-phase, so writers to the shard being compacted
        block only for its short catch-up/swap window, not the rewrite.
        """
        self._check_open()
        targets = range(self.shards) if shard is None else (shard,)
        for i in targets:
            self._shards[i].compact()

    # -- reclaim protocol (see repro.store.maintenance) ---------------------
    def reclaim_candidates(self) -> List[tuple]:
        """One ``(shard, dead_ratio, reclaimable_bytes, cost_bytes)`` per shard."""
        out: List[tuple] = []
        for i in range(self.shards):
            size = self._shards[i].file_size()
            dead = self._shards[i].dead_bytes
            if size > 0:
                out.append((i, dead / size, dead, size))
        return out

    def reclaim(self, target: int) -> int:
        """Compact one shard; returns the bytes given back to the FS."""
        return self._shards[target].reclaim()

    def file_size(self) -> int:
        return sum(self.shard_file_sizes())

    def shard_file_sizes(self) -> List[int]:
        return [self._shards[i].file_size() for i in range(self.shards)]
