"""Figure 5: execution comparison and semantic validity vs store size.

Regenerates both curves: the provenance store is populated with an
increasing number of interaction records; use case 1 (script
categorisation + comparison) and use case 2 (semantic validation) run over
the full store through the bus, whose virtual clock charges the calibrated
per-call latencies.

Shape criteria from the paper:

* both curves linear in the number of interaction records (r > 0.99),
* the semantic-validity slope is ~11x the script-comparison slope
  (1 store call vs 1 store + 10 registry calls per interaction record).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.app.experiment import Experiment, ExperimentConfig
from repro.core.client import ProvenanceQueryClient
from repro.figures.stats import LinearFit, format_table, linear_fit
from repro.figures.synthstore import populate_store
from repro.registry.client import RegistryClient
from repro.usecases.comparison import categorise_scripts
from repro.usecases.semantic import validate_session

#: The paper's x axis reaches 4000 interaction records; the default sweep
#: keeps harness runtime modest while spanning the same shape.
DEFAULT_SIZES = (250, 500, 1000, 1500, 2000)


@dataclass(frozen=True)
class Fig5Point:
    interaction_records: int
    script_comparison_s: float
    semantic_validity_s: float
    script_store_calls: int
    semantic_store_calls: int
    semantic_registry_calls: int


@dataclass
class Fig5Series:
    points: List[Fig5Point] = field(default_factory=list)

    def xs(self) -> List[int]:
        return [p.interaction_records for p in self.points]

    def script_fit(self) -> LinearFit:
        return linear_fit(self.xs(), [p.script_comparison_s for p in self.points])

    def semantic_fit(self) -> LinearFit:
        return linear_fit(self.xs(), [p.semantic_validity_s for p in self.points])

    def slope_ratio(self) -> float:
        """semantic slope / script slope — the paper reports ~11x."""
        return self.semantic_fit().slope / self.script_fit().slope


def measure_point(
    n_records: int,
    store_latency_s: float = 0.015,
    registry_latency_s: float = 0.015,
    session_size: int = 50,
) -> Fig5Point:
    """Populate a store with ``n_records`` and time both use cases."""
    exp = Experiment(
        ExperimentConfig(
            store_latency_s=store_latency_s,
            registry_latency_s=registry_latency_s,
        )
    )
    spec = populate_store(
        exp.backend,
        n_records,
        script_for=exp.script_for,
        session_size=session_size,
    )

    # Use case 1: script comparison over the whole store.
    script_client = ProvenanceQueryClient(exp.bus, client_endpoint="uc1-client")
    start = exp.bus.clock.now
    categorisation = categorise_scripts(script_client)
    script_elapsed = exp.bus.clock.now - start
    assert categorisation.interactions_scanned == spec.interaction_records

    # Use case 2: semantic validation of every session in the store.
    semantic_store_client = ProvenanceQueryClient(exp.bus, client_endpoint="uc2-store")
    registry_client = RegistryClient(exp.bus, client_endpoint="uc2-registry")
    ontology = registry_client.get_ontology()  # fetched once, constant cost
    start = exp.bus.clock.now
    semantic_registry_calls = 0
    for session in spec.sessions:
        report = validate_session(
            semantic_store_client, registry_client, session, ontology=ontology
        )
        semantic_registry_calls += report.registry_calls
    semantic_elapsed = exp.bus.clock.now - start

    return Fig5Point(
        interaction_records=spec.interaction_records,
        script_comparison_s=script_elapsed,
        semantic_validity_s=semantic_elapsed,
        script_store_calls=script_client.calls,
        semantic_store_calls=semantic_store_client.calls,
        semantic_registry_calls=semantic_registry_calls,
    )


def run_fig5(
    sizes: Sequence[int] = DEFAULT_SIZES,
    store_latency_s: float = 0.015,
    registry_latency_s: float = 0.015,
) -> Fig5Series:
    series = Fig5Series()
    for n in sizes:
        series.points.append(
            measure_point(
                n,
                store_latency_s=store_latency_s,
                registry_latency_s=registry_latency_s,
            )
        )
    return series


def fig5_table(series: Fig5Series) -> str:
    headers = [
        "interaction records",
        "script comparison (ms)",
        "semantic validity (ms)",
    ]
    rows = [
        [
            p.interaction_records,
            f"{p.script_comparison_s * 1000:.0f}",
            f"{p.semantic_validity_s * 1000:.0f}",
        ]
        for p in series.points
    ]
    script_fit = series.script_fit()
    semantic_fit = series.semantic_fit()
    lines = [
        format_table(headers, rows),
        "",
        f"script comparison:  r={script_fit.correlation:.5f}  "
        f"slope={script_fit.slope * 1000:.2f} ms/record",
        f"semantic validity:  r={semantic_fit.correlation:.5f}  "
        f"slope={semantic_fit.slope * 1000:.2f} ms/record",
        f"slope ratio: {series.slope_ratio():.2f}x (paper: ~11x)",
    ]
    return "\n".join(lines)
