"""The compressibility workflow engine (Figures 1 and 2 of the paper).

Drives the service actors over the bus:

1. **Collate Sample** — assemble a ~``sample_bytes`` sample from the
   database,
2. **Encode by Groups** — recode it with the configured reduced alphabet,
3. the *measure chain* for the unshuffled sample and for each of ``n``
   random permutations: **Compression → Measure Size → Collate Sizes**
   (three interactions per permutation, hence the paper's six p-assertion
   records per permutation at two views each),
4. **Collate Sizes table → Average** — the compressibility result.

Every call carries a ``thread`` header (the measure chain of permutation
``i`` is thread ``<session>/perm-i``) and a ``caused-by`` header naming the
message ids whose data fed it, from which the trace builder reconstructs
exact lineage.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bio.analysis import SizesTable
from repro.app.services import CollateSizesService, sha1_digest
from repro.soa.bus import MessageBus
from repro.soa.xmldoc import XmlElement

_run_counter = itertools.count(1)


@dataclass
class MeasuredChain:
    """Message ids of one permutation's measure chain (for lineage tests)."""

    label: str
    compress_id: str
    measure_id: str
    collate_id: str


@dataclass
class WorkflowRunResult:
    """Everything one workflow run produced."""

    session_id: str
    run_id: str
    sample_accessions: List[str]
    sample_digest: str
    encoded_digest: str
    sizes_table: SizesTable
    #: codec -> attributes of the <result> element (compressibility, std, ...)
    results: Dict[str, Dict[str, str]]
    chains: List[MeasuredChain] = field(default_factory=list)
    message_ids: Dict[str, str] = field(default_factory=dict)
    calls: int = 0

    def compressibility(self, codec: str) -> float:
        return float(self.results[codec]["compressibility"])

    def compressibility_std(self, codec: str) -> float:
        return float(self.results[codec]["std"])


class CompressibilityWorkflow:
    """Client-side engine executing the experiment over the bus."""

    def __init__(
        self,
        bus: MessageBus,
        engine_endpoint: str = "workflow-engine",
        collate_endpoint: str = "collate-sample",
        encode_endpoint: str = "encode-by-groups",
        shuffle_endpoint: str = "shuffle",
        compress_endpoints: Sequence[str] = ("compress-gz-like",),
        measure_endpoint: str = "measure-size",
        sizes_endpoint: str = "collate-sizes",
        average_endpoint: str = "average",
    ):
        self.bus = bus
        self.engine = engine_endpoint
        self.collate_endpoint = collate_endpoint
        self.encode_endpoint = encode_endpoint
        self.shuffle_endpoint = shuffle_endpoint
        self.compress_endpoints = list(compress_endpoints)
        self.measure_endpoint = measure_endpoint
        self.sizes_endpoint = sizes_endpoint
        self.average_endpoint = average_endpoint

    # -- the run ------------------------------------------------------------
    def run(
        self,
        session_id: str,
        sample_bytes: int = 5000,
        n_permutations: int = 3,
        release: Optional[int] = None,
        organism: Optional[str] = None,
        accessions: Optional[Sequence[str]] = None,
        sample_source_endpoint: Optional[str] = None,
        sample_source_operation: str = "collate",
    ) -> WorkflowRunResult:
        run_id = f"{session_id}/run-{next(_run_counter)}"
        message_ids: Dict[str, str] = {}
        calls_before = self.bus.calls

        # --- Collate Sample ---------------------------------------------
        source_endpoint = sample_source_endpoint or self.collate_endpoint
        request = XmlElement(
            "collate-request", attrs={"target-bytes": str(sample_bytes)}
        )
        if release is not None:
            request.attrs["release"] = str(release)
        if organism:
            request.attrs["organism"] = organism
        if accessions:
            for acc in accessions:
                request.element("accession", acc)
        sample_el, collate_id = self._call_tracked(
            source_endpoint,
            sample_source_operation,
            request,
            session_id,
            thread=f"{session_id}/main",
        )
        message_ids["collate"] = collate_id
        sample_text = sample_el.text
        sample_accessions = [
            a for a in sample_el.attrs.get("accessions", "").split(",") if a
        ]

        # --- Encode by Groups ---------------------------------------------
        encode_req = XmlElement(
            "encode-request", attrs={"digest": sha1_digest(sample_text.encode())}
        )
        encode_req.add(sample_text)
        encoded_el, encode_id = self._call_tracked(
            self.encode_endpoint,
            "encode",
            encode_req,
            session_id,
            thread=f"{session_id}/main",
            caused_by=[collate_id],
        )
        message_ids["encode"] = encode_id
        encoded_text = encoded_el.text

        # --- Measure chains --------------------------------------------
        chains: List[MeasuredChain] = []
        # The unshuffled sample first...
        for codec_endpoint in self.compress_endpoints:
            chains.append(
                self._measure_chain(
                    session_id,
                    run_id,
                    label="sample",
                    data=encoded_text,
                    codec_endpoint=codec_endpoint,
                    thread=f"{session_id}/sample",
                    caused_by=[encode_id],
                )
            )
        # ... then each permutation.
        for index in range(n_permutations):
            shuffle_req = XmlElement(
                "shuffle-request",
                attrs={
                    "index": str(index),
                    "digest": sha1_digest(encoded_text.encode()),
                },
            )
            shuffle_req.add(encoded_text)
            perm_el, shuffle_id = self._call_tracked(
                self.shuffle_endpoint,
                "shuffle",
                shuffle_req,
                session_id,
                thread=f"{session_id}/perm-{index}",
                caused_by=[encode_id],
            )
            for codec_endpoint in self.compress_endpoints:
                chains.append(
                    self._measure_chain(
                        session_id,
                        run_id,
                        label=f"perm-{index}",
                        data=perm_el.text,
                        codec_endpoint=codec_endpoint,
                        thread=f"{session_id}/perm-{index}",
                        caused_by=[shuffle_id],
                    )
                )

        # --- Collate Sizes table -> Average --------------------------------
        table_el, table_id = self._call_tracked(
            self.sizes_endpoint,
            "table",
            XmlElement("table-request", attrs={"run": run_id}),
            session_id,
            thread=f"{session_id}/main",
            caused_by=[c.collate_id for c in chains],
        )
        message_ids["table"] = table_id
        results_el, average_id = self._call_tracked(
            self.average_endpoint,
            "average",
            table_el,
            session_id,
            thread=f"{session_id}/main",
            caused_by=[table_id],
        )
        message_ids["average"] = average_id

        results = {
            el.attrs["codec"]: dict(el.attrs)
            for el in results_el.find_all("result")
        }
        return WorkflowRunResult(
            session_id=session_id,
            run_id=run_id,
            sample_accessions=sample_accessions,
            sample_digest=sample_el.attrs.get("digest", ""),
            encoded_digest=encoded_el.attrs.get("digest", ""),
            sizes_table=CollateSizesService.table_from_xml(table_el),
            results=results,
            chains=chains,
            message_ids=message_ids,
            calls=self.bus.calls - calls_before,
        )

    # -- internals -----------------------------------------------------------
    def _call_tracked(
        self,
        target: str,
        operation: str,
        payload: XmlElement,
        session: str,
        thread: Optional[str] = None,
        caused_by: Sequence[str] = (),
    ) -> tuple:
        headers = {"session": session}
        if thread:
            headers["thread"] = thread
        if caused_by:
            headers["caused-by"] = ",".join(c for c in caused_by if c)
        # Capture the id the bus will assign by observing the interceptor
        # path: ids are strictly sequential, so snapshot-then-call is exact.
        response = None
        captured: Dict[str, str] = {}

        def capture(call) -> None:
            captured["id"] = call.message_id

        self.bus.add_interceptor(capture)
        try:
            response = self.bus.call(
                source=self.engine,
                target=target,
                operation=operation,
                payload=payload,
                extra_headers=headers,
            )
        finally:
            self.bus.remove_interceptor(capture)
        return response, captured["id"]

    def _measure_chain(
        self,
        session: str,
        run_id: str,
        label: str,
        data: str,
        codec_endpoint: str,
        thread: str,
        caused_by: Sequence[str],
    ) -> MeasuredChain:
        """Figure 2: Compression -> Measure Size -> Collate Sizes."""
        compress_req = XmlElement(
            "compress-request", attrs={"digest": sha1_digest(data.encode())}
        )
        compress_req.add(data)
        compressed_el, compress_id = self._call_tracked(
            codec_endpoint, "compress", compress_req, session, thread, caused_by
        )
        measure_req = XmlElement(
            "measure-request",
            attrs={
                "encoding": compressed_el.attrs["encoding"],
                "digest": compressed_el.attrs["digest"],
            },
        )
        measure_req.add(compressed_el.text)
        size_el, measure_id = self._call_tracked(
            self.measure_endpoint,
            "measure",
            measure_req,
            session,
            thread,
            caused_by=[compress_id],
        )
        entry = XmlElement(
            "size-entry",
            attrs={
                "run": run_id,
                "label": label,
                "codec": compressed_el.attrs["codec"],
                "original": compressed_el.attrs["original-size"],
                "compressed": size_el.attrs["bytes"],
            },
        )
        _, collate_id = self._call_tracked(
            self.sizes_endpoint,
            "add_size",
            entry,
            session,
            thread,
            caused_by=[measure_id],
        )
        return MeasuredChain(
            label=label,
            compress_id=compress_id,
            measure_id=measure_id,
            collate_id=collate_id,
        )
