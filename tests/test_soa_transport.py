"""Wire-protocol tests for the Envelope socket transport.

The contract under test (see :mod:`repro.soa.transport`): one frame is one
envelope; replies correlate by ``<message-id>-r``; service faults travel as
data (``status: fault``) and re-raise as :class:`Fault` exactly like the
in-process bus; *every* transport failure — refused dial, reset, EOF,
protocol violation — surfaces as ``Fault("worker-unavailable", ...)``; a
malformed frame costs the sender its connection and nobody else anything.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.soa.bus import MessageBus
from repro.soa.actor import Actor
from repro.soa.envelope import Envelope, Fault
from repro.soa.transport import (
    FRAME_MAGIC,
    MAX_FRAME_BYTES,
    ConnectionClosed,
    EnvelopeClient,
    EnvelopeServer,
    RemoteEndpoint,
    TransportError,
    _HEADER,
    connect_to,
    recv_frame,
    send_frame,
)
from repro.soa.xmldoc import XmlElement


class WireTestActor(Actor):
    """Echo / fault / crash / sleep — one op per failure mode under test."""

    def __init__(self, endpoint: str = "wire"):
        super().__init__(endpoint, description="wire-protocol test actor")

    def op_echo(self, payload: XmlElement) -> XmlElement:
        return XmlElement("pong", dict(payload.attrs))

    def op_blob(self, payload: XmlElement) -> XmlElement:
        out = XmlElement("blob-back")
        out.element("data", payload.require("data").text)
        return out

    def op_fail(self, payload: XmlElement) -> XmlElement:
        raise Fault("boom", "declared service failure")

    def op_crash(self, payload: XmlElement) -> XmlElement:
        raise RuntimeError("kapow")

    def op_slow(self, payload: XmlElement) -> XmlElement:
        time.sleep(float(payload.attrs["delay"]))
        return XmlElement("slept")


@pytest.fixture
def served(tmp_path):
    actor = WireTestActor()
    server = EnvelopeServer(
        actor, ("unix", str(tmp_path / "wire.sock")), poll_interval_s=0.05
    )
    address = server.start()
    client = EnvelopeClient(address)
    yield server, client, actor
    client.close()
    server.stop()


# -- framing ------------------------------------------------------------------

class TestFraming:
    def test_roundtrip_various_sizes(self):
        left, right = socket.socketpair()
        try:
            for payload in (b"", b"x", b"hello frame", b"\x00\xff" * 500):
                send_frame(left, payload)
                assert recv_frame(right) == payload
        finally:
            left.close()
            right.close()

    def test_large_frame_crosses_recv_buffers(self):
        # ~2 MiB forces many 64 KiB recv() calls on the reading side; a
        # threaded writer avoids deadlocking on the socketpair's buffers.
        payload = b"ACGT" * (2 * 1024 * 1024 // 4)
        left, right = socket.socketpair()
        try:
            writer = threading.Thread(target=send_frame, args=(left, payload))
            writer.start()
            received = recv_frame(right)
            writer.join()
            assert received == payload
        finally:
            left.close()
            right.close()

    def test_send_refuses_oversized_frame(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(TransportError, match="refusing to send"):
                send_frame(left, b"\x00" * (MAX_FRAME_BYTES + 1))
        finally:
            left.close()
            right.close()

    def test_bad_magic_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"NOPE" + b"\x00\x00\x00\x04data")
            with pytest.raises(TransportError, match="bad frame magic"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_oversized_length_rejected_before_buffering(self):
        left, right = socket.socketpair()
        try:
            # Claims a 4 GiB-ish payload; the reader must refuse from the
            # header alone instead of trying to buffer it.
            left.sendall(_HEADER.pack(FRAME_MAGIC, MAX_FRAME_BYTES + 1))
            with pytest.raises(TransportError, match="exceeds"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame_is_connection_closed(self):
        left, right = socket.socketpair()
        try:
            left.sendall(_HEADER.pack(FRAME_MAGIC, 100) + b"only ten b")
            left.close()
            with pytest.raises(ConnectionClosed):
                recv_frame(right)
        finally:
            right.close()


# -- request/reply over a live server ----------------------------------------

class TestRequestReply:
    def test_unix_roundtrip(self, served):
        server, client, _actor = served
        reply = client.call(
            source="t", target="wire", operation="echo",
            payload=XmlElement("ping", {"n": "42"}),
        )
        assert reply.name == "pong"
        assert reply.attrs["n"] == "42"
        assert server.requests_served == 1

    def test_tcp_port_zero_resolves_and_serves(self):
        actor = WireTestActor()
        server = EnvelopeServer(
            actor, ("tcp", "127.0.0.1", 0), poll_interval_s=0.05
        )
        address = server.start()
        try:
            assert address[0] == "tcp" and address[2] != 0
            client = EnvelopeClient(address)
            reply = client.call(
                source="t", target="wire", operation="echo",
                payload=XmlElement("ping", {"n": "7"}),
            )
            assert reply.attrs["n"] == "7"
            client.close()
        finally:
            server.stop()

    def test_large_payload_roundtrip(self, served):
        _server, client, _actor = served
        # Well past any single recv() buffer on both directions.
        text = "ACGT" * (2 * 1024 * 1024 // 4)
        payload = XmlElement("blob")
        payload.element("data", text)
        reply = client.call(
            source="t", target="wire", operation="blob", payload=payload
        )
        assert reply.require("data").text == text

    def test_concurrent_interleaved_requests_correlate(self, served):
        server, client, _actor = served
        workers, calls_each = 8, 10
        mismatches = []
        errors = []
        ready = threading.Barrier(workers)

        def run(worker: int) -> None:
            ready.wait()
            try:
                for i in range(calls_each):
                    tag = f"{worker}:{i}"
                    reply = client.call(
                        source=f"w{worker}", target="wire", operation="echo",
                        payload=XmlElement("ping", {"tag": tag}),
                    )
                    if reply.attrs["tag"] != tag:
                        mismatches.append((tag, reply.attrs["tag"]))
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(w,)) for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert not mismatches
        assert server.requests_served == workers * calls_each

    def test_reply_reuses_message_id_with_r_suffix(self, served):
        # Speak the wire protocol by hand to pin the header contract.
        server, _client, _actor = served
        sock = connect_to(server.address)
        try:
            request = Envelope(
                headers={
                    "source": "hand",
                    "target": "wire",
                    "operation": "echo",
                    "message-id": "hand-00000001",
                },
                body=XmlElement("ping", {"n": "1"}),
            )
            send_frame(sock, request.serialize().encode("utf-8"))
            reply = Envelope.deserialize(recv_frame(sock).decode("utf-8"))
            assert reply.headers["message-id"] == "hand-00000001-r"
            assert reply.headers["operation"] == "echo-response"
            assert reply.headers["status"] == "ok"
            assert reply.headers["source"] == "wire"
            assert reply.headers["target"] == "hand"
        finally:
            sock.close()


# -- faults -------------------------------------------------------------------

class TestFaults:
    def test_declared_fault_reraises_and_connection_survives(self, served):
        _server, client, _actor = served
        with pytest.raises(Fault) as excinfo:
            client.call(
                source="t", target="wire", operation="fail",
                payload=XmlElement("x"),
            )
        assert excinfo.value.code == "boom"
        assert "declared service failure" in excinfo.value.reason
        # Faults are data, not connection state: the next call reuses the
        # pooled connection and succeeds.
        reply = client.call(
            source="t", target="wire", operation="echo",
            payload=XmlElement("ping", {"n": "after"}),
        )
        assert reply.attrs["n"] == "after"

    def test_unexpected_exception_becomes_internal_error(self, served):
        _server, client, _actor = served
        with pytest.raises(Fault) as excinfo:
            client.call(
                source="t", target="wire", operation="crash",
                payload=XmlElement("x"),
            )
        assert excinfo.value.code == "internal-error"
        assert "RuntimeError" in excinfo.value.reason
        assert "kapow" in excinfo.value.reason

    def test_wrong_target_is_no_such_endpoint(self, served):
        _server, client, _actor = served
        with pytest.raises(Fault) as excinfo:
            client.call(
                source="t", target="somebody-else", operation="echo",
                payload=XmlElement("ping"),
            )
        assert excinfo.value.code == "no-such-endpoint"

    def test_unknown_operation_is_a_fault_not_a_hangup(self, served):
        # Actor.handle raises OperationError (not a Fault) — the server
        # must map it to internal-error instead of killing the connection.
        _server, client, _actor = served
        with pytest.raises(Fault) as excinfo:
            client.call(
                source="t", target="wire", operation="no-such-op",
                payload=XmlElement("x"),
            )
        assert excinfo.value.code == "internal-error"

    def test_dial_with_nothing_listening(self, tmp_path):
        client = EnvelopeClient(("unix", str(tmp_path / "nobody.sock")))
        with pytest.raises(Fault) as excinfo:
            client.call(
                source="t", target="wire", operation="echo",
                payload=XmlElement("ping"),
            )
        assert excinfo.value.code == "worker-unavailable"

    def test_closed_client_refuses_calls(self, served):
        _server, client, _actor = served
        client.close()
        with pytest.raises(Fault) as excinfo:
            client.call(
                source="t", target="wire", operation="echo",
                payload=XmlElement("ping"),
            )
        assert excinfo.value.code == "worker-unavailable"

    def test_correlation_mismatch_is_worker_unavailable(self, tmp_path):
        # A rogue server that replies with the wrong message id: the client
        # must not hand that reply to the caller as if it matched.
        path = str(tmp_path / "rogue.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(1)

        def rogue() -> None:
            conn, _ = listener.accept()
            recv_frame(conn)
            reply = Envelope(
                headers={
                    "source": "rogue",
                    "target": "t",
                    "operation": "echo-response",
                    "message-id": "someone-elses-id-r",
                    "status": "ok",
                },
                body=XmlElement("pong"),
            )
            send_frame(conn, reply.serialize().encode("utf-8"))
            conn.close()

        thread = threading.Thread(target=rogue)
        thread.start()
        try:
            client = EnvelopeClient(("unix", path))
            with pytest.raises(Fault) as excinfo:
                client.call(
                    source="t", target="rogue", operation="echo",
                    payload=XmlElement("ping"),
                )
            assert excinfo.value.code == "worker-unavailable"
            assert "correlation" in excinfo.value.reason
            client.close()
        finally:
            thread.join()
            listener.close()


# -- malformed frames ---------------------------------------------------------

class TestMalformedFrames:
    def _await_rejections(self, server: EnvelopeServer, n: int) -> None:
        deadline = time.monotonic() + 5.0
        while server.frames_rejected < n and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.frames_rejected >= n

    def test_garbage_closes_that_connection_only(self, served):
        server, client, _actor = served
        rogue = connect_to(server.address)
        try:
            rogue.sendall(b"GARBAGE!")  # 8 bytes: read as a frame header
            self._await_rejections(server, 1)
            # The offender's connection is gone...
            rogue.settimeout(5.0)
            assert rogue.recv(1) == b""
        finally:
            rogue.close()
        # ...while a well-formed client is entirely unaffected.
        reply = client.call(
            source="t", target="wire", operation="echo",
            payload=XmlElement("ping", {"n": "ok"}),
        )
        assert reply.attrs["n"] == "ok"

    def test_unparsable_envelope_closes_connection(self, served):
        server, client, _actor = served
        for junk in (b"not xml at all", b"<pong/>"):
            rogue = connect_to(server.address)
            try:
                before = server.frames_rejected
                send_frame(rogue, junk)
                self._await_rejections(server, before + 1)
                rogue.settimeout(5.0)
                assert rogue.recv(1) == b""
            finally:
                rogue.close()
        assert client.call(
            source="t", target="wire", operation="echo",
            payload=XmlElement("ping", {"n": "still"}),
        ).attrs["n"] == "still"


# -- shutdown -----------------------------------------------------------------

class TestShutdown:
    def test_stop_drains_in_flight_request(self, served):
        server, client, _actor = served
        result = {}

        def slow_call() -> None:
            result["reply"] = client.call(
                source="t", target="wire", operation="slow",
                payload=XmlElement("nap", {"delay": "0.4"}),
            )

        thread = threading.Thread(target=slow_call)
        thread.start()
        time.sleep(0.1)  # let the request reach the actor
        server.stop(drain_s=5.0)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result["reply"].name == "slept"

    def test_stop_is_idempotent_and_refuses_new_connections(self, served):
        server, client, _actor = served
        server.stop()
        server.stop()
        fresh = EnvelopeClient(server.address)
        with pytest.raises(Fault) as excinfo:
            fresh.call(
                source="t", target="wire", operation="echo",
                payload=XmlElement("ping"),
            )
        assert excinfo.value.code == "worker-unavailable"
        fresh.close()


# -- deadlines, retry, and reconnect ------------------------------------------

class TestDeadlinesAndRetry:
    def test_admin_ops_get_fast_default_deadline(self, served):
        from repro.soa.transport import ADMIN_TIMEOUT_S, DEFAULT_TIMEOUT_S

        _server, client, _actor = served
        assert client.op_timeouts["ping"] == ADMIN_TIMEOUT_S
        assert client.op_timeouts["admin"] == ADMIN_TIMEOUT_S
        assert ADMIN_TIMEOUT_S <= 2.0 < DEFAULT_TIMEOUT_S
        assert client.timeout_s == DEFAULT_TIMEOUT_S

    def test_unavailable_fault_names_worker_address_attempts(self, tmp_path):
        from repro.soa.transport import RetryPolicy

        client = EnvelopeClient(
            ("unix", str(tmp_path / "nobody.sock")),
            peer_name="store-07",
            retry=RetryPolicy(attempts=3, backoff_s=0.01),
        )
        with pytest.raises(Fault) as excinfo:
            client.call(
                source="t", target="wire", operation="query",
                payload=XmlElement("q"),
            )
        detail = excinfo.value.detail
        assert detail["worker"] == "store-07"
        assert "nobody.sock" in detail["address"]
        assert detail["attempts"] == "3"  # the idempotent budget, spent
        client.close()

    def test_non_idempotent_op_is_never_retried(self, tmp_path):
        client = EnvelopeClient(
            ("unix", str(tmp_path / "nobody.sock")), peer_name="store-07"
        )
        with pytest.raises(Fault) as excinfo:
            client.call(
                source="t", target="wire", operation="record",
                payload=XmlElement("r"),
            )
        assert excinfo.value.detail["attempts"] == "1"
        assert client.retries == 0
        client.close()

    def test_retry_exhaustion_carries_final_underlying_cause(self, tmp_path):
        from repro.soa.transport import RetryPolicy

        client = EnvelopeClient(
            ("unix", str(tmp_path / "nobody.sock")),
            retry=RetryPolicy(attempts=2, backoff_s=0.01),
        )
        with pytest.raises(Fault) as excinfo:
            client.call(
                source="t", target="wire", operation="ping",
                payload=XmlElement("ping"),
            )
        cause = excinfo.value.__cause__
        assert isinstance(cause, OSError)
        assert type(cause).__name__ in excinfo.value.reason
        client.close()

    def test_detail_payload_roundtrips_through_fault_xml(self):
        fault = Fault(
            "worker-unavailable",
            "gone",
            detail={"worker": "store-03", "attempts": "2", "address": "x"},
        )
        parsed = Fault.from_xml(fault.to_xml())
        assert parsed.detail == fault.detail
        assert parsed.code == fault.code

    def test_pool_survives_server_restart_with_one_reconnect(self, tmp_path):
        import os

        path = str(tmp_path / "restart.sock")
        actor = WireTestActor()
        server = EnvelopeServer(actor, ("unix", path), poll_interval_s=0.05)
        server.start()
        client = EnvelopeClient(("unix", path))
        try:
            # Prime the pool with a live connection.
            reply = client.call(
                source="t", target="wire", operation="echo",
                payload=XmlElement("ping", {"n": "before"}),
            )
            assert reply.attrs["n"] == "before"
            server.stop()
            if os.path.exists(path):
                os.unlink(path)
            server = EnvelopeServer(
                WireTestActor(), ("unix", path), poll_interval_s=0.05
            )
            server.start()
            # The pooled socket now points at the dead process.  Even a
            # non-idempotent op must transparently redial once: the frame
            # never reached the new worker, so resending is safe.
            reply = client.call(
                source="t", target="wire", operation="echo",
                payload=XmlElement("ping", {"n": "after"}),
                idempotent=False,
            )
            assert reply.attrs["n"] == "after"
            assert client.reconnects == 1
        finally:
            client.close()
            server.stop()


# -- bus integration ----------------------------------------------------------

class TestRemoteEndpoint:
    def test_bus_clients_reach_socket_served_actor(self, served):
        _server, client, _actor = served
        bus = MessageBus()
        proxy = RemoteEndpoint(client, "wire", operations=("echo", "fail"))
        bus.register(proxy)
        assert proxy.operations() == ["echo", "fail"]
        reply = bus.call(
            source="bus-user", target="wire", operation="echo",
            payload=XmlElement("ping", {"n": "via-bus"}),
        )
        assert reply.attrs["n"] == "via-bus"
        # Remote faults propagate through the bus exactly like local ones.
        with pytest.raises(Fault) as excinfo:
            bus.call(
                source="bus-user", target="wire", operation="fail",
                payload=XmlElement("x"),
            )
        assert excinfo.value.code == "boom"
