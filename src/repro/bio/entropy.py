"""Entropy estimation for sequences.

Section 2 grounds compressibility in information theory: "Actual
compression of a sequence can only yield a lower bound on its
compressibility" (citing Lanctot/Li/Yang's DNA entropy estimation).  This
module provides the complementary statistical estimators:

* :func:`shannon_entropy` — entropy of an empirical distribution,
* :func:`block_entropy` — entropy of the k-mer distribution,
* :func:`markov_entropy_rate` — conditional entropy H(X_k | X_0..X_{k-1}),
  the order-k Markov estimate of the entropy rate,
* :func:`compression_entropy_estimate` — bits/symbol achieved by a codec,
  an upper bound on the true entropy rate for stationary sources.

Together they let tests and analyses cross-check the compressors: a good
codec's bits/symbol should land between the Markov entropy-rate estimate
and the iid (order-0) entropy.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict

from repro.compress.api import get_compressor


def shannon_entropy(counts: Dict[object, int]) -> float:
    """Entropy (bits) of the empirical distribution given by ``counts``."""
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("counts must sum to a positive total")
    entropy = 0.0
    for count in counts.values():
        if count < 0:
            raise ValueError("counts must be non-negative")
        if count:
            p = count / total
            entropy -= p * math.log2(p)
    return entropy


def symbol_entropy(sequence: str) -> float:
    """Order-0 (iid) entropy of a sequence, bits per symbol."""
    if not sequence:
        raise ValueError("empty sequence")
    return shannon_entropy(Counter(sequence))


def block_entropy(sequence: str, k: int) -> float:
    """Entropy of the distribution of (overlapping) k-mers, in bits."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if len(sequence) < k:
        raise ValueError(f"sequence shorter than k={k}")
    blocks = Counter(sequence[i : i + k] for i in range(len(sequence) - k + 1))
    return shannon_entropy(blocks)


def markov_entropy_rate(sequence: str, k: int = 1) -> float:
    """Order-k conditional entropy H(X | context of length k), bits/symbol.

    Computed as the context-weighted average of next-symbol entropies; for
    k=0 this equals :func:`symbol_entropy`.  A consistent estimator of the
    entropy rate for order-k Markov sources (given enough data).
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    if k == 0:
        return symbol_entropy(sequence)
    if len(sequence) <= k:
        raise ValueError(f"sequence too short for context length {k}")
    contexts: Dict[str, Counter] = {}
    for i in range(len(sequence) - k):
        context = sequence[i : i + k]
        contexts.setdefault(context, Counter())[sequence[i + k]] += 1
    total = sum(sum(c.values()) for c in contexts.values())
    rate = 0.0
    for counter in contexts.values():
        weight = sum(counter.values()) / total
        rate += weight * shannon_entropy(counter)
    return rate


def compression_entropy_estimate(sequence: str, codec_name: str = "ppm-like") -> float:
    """Bits per symbol a codec achieves — an upper bound on the entropy rate.

    "In general, no practical compression method can discover all the
    structure in a sequence", so this estimate is always >= the source's
    true entropy rate (up to format overhead on short inputs).
    """
    if not sequence:
        raise ValueError("empty sequence")
    codec = get_compressor(codec_name)
    compressed = codec.compressed_size(sequence.encode("utf-8"))
    return 8.0 * compressed / len(sequence)


def redundancy(sequence: str, k: int = 2) -> float:
    """Fraction of the order-0 entropy explained by order-k context.

    0 means no context structure (iid); values toward 1 mean strongly
    predictable sequences — the quantity group encoding tries to expose.
    """
    h0 = symbol_entropy(sequence)
    if h0 == 0.0:
        return 0.0
    hk = markov_entropy_rate(sequence, k)
    return max(0.0, 1.0 - hk / h0)
