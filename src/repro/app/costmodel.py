"""Testbed-calibrated cost model for the Figure 4 simulation.

The paper's absolute numbers come from its specific testbed (P4 2.8 GHz
under VMWare, PReServ on a second PC over 100 Mb ethernet).  We substitute
a cost model calibrated to the facts the paper states:

* a 1-permutation 100 KB run takes ~4.5 s, and execution time is linear in
  the number of permutations (correlation > 0.99),
* each permutation creates 6 p-assertion records,
* recording one pre-generated message in PReServ takes ~18 ms round trip
  (client and server on the same host); invoking it as a Web Service from
  inside the VM across the network is costlier,
* asynchronous recording accumulates records locally ("may require just a
  few milliseconds to prepare a record") and ships them after execution,
* asynchronous overhead stays below 10 %; synchronous is higher; recording
  extra actor-state p-assertions (script provenance) is higher still.

The model produces per-script job durations that the Condor simulator turns
into end-to-end execution times.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RecordingConfig(enum.Enum):
    """The four measured configurations of Figure 4."""

    NONE = "no-recording"
    ASYNC = "asynchronous"
    SYNC = "synchronous"
    SYNC_EXTRA = "synchronous-extra-actor-state"


@dataclass(frozen=True)
class Fig4CostModel:
    """Per-activity time constants (seconds), calibrated per the paper."""

    #: compute per permutation (100 KB sample): 1-permutation run ~= 4.5 s
    #: of which ~0.1 s is fixed workflow setup.
    per_permutation_compute_s: float = 4.4
    #: fixed workflow cost per run (Collate Sample, Encode, Average).
    workflow_fixed_s: float = 0.1
    #: p-assertion records created per permutation (paper: 6).
    records_per_permutation: int = 6
    #: additional actor-state records per permutation in SYNC_EXTRA mode
    #: (script provenance for each of the 3 measure-chain interactions,
    #: plus resource-usage state).
    extra_records_per_permutation: int = 6
    #: "a few milliseconds to prepare a record to be temporarily stored in
    #: a file" — local journalling cost per record (async).
    async_prepare_s: float = 0.004
    #: post-execution shipping cost per record, batched (async flush).
    async_ship_s: float = 0.003
    #: synchronous Web Service record call from inside the VM, per record
    #: (the 18 ms loopback round trip plus VM + network + SOAP overheads).
    sync_roundtrip_s: float = 0.060
    #: extra payload factor for actor-state-laden records in SYNC_EXTRA.
    extra_payload_factor: float = 1.15

    def with_prepackaging(self, prepare_s: float = 0.0005) -> "Fig4CostModel":
        """The §7 optimisation applied: pre-packaged templates cut the
        per-record preparation cost (measured ~30x in A5) for async mode."""
        if prepare_s < 0:
            raise ValueError("prepare cost must be non-negative")
        return Fig4CostModel(
            per_permutation_compute_s=self.per_permutation_compute_s,
            workflow_fixed_s=self.workflow_fixed_s,
            records_per_permutation=self.records_per_permutation,
            extra_records_per_permutation=self.extra_records_per_permutation,
            async_prepare_s=prepare_s,
            async_ship_s=self.async_ship_s,
            sync_roundtrip_s=self.sync_roundtrip_s,
            extra_payload_factor=self.extra_payload_factor,
        )

    def records_for(self, config: RecordingConfig, n_permutations: int) -> int:
        """Total records a run with ``n_permutations`` submits."""
        if config is RecordingConfig.NONE:
            return 0
        base = self.records_per_permutation * n_permutations
        if config is RecordingConfig.SYNC_EXTRA:
            base += self.extra_records_per_permutation * n_permutations
        return base

    def per_permutation_recording_s(self, config: RecordingConfig) -> float:
        """In-workflow (blocking) recording cost per permutation."""
        if config is RecordingConfig.NONE:
            return 0.0
        if config is RecordingConfig.ASYNC:
            return self.records_per_permutation * self.async_prepare_s
        if config is RecordingConfig.SYNC:
            return self.records_per_permutation * self.sync_roundtrip_s
        per_record = self.sync_roundtrip_s * self.extra_payload_factor
        n = self.records_per_permutation + self.extra_records_per_permutation
        return n * per_record

    def per_permutation_total_s(self, config: RecordingConfig) -> float:
        return self.per_permutation_compute_s + self.per_permutation_recording_s(config)

    def post_run_s(self, config: RecordingConfig, n_permutations: int) -> float:
        """Time spent after workflow completion (the async flush)."""
        if config is not RecordingConfig.ASYNC:
            return 0.0
        return self.records_for(config, n_permutations) * self.async_ship_s

    def script_duration_s(self, config: RecordingConfig, permutations_in_script: int) -> float:
        """Duration of one batched script job."""
        if permutations_in_script < 1:
            raise ValueError("script must contain at least one permutation")
        return permutations_in_script * self.per_permutation_total_s(config)
