"""Online migration: live rebalance, crash windows, zero acked-write loss.

The migration engine's contract, pinned down:

* a live ``add_member``/``decommission`` moves ~1/N of the keys and no
  read goes missing before, during, or after the stream;
* concurrent writers never lose an acked write, whichever of cutover or
  rollback the migration ends in (the dual-commit invariant);
* every crash window — during stream, during tail-drain, between
  cutover and ack — either rolls back cleanly or stays committed, and a
  re-run resumes via duplicate-skip;
* consolidation and counts stay correct over rebalanced (hence
  physically duplicated) fleets;
* the placement epoch poisons federated query caches at the flip.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.passertion import (
    GroupAssertion,
    GroupKind,
    InteractionKey,
    InteractionPAssertion,
    ViewKind,
)
from repro.soa.xmldoc import XmlElement
from repro.store.backends import MemoryBackend
from repro.store.distributed import (
    FederatedQueryClient,
    FederatedStoreAdapter,
    StoreRouter,
    consolidate,
    sharded_store_fleet,
)
from repro.store.migration import (
    MigrationError,
    migrate_keys,
    rebalance,
)
from repro.store.placement import PlacementSpec


def key(i: int) -> InteractionKey:
    return InteractionKey(f"mig-{i:04d}", "client", f"svc-{i % 3}")


def ipa(i: int, rev: int = 0) -> InteractionPAssertion:
    content = XmlElement("doc")
    content.add(f"message {i} rev {rev}")
    return InteractionPAssertion(
        interaction_key=key(i),
        view=ViewKind.SENDER,
        asserter="client",
        local_id=f"i-{i}-{rev}",
        operation="invoke",
        content=content,
    )


def ga(i: int, group: str = "session-A") -> GroupAssertion:
    return GroupAssertion(
        group_id=group, kind=GroupKind.SESSION, member=key(i), asserter="client"
    )


def make_router(n=3, replicas=1, mode="ring"):
    stores = {f"store-{i:02d}": MemoryBackend() for i in range(n)}
    placement = PlacementSpec(
        members=tuple(stores), replicas=replicas, mode=mode
    )
    return StoreRouter(stores, placement=placement), stores


def seed(router, n=80):
    written = []
    for i in range(n):
        assertion = ipa(i)
        router.put(assertion)
        written.append(assertion)
    return written


def assert_all_readable(router, written):
    fed = FederatedQueryClient(router)
    for assertion in written:
        stored = fed.interaction_passertions(assertion.interaction_key)
        assert any(
            s.local_id == assertion.local_id for s in stored
        ), f"lost {assertion.interaction_key}"


class TestMigrateKeys:
    """The key-scoped streaming primitive."""

    def test_streams_selected_keys_only(self):
        source, dest = MemoryBackend(), MemoryBackend()
        for i in range(20):
            source.put(ipa(i))
        wanted = [key(i) for i in range(5)]
        applied, skipped, cursor = migrate_keys(source, dest, wanted)
        assert applied == 5
        assert skipped == 0
        for i in range(5):
            assert dest.interaction_passertions(key(i))
        for i in range(5, 20):
            assert not dest.interaction_passertions(key(i))

    def test_rerun_is_free_via_duplicate_skip(self):
        source, dest = MemoryBackend(), MemoryBackend()
        for i in range(10):
            source.put(ipa(i))
        migrate_keys(source, dest)
        applied, skipped, _ = migrate_keys(source, dest)
        assert applied == 0
        assert skipped == 10

    def test_cursor_resumes_suffix_only(self):
        source, dest = MemoryBackend(), MemoryBackend()
        for i in range(6):
            source.put(ipa(i))
        _, _, cursor = migrate_keys(source, dest)
        for i in range(6, 9):
            source.put(ipa(i))
        applied, skipped, _ = migrate_keys(source, dest, after=cursor)
        assert applied == 3
        assert skipped == 0

    def test_groups_only_when_asked(self):
        source, dest = MemoryBackend(), MemoryBackend()
        source.put(ipa(0))
        source.put(ga(0))
        migrate_keys(source, dest)
        assert not dest.group_members("session-A")
        migrate_keys(source, dest, include_groups=True)
        assert dest.group_members("session-A")


class TestLiveRebalance:
    def test_add_member_moves_about_one_over_n(self):
        router, _ = make_router(4)
        written = seed(router, 200)
        report = router.add_member("store-04", MemoryBackend())
        assert 0 < report.moved_fraction < 1 / 5 + 0.12
        assert router.placement.epoch == 1
        assert "store-04" in router.store_names
        assert_all_readable(router, written)

    def test_moved_records_byte_identical_on_new_owner(self):
        router, stores = make_router(3)
        written = seed(router, 120)
        originals = {
            a.interaction_key: a.to_xml().serialize() for a in written
        }
        new_store = MemoryBackend()
        router.add_member("store-03", new_store)
        moved_here = [
            a for a in written if router.owner_of(a.interaction_key) == "store-03"
        ]
        assert moved_here, "the new member must own some keys"
        for assertion in moved_here:
            replayed = new_store.interaction_passertions(
                assertion.interaction_key
            )
            assert [r.to_xml().serialize() for r in replayed] == [
                originals[assertion.interaction_key]
            ]

    def test_new_member_receives_broadcast_groups(self):
        router, _ = make_router(3)
        seed(router, 30)
        for i in range(30):
            router.put(ga(i))
        new_store = MemoryBackend()
        router.add_member("store-03", new_store)
        assert len(new_store.group_members("session-A")) == 30

    def test_decommission_moves_only_that_members_share(self):
        router, stores = make_router(4)
        written = seed(router, 200)
        victim_share = sum(
            1 for a in written if router.owner_of(a.interaction_key) == "store-03"
        )
        report = router.decommission("store-03")
        assert "store-03" not in router.store_names
        assert report.moved_keys == pytest.approx(victim_share, abs=2)
        assert_all_readable(router, written)

    def test_decommission_below_replicas_raises_before_moving(self):
        router, _ = make_router(2, replicas=2)
        seed(router, 20)
        with pytest.raises(ValueError):
            router.decommission("store-01")
        assert router.placement.epoch == 0  # nothing began

    def test_rebalance_with_replicas_preserves_replica_sets(self):
        router, stores = make_router(3, replicas=2)
        written = seed(router, 90)
        router.add_member("store-03", MemoryBackend())
        for assertion in written:
            replica_set = router.replica_set(assertion.interaction_key)
            assert len(replica_set) == 2
            for name in replica_set:
                held = router.store(name).interaction_passertions(
                    assertion.interaction_key
                )
                assert any(h.local_id == assertion.local_id for h in held)

    def test_concurrent_writer_loses_nothing(self):
        """A writer thread hammers puts while the migration streams; every
        write it acked must be readable after the cutover."""
        router, _ = make_router(3)
        seed(router, 60)
        acked: list = []
        stop = threading.Event()

        def writer():
            i = 1000
            while not stop.is_set() and i < 1600:
                assertion = ipa(i)
                router.put(assertion)
                acked.append(assertion)
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            report = router.add_member("store-03", MemoryBackend())
        finally:
            stop.set()
            thread.join()
        assert router.placement.epoch == 1
        assert_all_readable(router, acked)
        # dual-commit: anything acked during the window is on its
        # POST-cutover replica set, not just wherever the stream left it
        for assertion in acked:
            owner = router.owner_of(assertion.interaction_key)
            held = router.store(owner).interaction_passertions(
                assertion.interaction_key
            )
            assert any(h.local_id == assertion.local_id for h in held)

    def test_writes_at_phase_boundaries_survive(self):
        """Deterministic version of the concurrent test: writes injected
        at each protocol boundary (post-begin, post-stream, post-tail) are
        exactly the dual-commit windows."""
        router, _ = make_router(3)
        seed(router, 40)
        injected: list = []
        counter = iter(range(2000, 2100))

        def on_phase(phase):
            if phase in ("begin", "stream", "tail"):
                assertion = ipa(next(counter))
                router.put(assertion)
                injected.append((phase, assertion))

        router.add_member("store-03", MemoryBackend(), on_phase=on_phase)
        assert {phase for phase, _ in injected} == {"begin", "stream", "tail"}
        for _phase, assertion in injected:
            owner = router.owner_of(assertion.interaction_key)
            held = router.store(owner).interaction_passertions(
                assertion.interaction_key
            )
            assert any(h.local_id == assertion.local_id for h in held), (
                f"write injected at {_phase!r} missing from post-cutover "
                f"owner {owner!r}"
            )


class TestCrashWindows:
    """Scripted failures at every protocol boundary."""

    @pytest.mark.parametrize("crash_at", ["begin", "stream", "tail"])
    def test_pre_cutover_crash_rolls_back(self, crash_at):
        router, _ = make_router(3)
        written = seed(router, 60)
        before = {a.interaction_key: router.owner_of(a.interaction_key) for a in written}

        def on_phase(phase):
            if phase == crash_at:
                raise RuntimeError(f"injected crash at {phase}")

        with pytest.raises(MigrationError) as err:
            router.add_member("store-03", MemoryBackend(), on_phase=on_phase)
        assert not err.value.committed
        # rolled back: membership, routing and placement all unchanged
        assert "store-03" not in router.store_names
        assert router.placement.members == tuple(sorted(before and router.store_names))
        assert not router.placement.in_transition
        for assertion in written:
            assert router.owner_of(assertion.interaction_key) == before[
                assertion.interaction_key
            ]
        assert_all_readable(router, written)
        # the abort still bumped the epoch: caches must not revalidate
        assert router.placement.epoch == 1

    def test_acked_writes_survive_rollback(self):
        """Writes acked mid-migration dual-committed to the union set, so
        the rollback (back to the CURRENT rule) still covers them."""
        router, _ = make_router(3)
        seed(router, 40)
        mid_writes: list = []

        def on_phase(phase):
            if phase == "stream":
                for i in range(3000, 3010):
                    assertion = ipa(i)
                    router.put(assertion)
                    mid_writes.append(assertion)
            if phase == "tail":
                raise RuntimeError("injected crash before cutover")

        with pytest.raises(MigrationError):
            router.add_member("store-03", MemoryBackend(), on_phase=on_phase)
        assert_all_readable(router, mid_writes)
        for assertion in mid_writes:
            owner = router.owner_of(assertion.interaction_key)
            held = router.store(owner).interaction_passertions(
                assertion.interaction_key
            )
            assert any(h.local_id == assertion.local_id for h in held)

    def test_crashed_migration_resumes_on_rerun(self):
        router, _ = make_router(3)
        written = seed(router, 60)
        armed = {"crash": True}

        def on_phase(phase):
            if phase == "stream" and armed["crash"]:
                armed["crash"] = False
                raise RuntimeError("first attempt dies mid-stream")

        with pytest.raises(MigrationError):
            router.add_member("store-03", MemoryBackend(), on_phase=on_phase)
        # second attempt re-streams (duplicate-skip eats the overlap)
        report = router.add_member(
            "store-03", MemoryBackend(), on_phase=on_phase
        )
        assert router.placement.epoch == 2  # abort bump + cutover bump
        assert "store-03" in router.store_names
        assert_all_readable(router, written)
        assert report.moved_keys > 0

    def test_crash_between_cutover_and_ack_stays_committed(self):
        """A failure AFTER commit_transition leaves the new placement in
        force — the flip is atomic and one-way, and the new member stays
        registered (deregistering it would strand its routed keys)."""
        router, _ = make_router(3)
        written = seed(router, 60)

        def on_phase(phase):
            if phase == "cutover":
                raise RuntimeError("driver dies before acking the caller")

        with pytest.raises(MigrationError) as err:
            router.add_member("store-03", MemoryBackend(), on_phase=on_phase)
        assert err.value.committed
        assert "store-03" in router.store_names
        assert "store-03" in router.placement.members
        assert router.placement.epoch == 1
        assert_all_readable(router, written)

    def test_decommission_crash_after_cutover_still_drops_member(self):
        router, _ = make_router(4)
        written = seed(router, 60)

        def on_phase(phase):
            if phase == "cutover":
                raise RuntimeError("driver dies before acking the caller")

        with pytest.raises(MigrationError) as err:
            router.decommission("store-03", on_phase=on_phase)
        assert err.value.committed
        assert "store-03" not in router.store_names
        assert "store-03" not in router.placement.members
        assert_all_readable(router, written)

    def test_migration_participants_reported_during_transition(self):
        router, _ = make_router(3)
        seed(router, 30)
        observed: dict = {}

        def on_phase(phase):
            if phase == "stream":
                observed["participants"] = router.migration_participants()

        router.add_member("store-03", MemoryBackend(), on_phase=on_phase)
        assert "store-03" in observed["participants"]
        assert set(observed["participants"]) >= {"store-00", "store-03"}
        assert router.migration_participants() == []  # idle again


class TestCachePoisoning:
    def test_epoch_invalidates_generation_vector(self):
        router, _ = make_router(3)
        seed(router, 30)
        before = router.generation_vector()
        assert before.fresh(router.generation_vector())
        router.add_member("store-03", MemoryBackend())
        after = router.generation_vector()
        assert not before.fresh(after)
        assert after.epoch == 1

    def test_vector_never_fresh_while_migrating(self):
        router, _ = make_router(3)
        seed(router, 30)
        vectors: list = []

        def on_phase(phase):
            if phase in ("begin", "stream"):
                vectors.append(router.generation_vector())

        router.add_member("store-03", MemoryBackend(), on_phase=on_phase)
        assert len(vectors) == 2
        assert not vectors[0].fresh(vectors[1])  # per-observation nonce

    def test_federated_merge_reflects_new_member_immediately(self):
        router, _ = make_router(3)
        written = seed(router, 60)
        fed = FederatedQueryClient(router)
        assert len(fed.interaction_keys()) == len(
            {a.interaction_key for a in written}
        )
        router.add_member("store-03", MemoryBackend())
        extra = ipa(9000)
        router.put(extra)
        assert extra.interaction_key in fed.interaction_keys()


class TestConsolidateAfterRebalance:
    def test_counts_survive_rebalance(self):
        """Rebalance physically duplicates moved keys on append-only
        members; the federated counts must still see each record once."""
        router, _ = make_router(3)
        written = seed(router, 90)
        fed = FederatedQueryClient(router)
        before = fed.counts()
        router.add_member("store-03", MemoryBackend())
        after = fed.counts()
        assert after == before

    def test_consolidate_dedupes_after_rebalance(self):
        router, _ = make_router(3)
        written = seed(router, 60)
        for i in range(10):
            router.put(ga(i))
        router.add_member("store-03", MemoryBackend())
        target = MemoryBackend()
        moved_p, moved_g = consolidate(router, target)
        assert moved_p == len(written)
        assert moved_g == 10
        counts = target.counts()
        assert counts.interaction_passertions == len(written)

    def test_consolidate_still_strict_on_pristine_fleet(self):
        router, stores = make_router(3, mode="modulo")
        seed(router, 20)
        # corrupt the invariant: copy a record onto a second member
        sample = stores["store-00"].all_assertions()
        donor = next(
            a for a in sample if not isinstance(a, GroupAssertion)
        )
        stores["store-01"].put(donor)
        with pytest.raises(RuntimeError, match="routing invariant"):
            consolidate(router, MemoryBackend())


class TestFleetFactoryMigration:
    """sharded_store_fleet wiring: factory-built member add/retire."""

    def test_inprocess_add_worker_and_reopen(self, tmp_path):
        root = tmp_path / "fleet"
        router = sharded_store_fleet(root, members=3, placement="ring")
        written = seed(router, 90)
        name, report = router.add_worker()
        assert name == "store-03"
        assert (root / "store-03").exists()
        assert report.moved_keys > 0
        assert_all_readable(router, written)
        router.close()
        reopened = sharded_store_fleet(root, members=4, placement="ring")
        assert_all_readable(reopened, written)
        reopened.close()

    def test_inprocess_decommission_retires_directory(self, tmp_path):
        root = tmp_path / "fleet"
        router = sharded_store_fleet(root, members=3, placement="ring")
        written = seed(router, 60)
        router.decommission("store-01")
        assert not (root / "store-01").exists()
        assert (root / "retired-store-01").exists()
        assert_all_readable(router, written)
        router.close()
        # reopen sees 2 member dirs and the recorded 2-member placement
        reopened = sharded_store_fleet(root, members=2, placement="ring")
        assert sorted(reopened.store_names) == ["store-00", "store-02"]
        assert_all_readable(reopened, written)
        reopened.close()

    def test_reopen_with_wrong_placement_mode_fails_loudly(self, tmp_path):
        from repro.store.placement import PlacementMismatchError

        root = tmp_path / "fleet"
        router = sharded_store_fleet(root, members=2, placement="ring")
        seed(router, 10)
        router.close()
        with pytest.raises(PlacementMismatchError):
            sharded_store_fleet(root, members=2, placement="modulo")

    def test_reopen_with_wrong_replicas_fails_loudly(self, tmp_path):
        from repro.store.placement import PlacementMismatchError

        root = tmp_path / "fleet"
        router = sharded_store_fleet(root, members=3, replicas=2)
        router.close()
        with pytest.raises(PlacementMismatchError):
            sharded_store_fleet(root, members=3, replicas=1)

    def test_failed_add_worker_retires_debris(self, tmp_path):
        root = tmp_path / "fleet"
        router = sharded_store_fleet(root, members=2, placement="ring")
        seed(router, 40)

        def on_phase(phase):
            if phase == "stream":
                raise RuntimeError("injected crash")

        with pytest.raises(MigrationError):
            router.add_worker(on_phase=on_phase)
        assert "store-02" not in router.store_names
        assert not (root / "store-02").exists()
        assert (root / "retired-store-02").exists()
        # retry allocates a fresh slot and succeeds
        name, _report = router.add_worker()
        assert name == "store-02"
        router.close()

    def test_legacy_modulo_fleet_unchanged(self, tmp_path):
        """The default placement is still the paper's modulo rule, and a
        modulo fleet routes identically to the pre-placement router."""
        from repro.store.distributed import _hash_to_bucket

        router = sharded_store_fleet(tmp_path / "fleet", members=3)
        names = sorted(router.store_names)
        for i in range(50):
            assert router.owner_of(key(i)) == names[_hash_to_bucket(key(i), 3)]
        router.close()


class TestProcessFleetMigration:
    """The same protocol over real worker processes (slow: ~1 s/worker)."""

    def test_live_grow_and_shrink_over_sockets(self, tmp_path):
        root = tmp_path / "fleet"
        router = sharded_store_fleet(
            root, members=2, placement="ring", transport="process"
        )
        try:
            written = seed(router, 40)
            name, report = router.add_worker()
            assert name == "store-02"
            assert report.moved_keys > 0
            assert router.placement.epoch == 1
            assert_all_readable(router, written)
            router.decommission("store-00")
            assert (root / "retired-store-00").exists()
            assert_all_readable(router, written)
        finally:
            router.close()
        # the survivors reopen (process layout == in-process layout)
        reopened = sharded_store_fleet(root, members=2, placement="ring")
        assert sorted(reopened.store_names) == ["store-01", "store-02"]
        assert_all_readable(reopened, written)
        reopened.close()

    def test_new_worker_dies_mid_stream_rolls_back_then_retry_succeeds(
        self, tmp_path
    ):
        """The crash-sim acceptance: the migration's destination worker is
        SIGKILLed while the stream runs.  The migration must roll back
        with every acked write intact, and a retry (on a fresh worker)
        must complete."""
        root = tmp_path / "fleet"
        router = sharded_store_fleet(
            root, members=2, placement="ring", transport="process"
        )
        try:
            written = seed(router, 40)
            old_members = set(router.placement.members)

            def kill_new_worker(phase):
                if phase == "begin":
                    (joining,) = (
                        set(router.migration_participants()) - old_members
                    )
                    router.fleet.kill(joining)

            with pytest.raises(MigrationError) as err:
                router.add_worker(on_phase=kill_new_worker)
            assert not err.value.committed
            # rolled back: placement and membership unchanged, epoch bumped
            assert set(router.placement.members) == old_members
            assert sorted(router.store_names) == sorted(old_members)
            assert not router.placement.in_transition
            assert router.placement.epoch == 1
            assert_all_readable(router, written)
            # the dead worker's debris is retired, its slot freed
            assert (root / "retired-store-02").exists()
            # retry on a fresh worker completes and loses nothing
            name, report = router.add_worker()
            assert name == "store-02"
            assert report.moved_keys > 0
            assert_all_readable(router, written)
        finally:
            router.close()


class TestFederatedStoreAdapter:
    def test_adapter_serves_store_interface_over_fleet(self):
        router, _ = make_router(3)
        adapter = FederatedStoreAdapter(router)
        written = []
        for i in range(30):
            assertion = ipa(i)
            adapter.put(assertion)
            written.append(assertion)
        assert adapter.put_many([ipa(i) for i in range(30, 40)]) == 10
        assert len(adapter.interaction_keys()) == 40
        for assertion in written:
            assert any(
                s.local_id == assertion.local_id
                for s in adapter.interaction_passertions(assertion.interaction_key)
            )
        counts = adapter.counts()
        assert counts.interaction_passertions == 40

    def test_adapter_generation_token_tracks_epoch(self):
        router, _ = make_router(3)
        adapter = FederatedStoreAdapter(router)
        adapter.put(ipa(0))
        token = adapter.generation_token(None)
        assert token.fresh(adapter.generation_token(None))
        router.add_member("store-03", MemoryBackend())
        assert not token.fresh(adapter.generation_token(None))
