"""A3 — compressor/grouping ablation: the experiment's scientific table.

Compressibility of structured protein samples, per codec and per reduced
alphabet, with the shuffle-normalised statistic of Section 2.  Also
benchmarks raw codec throughput (from-scratch vs stdlib).
"""

from __future__ import annotations

import pytest

from repro.bio.encode import encode_by_groups
from repro.bio.groupings import get_grouping
from repro.bio.refseq import RefSeqDatabase, sample_of_size
from repro.compress.api import get_compressor
from repro.figures.ablation import compressibility_table, run_compressibility


@pytest.fixture(scope="module")
def sample_text():
    db = RefSeqDatabase(seed=7)
    _, text = sample_of_size(db, 4000)
    return text


@pytest.fixture(scope="module")
def points():
    return run_compressibility(
        codecs=("gz-like", "bz-like", "ppm-like", "gzip", "bzip2"),
        groupings=("hp2", "dayhoff6", "identity20"),
        sample_bytes=1500,
        n_permutations=4,
    )


def test_bench_compressibility_table(benchmark, points, report):
    benchmark.pedantic(
        lambda: run_compressibility(
            codecs=("gzip",), groupings=("hp2",), sample_bytes=800, n_permutations=2
        ),
        rounds=3,
        iterations=1,
    )
    report("A3: compressibility per codec and grouping", compressibility_table(points))
    # The Sampath effect: grouping exposes structure the full alphabet hides.
    for codec in ("gzip", "bzip2"):
        hp2 = next(p for p in points if (p.grouping, p.codec) == ("hp2", codec))
        assert hp2.compressibility < 1.0
    # Reduced alphabets always compress to fewer bytes per symbol.
    for codec in ("gz-like", "gzip"):
        hp2 = next(p for p in points if (p.grouping, p.codec) == ("hp2", codec))
        iden = next(
            p for p in points if (p.grouping, p.codec) == ("identity20", codec)
        )
        assert hp2.sample_ratio < iden.sample_ratio


@pytest.mark.parametrize("codec_name", ["gz-like", "bz-like", "ppm-like", "gzip", "bzip2"])
def test_bench_compress_throughput(benchmark, codec_name, sample_text):
    """Compression throughput on a 4 KB encoded protein sample."""
    codec = get_compressor(codec_name)
    data = encode_by_groups(sample_text, get_grouping("hp2")).encode()

    blob = benchmark(codec.compress, data)
    assert codec.decompress(blob) == data
    benchmark.extra_info["ratio"] = round(len(blob) / len(data), 4)


@pytest.mark.parametrize("codec_name", ["gz-like", "ppm-like", "gzip"])
def test_bench_decompress_throughput(benchmark, codec_name, sample_text):
    codec = get_compressor(codec_name)
    data = encode_by_groups(sample_text, get_grouping("hp2")).encode()
    blob = codec.compress(data)
    out = benchmark(codec.decompress, blob)
    assert out == data
