"""Sequence shuffling: the Shuffle activity.

Random permutations of the encoded sample provide the comparison standard
that removes the data-encoding and symbol-frequency contributions from the
compressibility value (Section 2).  Permutations preserve the multiset of
symbols exactly (Fisher-Yates) and are reproducible from a seed.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.simkit.rng import derive_seed


def shuffle_sequence(sequence: str, rng: random.Random) -> str:
    """One uniform random permutation of ``sequence``."""
    chars = list(sequence)
    rng.shuffle(chars)
    return "".join(chars)


def permutations_of(
    sequence: str, count: int, seed: int = 0, stream: str = "shuffle"
) -> Iterator[str]:
    """Yield ``count`` independent permutations of ``sequence``.

    Each permutation gets its own derived seed so that permutation ``i`` is
    identical regardless of how many permutations are requested — important
    when the workflow batches permutations into scripts of varying size.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    for i in range(count):
        rng = random.Random(derive_seed(seed, f"{stream}/{i}"))
        yield shuffle_sequence(sequence, rng)


def permutation_list(sequence: str, count: int, seed: int = 0) -> List[str]:
    """Materialised form of :func:`permutations_of`."""
    return list(permutations_of(sequence, count, seed))
