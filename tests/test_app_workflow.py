"""Tests for the end-to-end workflow engine and experiment assembly."""

from __future__ import annotations

import pytest

from repro.core.prep import ProtocolTracker
from repro.core.query import build_trace, data_lineage
from repro.core.recorder import RecordingMode


class TestWorkflowRun:
    def test_produces_compressibility_result(self, experiment_factory):
        exp = experiment_factory()
        result = exp.run()
        value = result.compressibility("gz-like")
        assert 0.0 < value < 1.5
        assert result.run.compressibility_std("gz-like") >= 0.0

    def test_sizes_table_has_sample_and_permutations(self, experiment_factory):
        exp = experiment_factory(n_permutations=3)
        result = exp.run()
        table = result.run.sizes_table
        labels = {row.label for row in table.rows}
        assert labels == {"sample", "perm-0", "perm-1", "perm-2"}

    def test_interaction_count_matches_structure(self, experiment_factory):
        """collate + encode + (1+n) chains*3 + n shuffles + table + average."""
        n = 2
        exp = experiment_factory(n_permutations=n)
        result = exp.run()
        expected_calls = 2 + (1 + n) * 3 + n + 2
        assert exp.backend.counts().interaction_records == expected_calls

    def test_three_interactions_per_permutation_chain(self, experiment_factory):
        """The paper's 6 records/permutation = 3 interactions x 2 views."""
        exp = experiment_factory(n_permutations=1)
        result = exp.run()
        chain = [c for c in result.run.chains if c.label == "perm-0"][0]
        store = exp.backend
        for mid in (chain.compress_id, chain.measure_id, chain.collate_id):
            keys = [k for k in store.interaction_keys() if k.interaction_id == mid]
            assert len(keys) == 1
            assert len(store.interaction_passertions(keys[0])) == 2

    def test_every_interaction_fully_documented(self, experiment_factory):
        exp = experiment_factory()
        exp.run()
        tracker = ProtocolTracker()
        for assertion in exp.backend.all_assertions():
            tracker.observe(assertion)
        assert tracker.undocumented() == []

    def test_deterministic_results_same_seed(self, experiment_factory):
        r1 = experiment_factory(seed=5).run(session_id="s-fixed")
        r2 = experiment_factory(seed=5).run(session_id="s-fixed2")
        assert r1.compressibility("gz-like") == r2.compressibility("gz-like")

    def test_multiple_codecs(self, experiment_factory):
        exp = experiment_factory(codecs=("gz-like", "gzip"))
        result = exp.run()
        assert set(result.run.results) == {"gz-like", "gzip"}

    def test_recording_none_leaves_store_empty(self, experiment_factory):
        exp = experiment_factory(recording=RecordingMode.NONE)
        result = exp.run()
        assert exp.backend.counts().total == 0
        assert result.records_submitted == 0
        # The science still happens.
        assert 0 < result.compressibility("gz-like") < 1.5

    def test_sync_and_async_store_same_passertions(self, experiment_factory):
        sync_exp = experiment_factory(recording=RecordingMode.SYNCHRONOUS)
        sync_exp.run(session_id="mode-cmp-sync")
        async_exp = experiment_factory(recording=RecordingMode.ASYNCHRONOUS)
        async_exp.run(session_id="mode-cmp-async")
        sc, ac = sync_exp.backend.counts(), async_exp.backend.counts()
        assert sc.interaction_passertions == ac.interaction_passertions
        assert sc.actor_state_passertions == ac.actor_state_passertions
        assert sc.group_assertions == ac.group_assertions

    def test_async_flush_required_for_persistence(self, experiment_factory):
        exp = experiment_factory(recording=RecordingMode.ASYNCHRONOUS)
        result = exp.run()  # run() flushes internally
        assert result.records_flushed == result.records_submitted
        assert exp.backend.counts().total == result.records_flushed


class TestLineage:
    def test_trace_reconstructs_workflow_shape(self, experiment_factory):
        exp = experiment_factory(n_permutations=2)
        result = exp.run()
        trace = build_trace(exp.backend, result.session_id)
        assert result.run.message_ids["collate"] in trace.roots()
        assert result.run.message_ids["average"] in trace.leaves()

    def test_average_descends_from_collate(self, experiment_factory):
        exp = experiment_factory(n_permutations=1)
        result = exp.run()
        trace = build_trace(exp.backend, result.session_id)
        lineage = data_lineage(trace, result.run.message_ids["average"])
        assert result.run.message_ids["collate"] in lineage
        assert result.run.message_ids["encode"] in lineage

    def test_permutation_chain_lineage(self, experiment_factory):
        exp = experiment_factory(n_permutations=1)
        result = exp.run()
        trace = build_trace(exp.backend, result.session_id)
        chain = [c for c in result.run.chains if c.label == "perm-0"][0]
        lineage = data_lineage(trace, chain.collate_id)
        assert chain.compress_id in lineage
        assert chain.measure_id in lineage

    def test_thread_groups_sequence_measure_chain(self, experiment_factory):
        exp = experiment_factory(n_permutations=1)
        result = exp.run()
        thread = f"{result.session_id}/perm-0"
        members = exp.backend.group_members(thread)
        # shuffle + compress + measure + add_size
        assert len(members) == 4
        assert exp.backend.group_kind(thread) == "thread"

    def test_concurrent_sessions_unambiguous(self, experiment_factory):
        """Two runs through the same deployment stay cleanly separated."""
        exp = experiment_factory(n_permutations=1)
        r1 = exp.run()
        r2 = exp.run()
        assert r1.session_id != r2.session_id
        t1 = build_trace(exp.backend, r1.session_id)
        t2 = build_trace(exp.backend, r2.session_id)
        assert set(t1.interactions).isdisjoint(set(t2.interactions))


class TestExperimentAssembly:
    def test_backend_selection(self, experiment_factory, tmp_path):
        exp = experiment_factory(store_backend="kvlog", store_path=tmp_path / "s.db")
        result = exp.run()
        assert exp.backend.counts().total == result.records_flushed
        exp.close()

    def test_unknown_backend_rejected(self, experiment_factory):
        with pytest.raises(ValueError, match="unknown store backend"):
            experiment_factory(store_backend="cloud")

    def test_persistent_backend_requires_path(self):
        from repro.app.experiment import Experiment, ExperimentConfig

        with pytest.raises(ValueError, match="store_path"):
            Experiment(ExperimentConfig(store_backend="filesystem"))

    def test_script_provider_covers_all_services(self, experiment_factory):
        exp = experiment_factory()
        for endpoint in (
            "collate-sample",
            "encode-by-groups",
            "shuffle",
            "compress-gz-like",
            "measure-size",
            "collate-sizes",
            "average",
        ):
            script = exp.script_for(endpoint)
            assert script and script.startswith("#!")
        assert exp.script_for("ghost") is None

    def test_registry_published_for_all_services(self, experiment_factory):
        exp = experiment_factory()
        services = exp.registry.services()
        assert "encode-by-groups" in services
        assert "compress-gz-like" in services
        assert "nucleotide-db" in services
