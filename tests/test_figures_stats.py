"""Tests for fit statistics and table formatting."""

from __future__ import annotations

import pytest

from repro.figures.stats import format_table, linear_fit, relative_overhead


class TestLinearFit:
    def test_exact_line_recovered(self):
        xs = [1, 2, 3, 4]
        ys = [2 * x + 5 for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(5.0)
        assert fit.correlation == pytest.approx(1.0)
        assert fit.is_linear

    def test_noisy_line_still_correlates(self):
        xs = list(range(10))
        ys = [3 * x + (1 if x % 2 else -1) * 0.01 for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.is_linear

    def test_nonlinear_not_linear(self):
        xs = list(range(1, 20))
        ys = [x**3 for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.correlation < 0.99 or not fit.is_linear

    def test_predict(self):
        fit = linear_fit([0, 1], [1, 3])
        assert fit.predict(2) == pytest.approx(5.0)

    def test_flat_series_is_linear(self):
        fit = linear_fit([1, 2, 3], [7, 7, 7])
        assert fit.slope == pytest.approx(0.0)
        assert fit.is_linear

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])
        with pytest.raises(ValueError):
            linear_fit([2, 2], [1, 3])

    def test_negative_slope(self):
        fit = linear_fit([0, 1, 2], [10, 8, 6])
        assert fit.slope == pytest.approx(-2.0)
        assert fit.is_linear  # |r| criterion


class TestRelativeOverhead:
    def test_ten_percent(self):
        assert relative_overhead([100, 200], [110, 220]) == pytest.approx(0.1)

    def test_zero_overhead(self):
        assert relative_overhead([5, 5], [5, 5]) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_overhead([1], [1, 2])
        with pytest.raises(ValueError):
            relative_overhead([], [])
        with pytest.raises(ValueError):
            relative_overhead([0], [1])


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        # All rows same width.
        assert len({len(l) for l in lines}) == 1
        assert "333" in lines[3]
