"""A small VDL-like workflow language.

The paper's application "can consist of a mix of VDL workflows, shell
scripts, and Web Services"; Chimera's VDL describes derivations that VDT
turns into DAGs.  This module gives the reproduction a concrete textual
workflow format::

    workflow compressibility {
      activity collate  script="collate.sh"  sample_kb="100";
      activity encode   script="encode.sh"   after="collate" grouping="hp2";
      activity shuffle  script="shuffle.sh"  after="encode";
      activity measure  script="measure.sh"  after="shuffle" codec="gz-like";
    }

One ``activity`` statement per line: the first token is the activity name,
followed by ``key="value"`` attributes.  ``script`` and ``after`` (a
comma-separated dependency list) are special; all other attributes become
activity parameters.  ``#`` starts a comment.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.grid.dag import Activity, WorkflowDag

_ATTR_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_-]*)\s*=\s*"([^"]*)"')
_HEADER_RE = re.compile(r"^workflow\s+([A-Za-z_][A-Za-z0-9_-]*)\s*\{$")
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_-]*$")


class VdlSyntaxError(ValueError):
    """A malformed VDL document."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _strip_comment(line: str) -> str:
    """Remove a # comment, respecting quoted strings."""
    out = []
    in_quote = False
    for ch in line:
        if ch == '"':
            in_quote = not in_quote
        if ch == "#" and not in_quote:
            break
        out.append(ch)
    return "".join(out).strip()


def parse_vdl(text: str) -> WorkflowDag:
    """Parse one ``workflow`` block into a :class:`WorkflowDag`."""
    dag: WorkflowDag | None = None
    closed = False
    pending_deps: List[Tuple[str, List[str], int]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        if dag is None:
            match = _HEADER_RE.match(line)
            if not match:
                raise VdlSyntaxError(lineno, f"expected 'workflow <name> {{', got {line!r}")
            dag = WorkflowDag(name=match.group(1))
            continue
        if closed:
            raise VdlSyntaxError(lineno, "content after closing '}'")
        if line == "}":
            closed = True
            continue
        if not line.endswith(";"):
            raise VdlSyntaxError(lineno, "activity statement must end with ';'")
        line = line[:-1].strip()
        parts = line.split(None, 2)
        if not parts or parts[0] != "activity":
            raise VdlSyntaxError(lineno, f"expected 'activity', got {line!r}")
        if len(parts) < 2:
            raise VdlSyntaxError(lineno, "activity statement missing name")
        name = parts[1]
        if not _NAME_RE.match(name):
            raise VdlSyntaxError(lineno, f"invalid activity name {name!r}")
        attr_text = parts[2] if len(parts) > 2 else ""
        # Verify the attribute text is fully consumed by key="value" pairs.
        consumed = _ATTR_RE.sub("", attr_text).strip()
        if consumed:
            raise VdlSyntaxError(lineno, f"unparsable attribute text {consumed!r}")
        attrs: Dict[str, str] = {}
        for match in _ATTR_RE.finditer(attr_text):
            key, value = match.group(1), match.group(2)
            if key in attrs:
                raise VdlSyntaxError(lineno, f"duplicate attribute {key!r}")
            attrs[key] = value
        script = attrs.pop("script", "")
        after = [d.strip() for d in attrs.pop("after", "").split(",") if d.strip()]
        activity = Activity(
            name=name, script=script, params=tuple(sorted(attrs.items()))
        )
        try:
            dag.add_activity(activity)
        except ValueError as exc:
            raise VdlSyntaxError(lineno, str(exc)) from exc
        pending_deps.append((name, after, lineno))
    if dag is None:
        raise VdlSyntaxError(0, "no workflow block found")
    if not closed:
        raise VdlSyntaxError(0, "missing closing '}'")
    for name, after, lineno in pending_deps:
        for dep in after:
            try:
                dag.add_dependency(dep, name)
            except (KeyError, ValueError) as exc:
                raise VdlSyntaxError(lineno, str(exc)) from exc
    return dag


def render_vdl(dag: WorkflowDag) -> str:
    """Serialize a DAG back to VDL text (inverse of :func:`parse_vdl`)."""
    lines = [f"workflow {dag.name} {{"]
    for name in dag.topological_order():
        activity = dag.activity(name)
        attrs: List[str] = []
        if activity.script:
            attrs.append(f'script="{activity.script}"')
        deps = dag.dependencies_of(name)
        if deps:
            attrs.append(f'after="{",".join(deps)}"')
        for key, value in sorted(activity.params):
            attrs.append(f'{key}="{value}"')
        suffix = ("  " + " ".join(attrs)) if attrs else ""
        lines.append(f"  activity {name}{suffix};")
    lines.append("}")
    return "\n".join(lines) + "\n"
