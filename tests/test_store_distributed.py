"""Tests for the distributed PReServ (§7 future work, implemented)."""

from __future__ import annotations

import pytest

from repro.store.backends import MemoryBackend
from repro.store.distributed import (
    FederatedQueryClient,
    StoreCloseError,
    StoreRouter,
    consolidate,
)
from repro.figures.synthstore import populate_store

from tests.test_store_backends import ga, ipa, key, spa


def make_router(n=3):
    stores = {f"store-{i}": MemoryBackend() for i in range(n)}
    return StoreRouter(stores), stores


class TestRouting:
    def test_requires_stores(self):
        with pytest.raises(ValueError):
            StoreRouter({})

    def test_placement_deterministic(self):
        router_a, _ = make_router()
        router_b, _ = make_router()
        for i in range(20):
            assert router_a.owner_of(key(i)) == router_b.owner_of(key(i))

    def test_passertion_goes_to_exactly_one_store(self):
        router, stores = make_router()
        owner = router.put(ipa(1))
        holders = [
            name
            for name, s in stores.items()
            if s.interaction_passertions(key(1))
        ]
        assert holders == [owner]

    def test_same_interaction_always_same_store(self):
        """All p-assertions of one interaction co-locate (navigability)."""
        router, stores = make_router()
        from repro.core.passertion import ViewKind

        o1 = router.put(ipa(1, ViewKind.SENDER))
        o2 = router.put(ipa(1, ViewKind.RECEIVER))
        o3 = router.put(spa(1))
        assert o1 == o2 == o3

    def test_distribution_is_spread(self):
        """With enough interactions every store owns some records."""
        router, stores = make_router(3)
        for i in range(60):
            router.put(ipa(i))
        sizes = [len(s.interaction_keys()) for s in stores.values()]
        assert all(size > 0 for size in sizes)
        assert sum(sizes) == 60

    def test_group_assertions_broadcast(self):
        router, stores = make_router()
        router.put(ipa(1))
        router.put(ga(1))
        for s in stores.values():
            assert s.group_members("session-A") == [key(1)]


class _ExplodingStore(MemoryBackend):
    """A member whose close() always fails (a dead fleet worker stand-in)."""

    def close(self) -> None:
        raise RuntimeError("fsync handle already gone")


class TestRouterClose:
    def test_close_is_idempotent(self):
        router, stores = make_router()
        closed = []
        for name, store in stores.items():
            store.close = lambda name=name: closed.append(name)
        router.close()
        router.close()  # second close is a no-op, not a double-close
        assert sorted(closed) == sorted(stores)

    def test_close_attempts_every_member_and_aggregates(self):
        stores = {
            "store-0": _ExplodingStore(),
            "store-1": MemoryBackend(),
            "store-2": _ExplodingStore(),
        }
        survivors = []
        stores["store-1"].close = lambda: survivors.append("store-1")
        router = StoreRouter(stores)
        with pytest.raises(StoreCloseError) as excinfo:
            router.close()
        # The healthy member was still closed despite its siblings failing.
        assert survivors == ["store-1"]
        assert [name for name, _ in excinfo.value.failures] == [
            "store-0",
            "store-2",
        ]
        assert all(
            isinstance(exc, RuntimeError) for _, exc in excinfo.value.failures
        )
        # And the failure does not reopen the router: close stays done.
        router.close()

    def test_on_close_hook_runs_last_even_when_members_fail(self):
        events = []
        stores = {"store-0": _ExplodingStore(), "store-1": MemoryBackend()}
        stores["store-1"].close = lambda: events.append("member")
        router = StoreRouter(stores, on_close=lambda: events.append("hook"))
        with pytest.raises(StoreCloseError):
            router.close()
        assert events == ["member", "hook"]

    def test_failing_on_close_hook_is_aggregated(self):
        def hook():
            raise RuntimeError("fleet teardown failed")

        router = StoreRouter({"store-0": MemoryBackend()}, on_close=hook)
        with pytest.raises(StoreCloseError) as excinfo:
            router.close()
        assert [name for name, _ in excinfo.value.failures] == ["<on_close>"]


class TestCrossLinks:
    def test_other_stores_gain_links(self):
        router, _ = make_router()
        owner = router.put(ipa(1))
        for name in router.store_names:
            links = router.cross_links(name)
            if name == owner:
                assert all(l.interaction_key != key(1) for l in links)
            else:
                assert any(
                    l.interaction_key == key(1) and l.store == owner for l in links
                )

    def test_resolve_navigates_to_owner(self):
        router, _ = make_router()
        owner = router.put(ipa(1))
        for name in router.store_names:
            assert router.resolve(name, key(1)) == owner

    def test_resolve_unknown_key_raises(self):
        router, _ = make_router()
        with pytest.raises(KeyError, match="cross-link"):
            router.resolve(router.store_names[0], key(99))


class TestFederatedQuery:
    def test_union_of_interaction_keys(self):
        router, _ = make_router()
        for i in range(10):
            router.put(ipa(i))
        fed = FederatedQueryClient(router)
        assert fed.interaction_keys() == [key(i) for i in range(10)]

    def test_targeted_lookups_hit_owner(self):
        router, _ = make_router()
        router.put(ipa(4))
        router.put(spa(4))
        fed = FederatedQueryClient(router)
        assert len(fed.interaction_passertions(key(4))) == 1
        assert len(fed.actor_state_passertions(key(4), state_type="script")) == 1

    def test_counts_deduplicate_group_broadcast(self):
        router, _ = make_router(3)
        router.put(ipa(1))
        router.put(ga(1))
        counts = FederatedQueryClient(router).counts()
        assert counts.interaction_passertions == 1
        assert counts.group_assertions == 1  # not 3
        assert counts.interaction_records == 1


class TestConsolidation:
    def test_merge_preserves_everything(self):
        from repro.app.experiment import Experiment, ExperimentConfig

        # A realistic corpus via the synthetic generator on one store...
        exp = Experiment(ExperimentConfig())
        single = MemoryBackend()
        populate_store(single, 40, script_for=exp.script_for)
        # ...replayed through a 3-store router.
        router, _ = make_router(3)
        for assertion in single.all_assertions():
            router.put(assertion)

        target = MemoryBackend()
        moved_p, moved_g = consolidate(router, target)
        want = single.counts()
        got = target.counts()
        assert got.interaction_passertions == want.interaction_passertions
        assert got.actor_state_passertions == want.actor_state_passertions
        assert got.group_assertions == want.group_assertions
        assert got.interaction_records == want.interaction_records
        assert moved_p == want.interaction_passertions + want.actor_state_passertions
        assert moved_g == want.group_assertions

    def test_consolidated_store_answers_queries(self):
        router, _ = make_router()
        for i in range(6):
            router.put(ipa(i))
            router.put(spa(i))
            router.put(ga(i))
        target = MemoryBackend()
        consolidate(router, target)
        assert target.group_members("session-A") == [key(i) for i in range(6)]
        assert len(target.actor_state_passertions(key(3))) == 1
