"""Fit statistics for the figure harnesses.

The paper reports that every measured curve "remains linear (each plot has a
correlation coefficient greater than 0.99)"; these helpers compute the same
statistics for our regenerated series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line plus the Pearson correlation of the data."""

    slope: float
    intercept: float
    correlation: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept

    @property
    def is_linear(self) -> bool:
        """The paper's linearity criterion: |r| > 0.99."""
        return abs(self.correlation) > 0.99


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Least-squares fit of ``ys`` on ``xs`` with Pearson correlation."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a line")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if np.allclose(x, x[0]):
        raise ValueError("all x values identical; cannot fit")
    slope, intercept = np.polyfit(x, y, 1)
    if np.allclose(y, y[0]):
        # A perfectly flat series is perfectly linear; Pearson r is 0/0.
        correlation = 1.0
    else:
        correlation = float(np.corrcoef(x, y)[0, 1])
    return LinearFit(slope=float(slope), intercept=float(intercept), correlation=correlation)


def relative_overhead(baseline: Sequence[float], measured: Sequence[float]) -> float:
    """Mean relative overhead of ``measured`` over ``baseline`` (e.g. 0.08 = 8 %)."""
    if len(baseline) != len(measured):
        raise ValueError("series must have equal length")
    if not baseline:
        raise ValueError("empty series")
    overheads = []
    for base, value in zip(baseline, measured):
        if base <= 0:
            raise ValueError(f"non-positive baseline value {base}")
        overheads.append((value - base) / base)
    return float(np.mean(overheads))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table (the harnesses' output format)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for ri, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        if ri == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)
