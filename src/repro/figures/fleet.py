"""A10: out-of-process fleet sweep — in-process bus vs. process workers.

The paper's §7 answer to a saturated store is *parallel submissions into
several provenance store instances*.  This sweep measures what that
deployment buys: N concurrent recording sessions ship the same
``prep-record-batch`` documents either

* **bus** — into one in-process :class:`~repro.store.service.PReServActor`
  (the single-process sharded baseline; the bus drives the record port
  serially, exactly as every in-process deployment here does), or
* **process** — into a :class:`~repro.fleet.manager.ProcessFleet` of W
  worker processes over the Envelope socket transport, one session thread
  per connection, sessions spread round-robin across workers.

Both sides run the identical store stack (actor → translator → plug-in →
``KVLogBackend``) on the identical documents; only the deployment differs.

``commit_barrier_ms`` models the paper-era device exactly as the pipeline
sweep's ``flush_latency_s`` does: each group commit additionally waits out
a fixed write barrier (2005 commodity disks cost milliseconds per barrier
where this host's NVMe returns in ~0.2 ms and measures noise).  The
barrier is attached *symmetrically* — the baseline actor's backend and
every fleet worker's backend wait the same amount per commit — so the
reported speedup isolates the architecture: one process serializes its
sessions' commits behind one store, W workers overlap them.  On a
multi-core host the fleet additionally overlaps XML decode (real CPU work
in W interpreters); with the barrier at 0 on such a host, that CPU
overlap is what remains of the speedup.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.passertion import (
    InteractionKey,
    InteractionPAssertion,
    ViewKind,
)
from repro.core.prep import PrepAck, PrepRecord
from repro.figures.stats import format_table
from repro.soa.xmldoc import XmlElement

#: transport labels used in sweep rows.
BUS = "bus"
PROCESS = "process"


@dataclass(frozen=True)
class FleetSweepPoint:
    """One (transport, workers) configuration of the sweep."""

    transport: str
    workers: int
    sessions: int
    records: int
    batches: int
    elapsed_s: float

    @property
    def records_per_s(self) -> float:
        return self.records / self.elapsed_s if self.elapsed_s else float("inf")


def _session_bodies(
    session: int,
    batches: int,
    records_per_batch: int,
    payload_bytes: int,
) -> List[XmlElement]:
    """One session's pre-encoded ``prep-record-batch`` bodies (off-clock)."""
    payload = XmlElement("envelope")
    payload.element("body").element(
        "data", "ACGT" * (max(payload_bytes, 4) // 4)
    )
    bodies: List[XmlElement] = []
    counter = 0
    for _ in range(batches):
        body = XmlElement("prep-record-batch")
        for _ in range(records_per_batch):
            key = InteractionKey(
                interaction_id=f"fleet-s{session:03d}-m{counter:06d}",
                sender=f"client-{session}",
                receiver="service",
            )
            record = PrepRecord(
                assertion=InteractionPAssertion(
                    interaction_key=key,
                    view=ViewKind.SENDER,
                    asserter=f"client-{session}",
                    local_id=f"pa-{counter}",
                    operation="invoke",
                    content=payload,
                )
            )
            body.add(record.to_xml())
            counter += 1
        bodies.append(body)
    return bodies


def _check_ack(response: XmlElement, expected: int) -> None:
    ack = PrepAck.from_xml(response)
    if not ack.ok or ack.count != expected:
        raise AssertionError(
            f"store acked {ack.count}/{expected} records ({ack.detail})"
        )


def run_fleet_sweep(
    tmp_dir: Path,
    worker_counts: Sequence[int] = (1, 2, 4),
    sessions: int = 4,
    batches_per_session: int = 12,
    records_per_batch: int = 8,
    payload_bytes: int = 256,
    commit_barrier_ms: float = 10.0,
    sync: bool = True,
    pipeline_depth: int = 1,
    start_method: str = "spawn",
) -> List[FleetSweepPoint]:
    """One in-process baseline row + one process-fleet row per worker count."""
    if sessions < 1 or batches_per_session < 1 or records_per_batch < 1:
        raise ValueError("sessions, batches and records per batch must be >= 1")
    if not worker_counts or any(w < 1 for w in worker_counts):
        raise ValueError("worker counts must be a non-empty list of ints >= 1")
    barrier_s = commit_barrier_ms / 1000.0
    all_bodies = [
        _session_bodies(s, batches_per_session, records_per_batch, payload_bytes)
        for s in range(sessions)
    ]
    total_batches = sessions * batches_per_session
    total_records = total_batches * records_per_batch
    points: List[FleetSweepPoint] = []

    # -- baseline: one in-process actor, sessions serialized on the bus ----
    from repro.fleet.worker import attach_commit_barrier
    from repro.store.backends import KVLogBackend
    from repro.store.service import PReServActor

    backend = KVLogBackend(tmp_dir / "baseline", sync=sync, shards=1)
    attach_commit_barrier(backend, barrier_s)
    actor = PReServActor(backend, pipeline_depth=pipeline_depth)
    try:
        start = time.perf_counter()
        # Round-robin across sessions — the arrival order an in-process
        # deployment would see from interleaved clients.
        for batch_index in range(batches_per_session):
            for session in range(sessions):
                response = actor.handle(
                    "record", all_bodies[session][batch_index]
                )
                _check_ack(response, records_per_batch)
        elapsed = time.perf_counter() - start
        if backend.counts().interaction_passertions != total_records:
            raise AssertionError("baseline lost records")
    finally:
        actor.close()
    points.append(
        FleetSweepPoint(
            transport=BUS,
            workers=1,
            sessions=sessions,
            records=total_records,
            batches=total_batches,
            elapsed_s=elapsed,
        )
    )

    # -- process fleet: W workers, one thread per session ------------------
    from repro.fleet.manager import ProcessFleet
    from repro.soa.transport import EnvelopeClient

    for w in worker_counts:
        fleet = ProcessFleet(
            tmp_dir / f"fleet-{w:02d}",
            members=w,
            shards=1,
            sync=sync,
            pipeline_depth=pipeline_depth,
            commit_barrier_s=barrier_s,
            start_method=start_method,
        )
        try:
            names = fleet.worker_names
            # Each session gets its own connection to its (round-robin)
            # worker — the paper's parallel submission shape.
            clients = [
                EnvelopeClient(fleet.handle(names[s % w]).config.address)
                for s in range(sessions)
            ]
            endpoints = [names[s % w] for s in range(sessions)]
            start_barrier = threading.Barrier(sessions + 1)
            failures: List[BaseException] = []

            def run_session(s: int) -> None:
                start_barrier.wait()
                try:
                    for body in all_bodies[s]:
                        response = clients[s].call(
                            source=f"session-{s}",
                            target=endpoints[s],
                            operation="record",
                            payload=body,
                        )
                        _check_ack(response, records_per_batch)
                except BaseException as exc:  # surfaced after join
                    failures.append(exc)

            threads = [
                threading.Thread(target=run_session, args=(s,))
                for s in range(sessions)
            ]
            for t in threads:
                t.start()
            start_barrier.wait()
            start = time.perf_counter()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            if failures:
                raise failures[0]
            stored = sum(
                store.counts().interaction_passertions
                for store in fleet.stores().values()
            )
            if stored != total_records:
                raise AssertionError(
                    f"fleet lost records: {stored} != {total_records}"
                )
            for client in clients:
                client.close()
        finally:
            fleet.close(raise_errors=False)
        points.append(
            FleetSweepPoint(
                transport=PROCESS,
                workers=w,
                sessions=sessions,
                records=total_records,
                batches=total_batches,
                elapsed_s=elapsed,
            )
        )
    return points


@dataclass(frozen=True)
class AvailabilityReport:
    """One crash drill's outcome: what the replicated fleet survived."""

    workers: int
    replicas: int
    acked_records: int
    retried_batches: int
    reads: int
    read_failures: int
    failovers: int
    recovery_s: float
    verified_records: int

    @property
    def read_error_rate(self) -> float:
        return self.read_failures / self.reads if self.reads else 0.0


def run_availability_drill(
    tmp_dir: Path,
    workers: int = 4,
    replicas: int = 2,
    batches: int = 24,
    records_per_batch: int = 4,
    kill_after_batches: int = 6,
    victim: Optional[str] = None,
    sync: bool = True,
    probe_interval_s: float = 0.1,
    recovery_timeout_s: float = 60.0,
) -> AvailabilityReport:
    """The deterministic crash drill: kill a replica mid-stream, lose nothing.

    An R-way replicated process fleet takes a stream of ``put_many``
    batches while a reader queries already-acknowledged records.  After
    ``kill_after_batches`` acknowledged batches one worker is SIGKILLed.
    The writer retries in-doubt batches until they acknowledge (replicated
    commits are duplicate-tolerant, so retries converge); the reader must
    never fail (replica failover); the supervisor must restart and resync
    the victim.  The drill then verifies **every acknowledged record** is
    readable and byte-identical to what was written, from every live
    replica that should hold it.
    """
    from repro.fleet.supervisor import FleetSupervisor
    from repro.store.distributed import (
        FederatedQueryClient,
        PartialCommitError,
        sharded_store_fleet,
    )
    from repro.soa.envelope import Fault

    if not 0 < kill_after_batches < batches:
        raise ValueError("kill_after_batches must fall inside the batch stream")
    router = sharded_store_fleet(
        tmp_dir / "drill",
        members=workers,
        transport="process",
        sync=sync,
        replicas=replicas,
    )
    fleet = router.fleet  # type: ignore[attr-defined]
    supervisor = FleetSupervisor(
        fleet, router=router, probe_interval_s=probe_interval_s
    )
    victim = victim or fleet.worker_names[0]
    queries = FederatedQueryClient(router)
    #: store_key -> canonical bytes of what was acknowledged.
    acked: dict = {}
    retried_batches = 0
    reads = 0
    read_failures = 0
    stop_reader = threading.Event()
    reader_errors: List[BaseException] = []

    def reader() -> None:
        nonlocal reads, read_failures
        while not stop_reader.is_set():
            for store_key in list(acked):
                if stop_reader.is_set():
                    return
                try:
                    queries.interaction_passertions(store_key[0])
                except BaseException as exc:
                    read_failures += 1
                    reader_errors.append(exc)
                reads += 1
            time.sleep(0.01)

    try:
        with supervisor:
            reader_thread = threading.Thread(target=reader, daemon=True)
            reader_thread.start()
            counter = 0
            for batch_index in range(batches):
                batch = []
                for _ in range(records_per_batch):
                    key = InteractionKey(
                        interaction_id=f"drill-{counter:06d}",
                        sender="drill-client",
                        receiver="drill-service",
                    )
                    content = XmlElement("envelope")
                    content.element("body").element(
                        "data", f"payload-{counter}"
                    )
                    batch.append(
                        InteractionPAssertion(
                            interaction_key=key,
                            view=ViewKind.SENDER,
                            asserter="drill-client",
                            local_id=f"pa-{counter}",
                            operation="invoke",
                            content=content,
                        )
                    )
                    counter += 1
                # Retry until the whole batch acknowledges: a partial
                # commit is never acked, and replicated retries converge.
                while True:
                    try:
                        router.put_many(batch)
                        break
                    except (PartialCommitError, Fault):
                        retried_batches += 1
                        time.sleep(0.05)
                for assertion in batch:
                    acked[assertion.store_key] = (
                        assertion.to_xml().serialize()
                    )
                if batch_index + 1 == kill_after_batches:
                    fleet.kill(victim)
            # Wait for the supervisor to restore full replication.
            deadline = time.monotonic() + recovery_timeout_s
            while time.monotonic() < deadline:
                if (
                    supervisor.status()[victim]["state"] == "healthy"
                    and not router.degraded_members
                    and not router.pending_repairs()
                ):
                    break
                time.sleep(0.05)
            else:
                raise AssertionError(
                    f"fleet did not recover within {recovery_timeout_s:.0f}s: "
                    f"status={supervisor.status()!r} "
                    f"degraded={router.degraded_members!r} "
                    f"pending={router.pending_repairs()!r}"
                )
            stop_reader.set()
            reader_thread.join(timeout=30.0)
            died = next(
                t for t, w, e, _ in supervisor.events
                if w == victim and e == "died"
            )
            restored = next(
                t for t, w, e, _ in supervisor.events
                if w == victim and e == "restored" and t > died
            )
            # -- verification: zero acked-write loss, byte-identical ------
            verified = 0
            for (key, *_rest), expected in acked.items():
                for member in router.replica_set(key):
                    held = router.store(member).interaction_passertions(key)
                    match = [
                        p for p in held
                        if p.to_xml().serialize() == expected
                    ]
                    if not match:
                        raise AssertionError(
                            f"acked record {key} missing or altered on "
                            f"replica {member!r}"
                        )
                verified += 1
    finally:
        stop_reader.set()
        router.close()
    if reader_errors:
        raise AssertionError(
            f"{read_failures} read(s) failed during the drill; first: "
            f"{reader_errors[0]!r}"
        )
    return AvailabilityReport(
        workers=workers,
        replicas=replicas,
        acked_records=len(acked),
        retried_batches=retried_batches,
        reads=reads,
        read_failures=read_failures,
        failovers=queries.failovers,
        recovery_s=restored - died,
        verified_records=verified,
    )


def availability_table(report: AvailabilityReport) -> str:
    headers = [
        "workers",
        "replicas",
        "acked",
        "verified",
        "retried batches",
        "reads",
        "read errors",
        "failovers",
        "recovery (s)",
    ]
    rows = [
        [
            report.workers,
            report.replicas,
            report.acked_records,
            report.verified_records,
            report.retried_batches,
            report.reads,
            report.read_failures,
            report.failovers,
            f"{report.recovery_s:.2f}",
        ]
    ]
    return format_table(headers, rows)


def fleet_sweep_table(points: List[FleetSweepPoint]) -> str:
    base_point: Optional[FleetSweepPoint] = next(
        (p for p in points if p.transport == BUS), points[0] if points else None
    )
    base = base_point.records_per_s if base_point else 0.0
    headers = [
        "transport",
        "workers",
        "sessions",
        "records",
        "records/s",
        "speedup",
    ]
    rows = [
        [
            p.transport,
            p.workers,
            p.sessions,
            p.records,
            f"{p.records_per_s:.0f}",
            f"{p.records_per_s / base:.2f}x" if base else "-",
        ]
        for p in points
    ]
    return format_table(headers, rows)
