"""``repro-figures``: regenerate the paper's evaluation artefacts as text.

Subcommands::

    repro-figures micro        # §6 PReServ record round-trip benchmark
    repro-figures fig4         # Figure 4: recording overhead
    repro-figures fig4b        # Figure 4b: concurrent-client throughput sweep
    repro-figures fig5         # Figure 5: use-case query performance
    repro-figures granularity  # A1 ablation
    repro-figures backends     # A2 ablation
    repro-figures compress     # A3 ablation (the scientific table)
    repro-figures bulk         # A5 ablation: put vs put_many group commit
    repro-figures shards       # A7: sharded KVLog concurrent-ingest sweep
    repro-figures compaction   # A8: background compaction vs stop-the-world
    repro-figures pipeline     # A9: pipelined decode→commit ingest sweep
    repro-figures fleet        # A10: in-process bus vs process-fleet ingest
    repro-figures reopen       # A11: reopen cost vs history, ± checkpoints
    repro-figures rebalance    # A12: live fleet growth under load
    repro-figures fanout       # A13: scatter-gather fan-out + hedged reads
    repro-figures all          # everything above
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.figures.ablation import (
    backends_table,
    bulk_ingest_table,
    compressibility_table,
    granularity_table,
    run_backends,
    run_bulk_ingest,
    run_compressibility,
    run_granularity,
)
from repro.figures.compaction import (
    compaction_table,
    fold_table,
    run_compaction_sweep,
    run_fold_sweep,
)
from repro.figures.distributed import run_scaling, scaling_table
from repro.figures.entropy_report import entropy_table, run_entropy_report
from repro.figures.fanout import (
    fanout_table,
    run_fanout_sweep,
    write_fanout_json,
)
from repro.figures.fleet import fleet_sweep_table, run_fleet_sweep
from repro.figures.pipeline import pipeline_table, run_pipeline_sweep
from repro.figures.rebalance import (
    rebalance_table,
    run_rebalance_drill,
    write_rebalance_json,
)
from repro.figures.reopen import (
    reopen_table,
    run_reopen_sweep,
    write_reopen_json,
)
from repro.figures.shards import run_shard_sweep, shard_sweep_table
from repro.figures.fig4 import fig4_table, run_fig4
from repro.figures.fig4b import fig4b_table, run_fig4b
from repro.figures.fig5 import fig5_table, run_fig5
from repro.figures.microbench import microbench_table, run_microbench


def _section(title: str) -> str:
    bar = "=" * len(title)
    return f"{bar}\n{title}\n{bar}"


def cmd_micro(args: argparse.Namespace) -> str:
    return microbench_table(run_microbench(messages=args.messages))


def cmd_fig4(args: argparse.Namespace) -> str:
    return fig4_table(run_fig4())


def cmd_fig4b(args: argparse.Namespace) -> str:
    sweep = run_fig4b(
        client_counts=tuple(args.clients),
        store_counts=tuple(args.stores),
        ops_per_client=args.ops_per_client,
        query_ratio=args.query_ratio,
        cache=not args.no_cache,
    )
    return fig4b_table(sweep)


def cmd_fig5(args: argparse.Namespace) -> str:
    sizes = tuple(args.sizes) if args.sizes else None
    series = run_fig5(sizes=sizes) if sizes else run_fig5()
    return fig5_table(series)


def cmd_granularity(args: argparse.Namespace) -> str:
    return granularity_table(run_granularity())


def cmd_backends(args: argparse.Namespace) -> str:
    with tempfile.TemporaryDirectory(prefix="repro-backends-") as tmp:
        return backends_table(run_backends(Path(tmp), records=args.records))


def cmd_compress(args: argparse.Namespace) -> str:
    return compressibility_table(
        run_compressibility(sample_bytes=args.sample_bytes, n_permutations=args.permutations)
    )


def cmd_bulk(args: argparse.Namespace) -> str:
    with tempfile.TemporaryDirectory(prefix="repro-bulk-") as tmp:
        return bulk_ingest_table(
            run_bulk_ingest(Path(tmp), records=args.records, batch_size=args.batch_size)
        )


def cmd_shards(args: argparse.Namespace) -> str:
    with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
        return shard_sweep_table(
            run_shard_sweep(
                Path(tmp),
                shard_counts=tuple(args.shards),
                clients=args.clients,
                batches_per_client=args.batches,
                records_per_batch=args.records_per_batch,
                value_bytes=args.value_bytes,
                repeats=args.repeats,
            )
        )


def cmd_compaction(args: argparse.Namespace) -> str:
    with tempfile.TemporaryDirectory(prefix="repro-compaction-") as tmp:
        blocks = [
            compaction_table(
                run_compaction_sweep(
                    Path(tmp),
                    shards=args.shards,
                    clients=args.clients,
                    batches_per_client=args.batches,
                    records_per_batch=args.records_per_batch,
                    keyspace=args.keyspace,
                    value_bytes=args.value_bytes,
                    cold_records=args.cold_records,
                    manual_every=args.manual_every,
                )
            ),
            fold_table(run_fold_sweep(Path(tmp), puts=args.fold_puts)),
        ]
    return "\n\n".join(blocks)


def cmd_pipeline(args: argparse.Namespace) -> str:
    with tempfile.TemporaryDirectory(prefix="repro-pipeline-") as tmp:
        return pipeline_table(
            run_pipeline_sweep(
                Path(tmp),
                shard_counts=tuple(args.shards),
                depths=tuple(args.depths),
                records=args.records,
                batch_size=args.batch_size,
                payload_bytes=args.payload_bytes,
                repeats=args.repeats,
                flush_latency_s=args.flush_latency_ms / 1000.0,
            )
        )


def cmd_fleet(args: argparse.Namespace) -> str:
    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmp:
        return fleet_sweep_table(
            run_fleet_sweep(
                Path(tmp),
                worker_counts=tuple(args.workers),
                sessions=args.sessions,
                batches_per_session=args.batches,
                records_per_batch=args.records_per_batch,
                payload_bytes=args.payload_bytes,
                commit_barrier_ms=args.commit_barrier_ms,
                pipeline_depth=args.pipeline_depth,
            )
        )


def cmd_rebalance(args: argparse.Namespace) -> str:
    with tempfile.TemporaryDirectory(prefix="repro-rebalance-") as tmp:
        report = run_rebalance_drill(
            Path(tmp),
            workers=args.workers,
            batches=args.batches,
            records_per_batch=args.records_per_batch,
            grow_after_batches=args.grow_after,
            placement=args.placement,
            transport=args.transport,
        )
    if args.json:
        write_rebalance_json(report, Path(args.json))
    return rebalance_table(report)


def cmd_fanout(args: argparse.Namespace) -> str:
    with tempfile.TemporaryDirectory(prefix="repro-fanout-") as tmp:
        report = run_fanout_sweep(
            Path(tmp),
            members=args.members,
            replicas=args.replicas,
            commit_barrier_s=args.commit_barrier_ms / 1000.0,
            read_stall_s=args.read_stall_ms / 1000.0,
            puts=args.puts,
            merges=args.merges,
            hedge_delay_s=args.hedge_delay_ms / 1000.0,
            hedge_after_s=args.hedge_after_ms / 1000.0,
        )
    if args.json:
        write_fanout_json(report, Path(args.json))
    return fanout_table(report)


def cmd_reopen(args: argparse.Namespace) -> str:
    with tempfile.TemporaryDirectory(prefix="repro-reopen-") as tmp:
        points = run_reopen_sweep(
            Path(tmp),
            backends=tuple(args.backends),
            shard_counts=tuple(args.shards),
            history_sizes=tuple(args.history),
            repeats=args.repeats,
        )
    if args.json:
        write_reopen_json(points, Path(args.json))
    return reopen_table(points)


def cmd_scaling(args: argparse.Namespace) -> str:
    return scaling_table(run_scaling())


def cmd_entropy(args: argparse.Namespace) -> str:
    return entropy_table(run_entropy_report(sample_bytes=args.sample_bytes))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Regenerate the evaluation figures/tables of Groth et al. (HPDC 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("micro", help="PReServ record round-trip micro-benchmark")
    p.add_argument("--messages", type=int, default=200)
    p.set_defaults(fn=cmd_micro)

    p = sub.add_parser("fig4", help="Figure 4: recording overhead")
    p.set_defaults(fn=cmd_fig4)

    p = sub.add_parser(
        "fig4b", help="Figure 4b: concurrent-client throughput sweep"
    )
    p.add_argument("--clients", type=int, nargs="*", default=[1, 2, 4, 8, 16, 32])
    p.add_argument("--stores", type=int, nargs="*", default=[1, 4])
    p.add_argument("--ops-per-client", type=int, default=40)
    p.add_argument("--query-ratio", type=float, default=0.8)
    p.add_argument("--no-cache", action="store_true")
    p.set_defaults(fn=cmd_fig4b)

    p = sub.add_parser("fig5", help="Figure 5: use-case query performance")
    p.add_argument("--sizes", type=int, nargs="*", default=None)
    p.set_defaults(fn=cmd_fig5)

    p = sub.add_parser("granularity", help="A1: granularity ablation")
    p.set_defaults(fn=cmd_granularity)

    p = sub.add_parser("backends", help="A2: store backend ablation")
    p.add_argument("--records", type=int, default=500)
    p.set_defaults(fn=cmd_backends)

    p = sub.add_parser("compress", help="A3: compressibility table")
    p.add_argument("--sample-bytes", type=int, default=2000)
    p.add_argument("--permutations", type=int, default=5)
    p.set_defaults(fn=cmd_compress)

    p = sub.add_parser("scaling", help="A4: distributed store scaling")
    p.set_defaults(fn=cmd_scaling)

    p = sub.add_parser(
        "shards", help="A7: sharded KVLog — concurrent bulk ingest vs shard count"
    )
    p.add_argument("--shards", type=int, nargs="*", default=[1, 2, 4, 8])
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--batches", type=int, default=40)
    p.add_argument("--records-per-batch", type=int, default=4)
    p.add_argument("--value-bytes", type=int, default=256)
    p.add_argument("--repeats", type=int, default=3)
    p.set_defaults(fn=cmd_shards)

    p = sub.add_parser(
        "compaction",
        help="A8: background compaction — scheduler vs stop-the-world churn",
    )
    p.add_argument("--shards", type=int, default=8)
    p.add_argument("--clients", type=int, default=2)
    p.add_argument("--batches", type=int, default=96)
    p.add_argument("--records-per-batch", type=int, default=16)
    p.add_argument("--keyspace", type=int, default=32)
    p.add_argument("--value-bytes", type=int, default=2048)
    p.add_argument("--cold-records", type=int, default=2000)
    p.add_argument("--manual-every", type=int, default=8)
    p.add_argument("--fold-puts", type=int, default=256)
    p.set_defaults(fn=cmd_compaction)

    p = sub.add_parser(
        "pipeline",
        help="A9: pipelined decode→commit ingest — depth × shards grid",
    )
    p.add_argument("--shards", type=int, nargs="*", default=[1, 4])
    p.add_argument("--depths", type=int, nargs="*", default=[1, 2, 4, 8])
    p.add_argument("--records", type=int, default=1024)
    p.add_argument("--batch-size", type=int, default=128)
    p.add_argument("--payload-bytes", type=int, default=16384)
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument(
        "--flush-latency-ms",
        type=float,
        default=0.0,
        help="modeled device write-barrier per group commit "
        "(0 = raw host device; ~10 models the paper-era disk)",
    )
    p.set_defaults(fn=cmd_pipeline)

    p = sub.add_parser(
        "fleet",
        help="A10: out-of-process store fleet — bus vs process workers",
    )
    p.add_argument("--workers", type=int, nargs="*", default=[1, 2, 4])
    p.add_argument("--sessions", type=int, default=4)
    p.add_argument("--batches", type=int, default=12)
    p.add_argument("--records-per-batch", type=int, default=8)
    p.add_argument("--payload-bytes", type=int, default=256)
    p.add_argument("--pipeline-depth", type=int, default=1)
    p.add_argument(
        "--commit-barrier-ms",
        type=float,
        default=10.0,
        help="modeled device write-barrier per group commit, applied to "
        "both transports (0 = raw host device; ~10 models the paper-era "
        "disk)",
    )
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser(
        "reopen",
        help="A11: reopen cost vs ingest history, with/without checkpoints",
    )
    p.add_argument("--backends", nargs="*", default=["kvlog"])
    p.add_argument("--shards", type=int, nargs="*", default=[1])
    p.add_argument("--history", type=int, nargs="*", default=[256, 512, 1024])
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument(
        "--json",
        default=None,
        help="also write the sweep as machine-readable JSON to this path",
    )
    p.set_defaults(fn=cmd_reopen)

    p = sub.add_parser(
        "rebalance",
        help="A12: live fleet growth — online migration under write+query load",
    )
    p.add_argument("--workers", type=int, default=3)
    p.add_argument("--batches", type=int, default=30)
    p.add_argument("--records-per-batch", type=int, default=4)
    p.add_argument(
        "--grow-after",
        type=int,
        default=10,
        help="acknowledged batches before add_worker() fires mid-stream",
    )
    p.add_argument(
        "--placement",
        choices=["ring", "modulo"],
        default="ring",
        help="placement rule (ring = consistent hashing, ~1/N moved)",
    )
    p.add_argument(
        "--transport", choices=["inprocess", "process"], default="inprocess"
    )
    p.add_argument(
        "--json",
        default=None,
        help="also write the drill report as machine-readable JSON",
    )
    p.set_defaults(fn=cmd_rebalance)

    p = sub.add_parser(
        "fanout",
        help="A13: scatter-gather fan-out — parallel commits/merges, hedged reads",
    )
    p.add_argument("--members", type=int, default=4)
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument(
        "--commit-barrier-ms",
        type=float,
        default=10.0,
        help="modeled device write-barrier per group commit (commit drill)",
    )
    p.add_argument(
        "--read-stall-ms",
        type=float,
        default=10.0,
        help="modeled per-member read round trip (merge drill)",
    )
    p.add_argument("--puts", type=int, default=12)
    p.add_argument("--merges", type=int, default=5)
    p.add_argument(
        "--hedge-delay-ms",
        type=float,
        default=120.0,
        help="scripted server-recv delay on the slow worker (hedge drill)",
    )
    p.add_argument(
        "--hedge-after-ms",
        type=float,
        default=20.0,
        help="hedge budget: fire the peer replica after this long",
    )
    p.add_argument(
        "--json",
        default=None,
        help="also write the sweep report as machine-readable JSON",
    )
    p.set_defaults(fn=cmd_fanout)

    p = sub.add_parser("bulk", help="A5: bulk ingest — put vs put_many group commit")
    p.add_argument("--records", type=int, default=2000)
    p.add_argument("--batch-size", type=int, default=256)
    p.set_defaults(fn=cmd_bulk)

    p = sub.add_parser("entropy", help="A6: entropy analysis per grouping")
    p.add_argument("--sample-bytes", type=int, default=3000)
    p.set_defaults(fn=cmd_entropy)

    p = sub.add_parser("all", help="run everything")
    p.set_defaults(fn=None)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "all":
        blocks = [
            (_section("E1: PReServ micro-benchmark"), microbench_table(run_microbench())),
            (_section("E2: Figure 4 — recording overhead"), fig4_table(run_fig4())),
            (
                _section("E2b: Figure 4b — concurrent-client throughput"),
                fig4b_table(run_fig4b()),
            ),
            (_section("E3/E4: Figure 5 — use-case performance"), fig5_table(run_fig5())),
            (_section("A1: granularity ablation"), granularity_table(run_granularity())),
            (_section("A3: compressibility"), compressibility_table(run_compressibility())),
            (_section("A4: distributed store scaling"), scaling_table(run_scaling())),
            (_section("A6: entropy analysis"), entropy_table(run_entropy_report())),
        ]
        with tempfile.TemporaryDirectory(prefix="repro-backends-") as tmp:
            blocks.append(
                (_section("A2: backend ablation"), backends_table(run_backends(Path(tmp))))
            )
        with tempfile.TemporaryDirectory(prefix="repro-bulk-") as tmp:
            blocks.append(
                (
                    _section("A5: bulk ingest — put vs put_many"),
                    bulk_ingest_table(run_bulk_ingest(Path(tmp))),
                )
            )
        with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
            blocks.append(
                (
                    _section("A7: sharded KVLog ingest sweep"),
                    shard_sweep_table(run_shard_sweep(Path(tmp))),
                )
            )
        with tempfile.TemporaryDirectory(prefix="repro-pipeline-") as tmp:
            blocks.append(
                (
                    _section("A9: pipelined decode→commit ingest"),
                    pipeline_table(
                        run_pipeline_sweep(
                            Path(tmp), depths=(1, 4, 8), records=512, repeats=2
                        )
                    ),
                )
            )
        with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmp:
            blocks.append(
                (
                    _section("A10: out-of-process store fleet"),
                    fleet_sweep_table(
                        run_fleet_sweep(Path(tmp), worker_counts=(2, 4))
                    ),
                )
            )
        with tempfile.TemporaryDirectory(prefix="repro-reopen-") as tmp:
            blocks.append(
                (
                    _section("A11: reopen cost ± checkpoints"),
                    reopen_table(
                        run_reopen_sweep(
                            Path(tmp), history_sizes=(256, 512), repeats=2
                        )
                    ),
                )
            )
        with tempfile.TemporaryDirectory(prefix="repro-compaction-") as tmp:
            blocks.append(
                (
                    _section("A8: background compaction vs stop-the-world"),
                    compaction_table(run_compaction_sweep(Path(tmp)))
                    + "\n\n"
                    + fold_table(run_fold_sweep(Path(tmp))),
                )
            )
        for title, body in blocks:
            print(title)
            print(body)
            print()
        return 0
    print(args.fn(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
