"""Online shard migration: stream, tail-drain, atomic cutover.

The §7 ``consolidate()`` was stop-the-world: quiesce the fleet, walk every
member, merge into one target.  This module is its live replacement — the
engine behind ``StoreRouter.add_member`` / ``decommission`` and the
rebalance drills:

1. **begin** — the router's :class:`~repro.store.placement.PlacementMap`
   gains a *pending* spec.  From this instant every write persists on the
   **union** of its current and pending replica sets before it acks
   (dual-commit), so whatever happens next — cutover or rollback — no
   acked write can be lost.
2. **stream** — each moving key's records are streamed from its current
   owner to the members that gain it, in pages, over the same
   ``scan_suffix``/``replicate push`` surface the supervisor's resync
   uses (so it works identically against in-process backends and
   socket-served workers).  Pushes skip duplicates, which is what makes a
   crashed or repeated migration *resumable*: re-running it re-streams
   cheaply and converges.
3. **tail-drain** — the stream's suffix is re-pulled until a quiet round
   (bounded by :data:`MAX_TAIL_ROUNDS`; correctness never depends on the
   drain, because every post-begin write was dual-committed — the drain
   only shrinks the duplicate-skip work a retry would do).
4. **cutover** — ``commit_transition()`` atomically flips the route and
   bumps the placement epoch (persisted write-new → fsync → rename).  The
   epoch rides every federated freshness vector, so all cached merges
   built under the old placement invalidate at the flip.

Any failure before cutover aborts the transition: the placement rolls
back to the current rule (which every acked write still satisfies — that
is the dual-commit invariant) and the partial stream on the new members
is harmless debris the next attempt re-deduplicates.

``on_phase`` is the crash-simulation hook: the fault-injection tests
raise from exact phase boundaries ("begin", "stream", "tail", "cutover")
to pin down every window of the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.core.passertion import (
    GroupAssertion,
    InteractionKey,
    PAssertion,
    parse_passertion,
)
from repro.soa.envelope import Fault
from repro.soa.xmldoc import XmlElement, parse_xml
from repro.store.interface import (
    DuplicateAssertionError,
    interaction_scope,
)
from repro.store.placement import PlacementSpec

Assertion = Union[PAssertion, GroupAssertion]

#: cap on tail-drain rounds under continuous ingest.  The drain is an
#: optimization (dual-commit already covers concurrent writes), so under
#: a write stream that never goes quiet the migration stops chasing the
#: head after this many rounds and cuts over anyway.
MAX_TAIL_ROUNDS = 8


class MigrationError(RuntimeError):
    """A migration failed and was rolled back (placement unchanged).

    ``phase`` names the protocol window the failure hit ("begin",
    "stream", "tail", "cutover"); ``committed`` reports whether the
    cutover had already happened (a failure *after* the flip leaves the
    new placement in force — re-running the migration is then a no-op).
    """

    def __init__(self, message: str, phase: str, committed: bool = False):
        super().__init__(message)
        self.phase = phase
        self.committed = committed


@dataclass
class MigrationReport:
    """What one rebalance did: stream volume, key movement, cutover epoch."""

    epoch: int
    streamed: int = 0
    skipped: int = 0
    tail_rounds: int = 0
    #: distinct interaction scopes whose replica set changed.
    moved_keys: int = 0
    #: distinct interaction scopes the stream inspected (owner-side).
    total_keys: int = 0
    per_source: Dict[str, int] = field(default_factory=dict)

    @property
    def moved_fraction(self) -> float:
        return self.moved_keys / self.total_keys if self.total_keys else 0.0


def _is_duplicate(exc: BaseException) -> bool:
    if isinstance(exc, DuplicateAssertionError):
        return True
    return isinstance(exc, Fault) and exc.code == "duplicate-assertion"


def _assertion_from_text(text: str) -> Assertion:
    el = parse_xml(text)
    if el.name == "group-assertion":
        return GroupAssertion.from_xml(el)
    return parse_passertion(el)


def _scan_page(source: object, after: int, limit: int) -> List[Tuple[int, str]]:
    """One ``(sequence, assertion_xml)`` page from any store.

    Log-backed stores and :class:`~repro.fleet.remote.RemoteStore` expose
    ``scan_suffix`` (the :class:`~repro.store.interface.ResyncCapable`
    surface); a store without one (the memory backend) is paged over a
    synthetic enumeration of ``all_assertions()`` — appends only extend
    that enumeration, so pre-begin records keep stable positions.
    """
    scan = getattr(source, "scan_suffix", None)
    if scan is not None:
        return scan(after=after, limit=limit)
    assertions = list(source.all_assertions())  # type: ignore[attr-defined]
    start = max(after - 1, 0)  # sequence i+1 lives at list index i
    return [
        (start + offset + 1, assertion.to_xml().serialize())
        for offset, assertion in enumerate(assertions[start : start + limit])
    ]


def _watermark(source: object) -> int:
    """The source's current max sequence (page-bounding a stream pass).

    A pass streams only up to the watermark observed when it started —
    without the bound, a pass racing a continuous writer chases the log
    head forever and the tail-drain round cap never engages.
    """
    watermark = getattr(source, "sequence_watermark", None)
    if watermark is not None:
        return watermark()
    return len(list(source.all_assertions()))  # type: ignore[attr-defined]


def _push(dest: object, batch: List[Tuple[Assertion, str]]) -> Tuple[int, int]:
    """Apply a batch on ``dest``, skipping duplicates; ``(applied, skipped)``."""
    push = getattr(dest, "replicate_push", None)
    if push is not None:
        return push([parse_xml(text) for _assertion, text in batch])
    applied = skipped = 0
    for assertion, _text in batch:
        try:
            dest.put(assertion)  # type: ignore[attr-defined]
        except BaseException as exc:
            if _is_duplicate(exc):
                skipped += 1
                continue
            raise
        applied += 1
    return applied, skipped


def iter_assertions(
    store: object, page: int = 256
) -> Iterable[Tuple[Assertion, str]]:
    """Every assertion a store holds, as ``(assertion, xml_text)`` pairs.

    The consolidation walk, generalized: pages over ``scan_suffix`` when
    the store has one (which lets consolidation run against socket-served
    workers, whose ``all_assertions`` does not cross the wire) and falls
    back to ``all_assertions()`` otherwise.
    """
    if getattr(store, "scan_suffix", None) is None:
        for assertion in store.all_assertions():  # type: ignore[attr-defined]
            yield assertion, assertion.to_xml().serialize()
        return
    cursor = 0
    while True:
        entries = _scan_page(store, cursor, page)
        if not entries:
            return
        for seq, text in entries:
            cursor = max(cursor, seq + 1)
            yield _assertion_from_text(text), text


def migrate_keys(
    source: object,
    dest: object,
    keys: Optional[Iterable[InteractionKey]] = None,
    *,
    predicate: Optional[Callable[[InteractionKey], bool]] = None,
    include_groups: bool = False,
    page: int = 256,
    after: int = 0,
) -> Tuple[int, int, int]:
    """Stream ``source``'s slice of records into ``dest``.

    ``keys`` restricts the stream to those interactions (``None`` streams
    every p-assertion, further filtered by ``predicate`` when given);
    ``include_groups`` additionally streams broadcast group assertions.
    Duplicates are skipped on the destination, so re-running a crashed
    call is free.  Returns ``(applied, skipped, cursor)`` — pass the
    cursor back as ``after`` to drain only the suffix written since.
    """
    scopes = (
        {interaction_scope(key) for key in keys} if keys is not None else None
    )
    applied = skipped = 0
    cursor = after
    while True:
        entries = _scan_page(source, cursor, page)
        if not entries:
            return applied, skipped, cursor
        batch: List[Tuple[Assertion, str]] = []
        for seq, text in entries:
            cursor = max(cursor, seq + 1)
            assertion = _assertion_from_text(text)
            if isinstance(assertion, GroupAssertion):
                if include_groups:
                    batch.append((assertion, text))
                continue
            key = assertion.interaction_key
            if scopes is not None and interaction_scope(key) not in scopes:
                continue
            if predicate is not None and not predicate(key):
                continue
            batch.append((assertion, text))
        if batch:
            done, skip = _push(dest, batch)
            applied += done
            skipped += skip


def _stream_from_source(
    router: object,
    source_name: str,
    old: PlacementSpec,
    new: PlacementSpec,
    new_members: List[str],
    *,
    after: int,
    page: int,
    moved: Set[str],
    total: Set[str],
    include_groups: bool,
) -> Tuple[int, int, int]:
    """Stream one source's owner-slice to every member that gains it.

    Only the *current owner* of a key streams it (the other replicas
    hold the same bytes; streaming from one source avoids R-fold
    re-pushes).  Broadcast group assertions go to brand-new members only,
    and only from the one source with ``include_groups`` (every existing
    member already holds every broadcast).
    """
    source = router.store(source_name)  # type: ignore[attr-defined]
    cursor = after
    applied = skipped = 0
    limit_seq = _watermark(source)
    while cursor <= limit_seq:
        entries = _scan_page(source, cursor, page)
        if not entries:
            break
        batches: Dict[str, List[Tuple[Assertion, str]]] = {}
        for seq, text in entries:
            cursor = max(cursor, seq + 1)
            assertion = _assertion_from_text(text)
            if isinstance(assertion, GroupAssertion):
                if include_groups:
                    for dest in new_members:
                        batches.setdefault(dest, []).append((assertion, text))
                continue
            scope = interaction_scope(assertion.interaction_key)
            old_set = old.replica_set_for_scope(scope)
            if old_set[0] != source_name:
                continue
            total.add(scope)
            new_set = new.replica_set_for_scope(scope)
            if set(new_set) != set(old_set):
                moved.add(scope)
            for dest in new_set:
                if dest not in old_set:
                    batches.setdefault(dest, []).append((assertion, text))
        for dest_name, batch in batches.items():
            done, skip = _push(router.store(dest_name), batch)  # type: ignore[attr-defined]
            applied += done
            skipped += skip
    return applied, skipped, cursor


def rebalance(
    router: object,
    spec: PlacementSpec,
    *,
    page: int = 256,
    on_phase: Optional[Callable[[str], None]] = None,
    max_tail_rounds: int = MAX_TAIL_ROUNDS,
) -> MigrationReport:
    """Migrate a router live from its current placement to ``spec``.

    Every member of ``spec`` must already be registered with the router
    (``StoreRouter.add_member`` handles registration + rebalance in one
    call).  On any failure before the cutover the transition is aborted —
    placement, routing and caches roll back, and the error is re-raised
    as :class:`MigrationError`; re-running the rebalance resumes via
    duplicate-skip.  A failure *at or after* the cutover (``on_phase``
    raising from ``"cutover"``) leaves the new placement committed and
    reports ``committed=True``.
    """
    placement = router.placement  # type: ignore[attr-defined]
    old = placement.current
    known = set(router.store_names)  # type: ignore[attr-defined]
    missing = [m for m in spec.members if m not in known]
    if missing:
        raise ValueError(
            f"pending members {missing} are not registered with the router; "
            f"add their stores before rebalancing onto them"
        )
    notify = on_phase or (lambda phase: None)
    placement.begin_transition(spec)
    report = MigrationReport(epoch=placement.epoch)
    committed = False
    moved: Set[str] = set()
    total: Set[str] = set()
    new_members = [m for m in spec.members if m not in old.members]
    try:
        notify("begin")
        cursors: Dict[str, int] = {}
        for index, source_name in enumerate(old.members):
            applied, skipped, cursor = _stream_from_source(
                router,
                source_name,
                old,
                spec,
                new_members,
                after=0,
                page=page,
                moved=moved,
                total=total,
                include_groups=(index == 0 and bool(new_members)),
            )
            cursors[source_name] = cursor
            report.streamed += applied
            report.skipped += skipped
            report.per_source[source_name] = applied
        notify("stream")
        # Tail drain: chase each source's suffix until a quiet round.
        while report.tail_rounds < max_tail_rounds:
            extra = 0
            for index, source_name in enumerate(old.members):
                applied, skipped, cursor = _stream_from_source(
                    router,
                    source_name,
                    old,
                    spec,
                    new_members,
                    after=cursors[source_name],
                    page=page,
                    moved=moved,
                    total=total,
                    include_groups=(index == 0 and bool(new_members)),
                )
                cursors[source_name] = cursor
                extra += applied + skipped
                report.streamed += applied
                report.skipped += skipped
                report.per_source[source_name] = (
                    report.per_source.get(source_name, 0) + applied
                )
            if extra == 0:
                break
            report.tail_rounds += 1
        notify("tail")
        placement.commit_transition()
        committed = True
        report.epoch = placement.epoch
        notify("cutover")
    except BaseException as exc:
        if not committed:
            placement.abort_transition()
        if isinstance(exc, MigrationError):
            raise
        phase = "cutover" if committed else "stream"
        raise MigrationError(
            f"migration to {list(spec.members)} "
            f"{'failed after cutover' if committed else 'aborted (rolled back)'}"
            f": {type(exc).__name__}: {exc}",
            phase=phase,
            committed=committed,
        ) from exc
    report.moved_keys = len(moved)
    report.total_keys = len(total)
    notify("done")
    return report


def consolidate_into(router: object, target: object) -> Tuple[int, int]:
    """Everything-to-one-destination merge over the migration stream.

    The §7 consolidation facility, rebuilt on :func:`iter_assertions`:
    broadcast group assertions are deduplicated across members, and
    p-assertion handling depends on what the placement history allows —
    under pristine R=1 placement (never rebalanced) a duplicate
    p-assertion is a routing-invariant violation and raises; once the
    fleet is replicated or has ever rebalanced, duplicates are expected
    (replica copies; append-only sources keep moved keys' old bytes) and
    are silently deduplicated.  Returns ``(p_moved, group_moved)``.
    """
    moved_p = moved_g = 0
    seen_groups: Set[tuple] = set()
    seen_p: Set[tuple] = set()
    placement = getattr(router, "placement", None)
    strict = (
        router.replicas == 1  # type: ignore[attr-defined]
        and (placement is None or placement.epoch == 0)
    )
    for name in router.store_names:  # type: ignore[attr-defined]
        for assertion, _text in iter_assertions(router.store(name)):  # type: ignore[attr-defined]
            if isinstance(assertion, GroupAssertion):
                dedupe_key = (
                    assertion.group_id,
                    assertion.member,
                    assertion.asserter,
                    assertion.sequence,
                )
                if dedupe_key in seen_groups:
                    continue
                seen_groups.add(dedupe_key)
                target.put(assertion)  # type: ignore[attr-defined]
                moved_g += 1
                continue
            dedupe_key = (assertion.interaction_key, assertion.store_key)
            if dedupe_key in seen_p:
                if strict:
                    raise RuntimeError(
                        f"consolidation found a duplicated p-assertion "
                        f"(routing invariant violated): {dedupe_key}"
                    )
                continue
            seen_p.add(dedupe_key)
            try:
                target.put(assertion)  # type: ignore[attr-defined]
            except BaseException as exc:
                if _is_duplicate(exc):
                    if strict:
                        raise RuntimeError(
                            f"consolidation found a duplicated p-assertion "
                            f"(routing invariant violated): {exc}"
                        ) from exc
                    continue
                raise
            moved_p += 1
    return moved_p, moved_g


__all__ = [
    "MAX_TAIL_ROUNDS",
    "MigrationError",
    "MigrationReport",
    "consolidate_into",
    "iter_assertions",
    "migrate_keys",
    "rebalance",
]
