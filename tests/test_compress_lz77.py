"""Tests for the LZ77 matcher and the gz-like codec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress.gzlike import GzLikeCompressor
from repro.compress.lz77 import (
    Literal,
    Match,
    MIN_MATCH,
    detokenize,
    tokenize,
)


class TestTokens:
    def test_match_length_bounds(self):
        with pytest.raises(ValueError):
            Match(length=2, distance=1)
        with pytest.raises(ValueError):
            Match(length=259, distance=1)

    def test_match_distance_bounds(self):
        with pytest.raises(ValueError):
            Match(length=4, distance=0)
        with pytest.raises(ValueError):
            Match(length=4, distance=40000)


class TestTokenize:
    def test_empty(self):
        assert tokenize(b"") == []

    def test_incompressible_all_literals(self):
        data = bytes(range(200))
        tokens = tokenize(data)
        assert all(isinstance(t, Literal) for t in tokens)
        assert detokenize(iter(tokens)) == data

    def test_repeated_block_produces_match(self):
        data = b"abcdefgh" * 10
        tokens = tokenize(data)
        assert any(isinstance(t, Match) for t in tokens)

    def test_run_of_same_byte_uses_overlapping_match(self):
        data = b"x" * 100
        tokens = tokenize(data)
        matches = [t for t in tokens if isinstance(t, Match)]
        assert matches, "expected RLE-style self-referential match"
        assert matches[0].distance == 1

    def test_min_match_respected(self):
        for token in tokenize(b"abcabcabc"):
            if isinstance(token, Match):
                assert token.length >= MIN_MATCH

    def test_roundtrip_structured_text(self):
        data = (b"MKTAYIAKQR" * 30) + (b"QISFVKSHFS" * 30)
        assert detokenize(iter(tokenize(data))) == data


class TestDetokenize:
    def test_invalid_distance_rejected(self):
        with pytest.raises(ValueError):
            detokenize(iter([Literal(65), Match(length=3, distance=5)]))


class TestGzLike:
    def setup_method(self):
        self.codec = GzLikeCompressor()

    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"ab",
            b"abcabcabcabcabc",
            b"x" * 1000,
            bytes(range(256)) * 4,
        ],
    )
    def test_roundtrip(self, data):
        assert self.codec.decompress(self.codec.compress(data)) == data

    def test_compresses_redundant_data(self):
        data = b"0101100110" * 500
        assert len(self.codec.compress(data)) < len(data) // 2

    def test_protein_like_text_compresses(self):
        data = (b"AAAALLLLVVVV" * 200)
        assert self.codec.compressed_size(data) < len(data)

    def test_ratio_requires_nonempty(self):
        with pytest.raises(ValueError):
            self.codec.ratio(b"")

    @given(st.binary(min_size=0, max_size=4000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        assert self.codec.decompress(self.codec.compress(data)) == data

    @given(
        st.text(alphabet="01", min_size=0, max_size=3000).map(str.encode)
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_low_entropy_property(self, data):
        assert self.codec.decompress(self.codec.compress(data)) == data
