#!/usr/bin/env python
"""Use case 2 walkthrough: catching the nucleotide-for-protein mistake.

The nucleotide alphabet {A, C, G, T} is a subset of the amino-acid
alphabet, so a DNA sequence accidentally fed to the protein-only
Encode-by-Groups service raises *no error anywhere* — the workflow runs to
completion and produces a meaningless number.  A reviewer later validates
the recorded provenance against the registry's semantic annotations and the
ontology, and the type mismatch surfaces.

Run:  python examples/semantic_validation.py
"""

from __future__ import annotations

from repro.app import Experiment, ExperimentConfig
from repro.core.client import ProvenanceQueryClient
from repro.registry.client import RegistryClient
from repro.usecases.semantic import validate_session


def main() -> None:
    experiment = Experiment(
        ExperimentConfig(sample_bytes=3000, n_permutations=3, record_scripts=True)
    )

    print("A correct run first: sample drawn from the protein database.")
    good = experiment.run()
    print(f"  compressibility: {good.compressibility('gz-like'):.4f}")

    print("\nNow the accident: the sample comes from the nucleotide database.")
    bad = experiment.run(
        sample_source_endpoint="nucleotide-db",
        sample_source_operation="fetch",
    )
    print("  the workflow ran WITHOUT ANY ERROR (syntactically fine)...")
    print(f"  compressibility: {bad.compressibility('gz-like'):.4f}  <- meaningless!")

    print("\nThe reviewer validates both sessions against the registry:")
    store = ProvenanceQueryClient(experiment.bus, client_endpoint="reviewer-store")
    registry = RegistryClient(experiment.bus, client_endpoint="reviewer-registry")
    ontology = registry.get_ontology()

    for label, result in (("correct run", good), ("suspect run", bad)):
        report = validate_session(
            store, registry, result.session_id, ontology=ontology
        )
        status = "VALID" if report.valid else "SEMANTICALLY INVALID"
        print(f"\n  {label} ({result.session_id}): {status}")
        print(f"    interactions checked: {report.interactions_checked}"
              f" ({report.store_calls} store calls, "
              f"{report.registry_calls} registry calls)")
        for violation in report.violations:
            print(f"    VIOLATION: {violation.describe()}")

    report = validate_session(store, registry, bad.session_id, ontology=ontology)
    assert not report.valid
    v = report.violations[0]
    assert (v.produced_type, v.consumed_type) == (
        "nucleotide-sequence",
        "amino-acid-sequence",
    )
    print("\nThe ontology knows nucleotide-sequence is not an amino-acid"
          " sequence,\neven though every character looked legal. QED.")


if __name__ == "__main__":
    main()
