"""Compression substrate for the compressibility experiment.

The paper measures protein compressibility with gzip, bzip2 and ppmz.  Those
are binaries we substitute with from-scratch, lossless implementations of the
same algorithm families:

* ``gz-like``  — LZ77 (hash-chain matcher) + canonical Huffman back end
  (:mod:`repro.compress.lz77`),
* ``bz-like``  — block-wise Burrows-Wheeler transform + move-to-front +
  zero-run-length encoding + Huffman (:mod:`repro.compress.bwt`,
  :mod:`repro.compress.mtf`),
* ``ppm-like`` — PPM context modelling with escape method C over an
  arithmetic coder (:mod:`repro.compress.ppm`,
  :mod:`repro.compress.arithmetic`).

Fast codecs backed by the standard library (``zlib``/``bz2``) are registered
alongside for large benchmark sweeps.  All codecs satisfy the
:class:`~repro.compress.api.Compressor` interface and are looked up through
:func:`~repro.compress.api.get_compressor`.
"""

from repro.compress.api import (
    Compressor,
    available_compressors,
    compressed_size,
    get_compressor,
    register_compressor,
)
from repro.compress.gzlike import GzLikeCompressor
from repro.compress.bzlike import BzLikeCompressor
from repro.compress.ppm import PPMCompressor
from repro.compress.stdcodecs import Bz2Compressor, StoredCompressor, ZlibCompressor

__all__ = [
    "Bz2Compressor",
    "BzLikeCompressor",
    "Compressor",
    "GzLikeCompressor",
    "PPMCompressor",
    "StoredCompressor",
    "ZlibCompressor",
    "available_compressors",
    "compressed_size",
    "get_compressor",
    "register_compressor",
]
