"""LZ77 with hash-chain match finding.

The front half of the ``gz-like`` codec: a sliding-window matcher in the
DEFLATE family (32 KiB window, matches of 3..258 bytes) producing a token
stream of literals and (length, distance) copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

WINDOW_SIZE = 32 * 1024
MIN_MATCH = 3
MAX_MATCH = 258
#: Cap on hash-chain probes per position; trades ratio for speed.
MAX_CHAIN = 64


@dataclass(frozen=True)
class Literal:
    byte: int


@dataclass(frozen=True)
class Match:
    length: int
    distance: int

    def __post_init__(self) -> None:
        if not MIN_MATCH <= self.length <= MAX_MATCH:
            raise ValueError(f"match length {self.length} out of range")
        if not 1 <= self.distance <= WINDOW_SIZE:
            raise ValueError(f"match distance {self.distance} out of range")


Token = Union[Literal, Match]


def _hash3(data: bytes, i: int) -> int:
    return (data[i] << 10) ^ (data[i + 1] << 5) ^ data[i + 2]


def tokenize(data: bytes, max_chain: int = MAX_CHAIN) -> List[Token]:
    """Greedy LZ77 parse of ``data`` into literals and matches."""
    n = len(data)
    tokens: List[Token] = []
    # head[h] = most recent position with hash h; prev[i] = previous position
    # in i's chain.  Chains are pruned by window distance during probing.
    head: dict = {}
    prev: List[int] = [0] * n
    i = 0
    while i < n:
        best_len = 0
        best_dist = 0
        if i + MIN_MATCH <= n:
            h = _hash3(data, i)
            candidate: Optional[int] = head.get(h)
            chain = 0
            limit = min(MAX_MATCH, n - i)
            while candidate is not None and chain < max_chain:
                dist = i - candidate
                if dist > WINDOW_SIZE:
                    break
                # Extend the match.
                length = 0
                while length < limit and data[candidate + length] == data[i + length]:
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = dist
                    if length >= limit:
                        break
                nxt = prev[candidate]
                candidate = nxt if nxt != candidate else None
                chain += 1
            # Insert current position into the chain.
            old = head.get(h)
            prev[i] = old if old is not None else i
            head[h] = i
        if best_len >= MIN_MATCH:
            tokens.append(Match(length=best_len, distance=best_dist))
            # Insert skipped positions so later matches can reference them.
            end = i + best_len
            j = i + 1
            while j < min(end, n - MIN_MATCH + 1):
                h = _hash3(data, j)
                old = head.get(h)
                prev[j] = old if old is not None else j
                head[h] = j
                j += 1
            i = end
        else:
            tokens.append(Literal(data[i]))
            i += 1
    return tokens


def detokenize(tokens: Iterator[Token]) -> bytes:
    """Reconstruct the original bytes from a token stream."""
    out = bytearray()
    for tok in tokens:
        if isinstance(tok, Literal):
            out.append(tok.byte)
        else:
            if tok.distance > len(out):
                raise ValueError(
                    f"match distance {tok.distance} exceeds output length {len(out)}"
                )
            start = len(out) - tok.distance
            # Overlapping copies are byte-serial by design (RLE-style matches).
            for k in range(tok.length):
                out.append(out[start + k])
    return bytes(out)
