"""Distributed PReServ: the paper's §7 scalability design, implemented.

"PReServ may become a bottleneck when handling p-assertion submission
requests.  To combat such scalability concern, we are undertaking the
design of a distributed version of PReServ, which would allow parallel
submissions into several provenance store instances; additionally,
documentation recorded in different stores should be cross-linked to allow
navigation; a facility is also required to consolidate data into a single
provenance store."

Three pieces:

* :class:`StoreRouter` — deterministically routes each assertion to one of
  several PReServ instances (hash of the interaction key), so submissions
  can proceed in parallel; group assertions are broadcast so every store
  can answer membership queries for navigation.
* **cross-links** — when the router places an interaction's assertion, it
  records a :class:`CrossLink` naming the owning store, and each store keeps
  a ``link`` table mapping foreign interaction ids to their home store, so
  a navigator can hop between stores.
* :func:`consolidate` — merges several stores' contents into one backend,
  deduplicating broadcast group assertions and verifying that no
  p-assertion was lost or duplicated.

The federated query side is :class:`FederatedQueryClient`, which fans a
query out to all member stores and merges results.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.passertion import (
    ActorStatePAssertion,
    GroupAssertion,
    InteractionKey,
    InteractionPAssertion,
    PAssertion,
    ViewKind,
)
from repro.soa.envelope import Fault
from repro.store.fanout import DEFAULT_FANOUT_WORKERS, FanoutExecutor
from repro.store.interface import (
    DuplicateAssertionError,
    ProvenanceStoreInterface,
    StoreCounts,
    interaction_scope,
)
from repro.store.migration import MigrationReport, consolidate_into, rebalance
from repro.store.placement import (
    PLACEMENT_FILE,
    PlacementMap,
    PlacementMismatchError,
    PlacementSpec,
    check_or_init_placement,
)
from repro.store.querycache import GenerationVector

Assertion = Union[PAssertion, GroupAssertion]


def _is_unavailable(exc: BaseException) -> bool:
    """Is this the transport's member-down signature?"""
    if isinstance(exc, Fault):
        return exc.code == "worker-unavailable"
    return isinstance(exc, (ConnectionError, OSError))


def _is_duplicate(exc: BaseException) -> bool:
    """Duplicate rejection, local or over the wire."""
    if isinstance(exc, DuplicateAssertionError):
        return True
    return isinstance(exc, Fault) and exc.code == "duplicate-assertion"


def _journal_key(assertion: Assertion) -> tuple:
    """Identity for repair-journal dedupe (a retried batch journals once)."""
    if isinstance(assertion, GroupAssertion):
        return (
            "group",
            assertion.group_id,
            assertion.member,
            assertion.asserter,
            assertion.sequence,
        )
    return ("passertion", assertion.interaction_key, assertion.store_key)


class PartialCommitError(RuntimeError):
    """A replicated write persisted on some replicas but not all.

    The write was **not acknowledged**: the caller must treat the batch as
    in doubt and may retry it (replicated commits skip duplicates, so a
    retry converges instead of tripping over the replicas that already
    hold the data).  The missing replicas' shares are recorded in the
    router's repair journal and flushed by :meth:`StoreRouter.repair` once
    the members rejoin — so the partial commit is repaired, never silently
    acked.
    """

    def __init__(
        self,
        message: str,
        committed: List[str],
        missing: List[str],
        causes: Optional[Dict[str, BaseException]] = None,
    ):
        super().__init__(message)
        #: members whose share of the write persisted.
        self.committed = committed
        #: members whose share did not persist (journaled for repair).
        self.missing = missing
        #: the underlying per-member failures.
        self.causes = causes or {}


class StoreCloseError(RuntimeError):
    """Aggregated member-close failures from :meth:`StoreRouter.close`.

    ``failures`` holds ``(member_name, exception)`` pairs, one per member
    whose ``close()`` raised — every member was still attempted.
    """

    def __init__(
        self, message: str, failures: List[Tuple[str, BaseException]]
    ):
        super().__init__(message)
        self.failures = failures


@dataclass(frozen=True)
class CrossLink:
    """A navigation pointer: this interaction's records live at ``store``."""

    interaction_key: InteractionKey
    store: str


def _hash_to_bucket(key: InteractionKey, n: int) -> int:
    # Same canonical scope string as shard placement and cache scoping, so
    # every layer agrees on which records belong together.  This is the
    # legacy modulo rule, kept importable (figures, supervisor fallback)
    # and reproduced bit-for-bit by PlacementSpec(mode="modulo").
    digest = hashlib.sha256(interaction_scope(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n


class StoreRouter:
    """Routes assertions across several named PReServ backends.

    Placement is deterministic (rendezvous by key hash), so every client
    computes the same owner without coordination — the property that makes
    *parallel submission* safe.

    With ``replicas=R`` (R > 1) every interaction's records live on R
    members: the owner plus its R-1 ring successors (successor placement
    over the sorted member list).  Writes group-commit to the full replica
    set and acknowledge only when **all R** copies persist; a member-down
    partial commit journals the missing member's share for
    :meth:`repair` and raises :class:`PartialCommitError` — recorded and
    repaired, never silently acked.  Replicated commits skip duplicate
    rejections, so a client retry of an in-doubt batch converges (the
    replicas already holding the data accept it idempotently) instead of
    failing forever.  Reads (see :class:`FederatedQueryClient`) fail over
    to any live replica, which is what makes one worker's death invisible
    to the query side.
    """

    def __init__(
        self,
        stores: Dict[str, ProvenanceStoreInterface],
        on_close: Optional[Callable[[], None]] = None,
        replicas: int = 1,
        placement: Optional[Union[str, PlacementSpec, PlacementMap]] = None,
        fanout_workers: Optional[int] = None,
        hedge_after_s: Optional[float] = None,
    ):
        if not stores:
            raise ValueError("router needs at least one store")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self._names: List[str] = sorted(stores)
        self._stores = dict(stores)
        # Placement: an explicit map (possibly loaded from disk), a spec,
        # a mode name, or None (the legacy modulo rule) — all normalized
        # to one PlacementMap that owns every routing decision.
        if placement is None or isinstance(placement, str):
            self.placement = PlacementMap(
                PlacementSpec(
                    members=tuple(self._names),
                    replicas=replicas,
                    mode=placement or "modulo",
                )
            )
        elif isinstance(placement, PlacementSpec):
            self.placement = PlacementMap(placement)
        elif isinstance(placement, PlacementMap):
            self.placement = placement
        else:
            raise TypeError(
                f"placement must be a mode name, PlacementSpec or "
                f"PlacementMap, not {type(placement).__name__}"
            )
        if set(self.placement.members) != set(self._names):
            raise PlacementMismatchError(
                f"placement members {list(self.placement.members)} do not "
                f"match the router's stores {self._names}"
            )
        if (
            placement is not None
            and not isinstance(placement, str)
            and replicas != 1
            and replicas != self.placement.replicas
        ):
            raise ValueError(
                f"replicas={replicas} contradicts the placement's "
                f"replicas={self.placement.replicas}"
            )
        #: per-store cross-link tables: store name -> {interaction key -> owner}.
        self._links: Dict[str, Dict[InteractionKey, str]] = {
            name: {} for name in self._names
        }
        self.records_routed = 0
        #: members currently treated as down (writes journal instead of
        #: dialing them; reads prefer their replica peers).
        self._degraded: set = set()
        #: members restored but not yet confirmed fresh by a read-side
        #: generation probe (see FederatedQueryClient).
        self._suspect: set = set()
        #: repair journal: member -> journal-key -> assertion it missed.
        self._pending: Dict[str, Dict[tuple, Assertion]] = {}
        #: highest write generation ever observed per member — the read
        #: side's freshness floor for rejoined replicas.
        self._gen_floor: Dict[str, int] = {}
        #: monotonic counter making down-member generation placeholders
        #: unique per observation, so no cached vector revalidates against
        #: an unreachable member.
        self._down_nonce = 0
        self._on_close = on_close
        self._closed = False
        #: guards every piece of mutable routing state above (_degraded,
        #: _suspect, _pending, _gen_floor, _down_nonce, _links,
        #: records_routed): the supervisor's probe thread, repair calls
        #: and the fan-out pool's worker threads all mutate it
        #: concurrently.  Reentrant because mark_degraded &c. are called
        #: both bare and from under the lock.  Never held across a
        #: member round trip.
        self._lock = threading.RLock()
        cap = DEFAULT_FANOUT_WORKERS if fanout_workers is None else fanout_workers
        width = min(len(self._names), cap) if cap > 0 else 0
        #: the router's scatter-gather engine — sized min(members, cap),
        #: lazily started, closed with the router.  fanout_workers=0 (or
        #: 1) selects the byte-identical sequential parity mode.
        self.fanout = FanoutExecutor(width, name="store-fanout")
        #: fleet-level default hedge delay for per-key federated reads
        #: (None/0 = hedging off); FederatedQueryClient inherits it.
        self.hedge_after_s = hedge_after_s

    @property
    def store_names(self) -> List[str]:
        return list(self._names)

    @property
    def replicas(self) -> int:
        return self.placement.replicas

    # -- replica placement ----------------------------------------------------
    def replica_set(self, key: InteractionKey) -> List[str]:
        """The R members holding this interaction, owner first.

        Delegated to the placement map's *current* rule — modulo
        successor placement by default (bit-identical to the original
        hard-coded rule), consistent-hash ring placement under
        ``mode="ring"``.
        """
        return self.placement.replica_set(key)

    def write_set(self, key: InteractionKey) -> List[str]:
        """Where this key's writes must persist before they ack.

        Equal to :meth:`replica_set` except during a migration, when it
        is the union of the current and pending replica sets — the
        dual-commit rule that makes acked writes survive cutover and
        rollback alike.
        """
        return self.placement.write_set(key)

    def read_set(self, key: InteractionKey) -> List[str]:
        """Read preference order: current replicas first, pending-only
        members (during a migration) as extra failover targets."""
        return self.placement.read_set(key)

    # -- degraded-member bookkeeping -------------------------------------------
    @property
    def degraded_members(self) -> List[str]:
        with self._lock:
            return sorted(self._degraded)

    def mark_degraded(self, name: str) -> None:
        """Treat ``name`` as down: writes journal for it, reads avoid it."""
        if name not in self._stores:
            raise KeyError(f"unknown store {name!r}")
        with self._lock:
            self._degraded.add(name)

    def mark_restored(self, name: str) -> None:
        """``name`` is back (restarted + resynced): route traffic again.

        The member stays *suspect* until a read-side generation probe
        confirms it reports at least the highest generation ever observed
        from it — reads prefer its replica peers until then.
        """
        if name not in self._stores:
            raise KeyError(f"unknown store {name!r}")
        with self._lock:
            self._degraded.discard(name)
            self._suspect.add(name)

    @property
    def suspect_members(self) -> List[str]:
        with self._lock:
            return sorted(self._suspect)

    def confirm_fresh(self, name: str) -> bool:
        """Probe a suspect member's generation against its floor.

        True (and the suspect mark cleared) iff the member answers with a
        generation >= the highest this router ever observed from it.
        The generation round trip runs outside the router lock.
        """
        with self._lock:
            if name not in self._suspect:
                return name not in self._degraded
        try:
            generation = self._stores[name].generation
        except BaseException as exc:
            if _is_unavailable(exc):
                self.mark_degraded(name)
                return False
            raise
        with self._lock:
            if generation >= self._gen_floor.get(name, 0):
                self._suspect.discard(name)
                self._gen_floor[name] = generation
                return True
        return False

    # -- repair journal --------------------------------------------------------
    def _journal(self, name: str, assertions: Iterable[Assertion]) -> None:
        with self._lock:
            table = self._pending.setdefault(name, {})
            for assertion in assertions:
                table[_journal_key(assertion)] = assertion

    def pending_repairs(self) -> Dict[str, int]:
        """Outstanding journal sizes per member (empty when fully healed)."""
        with self._lock:
            return {
                name: len(table)
                for name, table in self._pending.items()
                if table
            }

    def repair(self, name: Optional[str] = None) -> int:
        """Flush the repair journal to rejoined members; returns the number
        of assertions pushed (duplicates the member already held included).

        Skips members still marked degraded.  A member that fails again
        mid-repair keeps its remaining journal and is re-marked degraded.
        Members are flushed concurrently (each member's journal stays in
        order); per-member outcomes are aggregated in sorted-name order.
        """
        with self._lock:
            targets = [name] if name is not None else sorted(self._pending)
        results = self.fanout.scatter(targets, self._repair_member)
        repaired = 0
        for result in results:
            if result.error is not None:
                raise result.error
            repaired += result.value
        return repaired

    def _repair_member(self, member: str) -> int:
        with self._lock:
            table = self._pending.get(member)
            if not table or member in self._degraded:
                return 0
            items = list(table.items())
        store = self._stores[member]
        repaired = 0
        for jkey, assertion in items:
            try:
                store.put(assertion)
            except BaseException as exc:
                if _is_duplicate(exc):
                    pass  # already held (e.g. resync got there first)
                elif _is_unavailable(exc):
                    self.mark_degraded(member)
                    break
                else:
                    raise
            with self._lock:
                table.pop(jkey, None)
            repaired += 1
        with self._lock:
            if not self._pending.get(member):
                self._pending.pop(member, None)
        return repaired

    def close(self) -> None:
        """Close every member store (stopping any attached maintenance).

        The teardown entry point for factory-built fleets — callers hold
        the router, not the members, so the router owns shutdown.
        Idempotent, and *every* member is attempted even when one fails
        (a dead process-fleet worker must not leak its siblings'
        processes or fsync handles): per-member errors are collected and
        re-raised together as one :class:`StoreCloseError`.  An
        ``on_close`` hook (the process fleet's manager teardown) runs
        last, whether or not members failed.
        """
        if self._closed:
            return
        self._closed = True
        failures: List[Tuple[str, BaseException]] = []
        for name in self._names:
            try:
                self._stores[name].close()
            except BaseException as exc:
                failures.append((name, exc))
        try:
            self.fanout.close()
        except BaseException as exc:
            failures.append(("<fanout>", exc))
        try:
            if self._on_close is not None:
                self._on_close()
        except BaseException as exc:
            failures.append(("<on_close>", exc))
        if failures:
            detail = "; ".join(
                f"{name}: {type(exc).__name__}: {exc}" for name, exc in failures
            )
            raise StoreCloseError(
                f"{len(failures)} member store(s) failed to close: {detail}",
                failures,
            )

    def store(self, name: str) -> ProvenanceStoreInterface:
        try:
            return self._stores[name]
        except KeyError:
            raise KeyError(f"unknown store {name!r}") from None

    def owner_of(self, key: InteractionKey) -> str:
        """The store that owns this interaction's p-assertions."""
        return self.placement.current.owner_of(key)

    # -- cache freshness ----------------------------------------------------
    def generations(self) -> Dict[str, Optional[int]]:
        """Per-member write generations (cross-links ride member writes).

        A member that cannot be reached reports ``None`` (and is marked
        degraded) instead of failing the whole observation — the federated
        read side must keep working through an outage.
        """
        results = self.fanout.scatter(
            list(self._names), lambda name: self._stores[name].generation
        )
        out: Dict[str, Optional[int]] = {}
        for result in results:
            name = result.target
            if result.error is not None:
                if not _is_unavailable(result.error):
                    raise result.error
                self.mark_degraded(name)
                out[name] = None
                continue
            with self._lock:
                floor = self._gen_floor.get(name, 0)
                self._gen_floor[name] = max(floor, result.value)
            out[name] = result.value
        return out

    def generation_vector(self) -> GenerationVector:
        """Freshness token: a router query is cacheable iff no member advanced.

        Down members contribute a per-observation nonce instead of a
        generation, so no cached federated result ever revalidates while
        any member is unreachable — a rejoining replica can then never
        serve a stale merge out of a client cache.  The vector also
        carries the placement *epoch* (bumped at every migration
        cutover), which is what poisons every cached plan for a moved
        slice the instant the route flips; while a migration is still
        streaming, a per-observation nonce keeps anything from caching
        against the in-flux placement at all.
        """
        observed = sorted(self.generations().items())
        gens: List[object] = []
        with self._lock:
            for name, generation in observed:
                if generation is None:
                    self._down_nonce += 1
                    gens.append(("down", name, self._down_nonce))
                else:
                    gens.append(generation)
            if self.placement.in_transition:
                self._down_nonce += 1
                gens.append(("migrating", self._down_nonce))
        return GenerationVector(tuple(gens), epoch=self.placement.epoch)

    def _commit_share(self, name: str, share: List[Assertion]) -> None:
        """Commit one member's share of a write, replication-aware.

        Replicated mode tolerates duplicate rejections by falling back to
        per-assertion puts that skip them: a retried in-doubt batch must
        converge on the replicas that already hold (part of) it.  At R=1
        duplicates propagate unchanged — they are a client error, not a
        retry artifact — *except* during a migration, when a retried
        in-doubt dual-commit legitimately finds its data already on one
        side and must converge exactly like a replicated retry.
        """
        store = self._stores[name]
        if self.replicas == 1 and not self.placement.in_transition:
            if len(share) == 1:
                store.put(share[0])
            else:
                store.put_many(share)
            return
        try:
            if len(share) == 1:
                store.put(share[0])
            else:
                store.put_many(share)
        except BaseException as exc:
            if not _is_duplicate(exc):
                raise
            for assertion in share:
                try:
                    store.put(assertion)
                except BaseException as inner:
                    if not _is_duplicate(inner):
                        raise

    def put(self, assertion: Assertion) -> str:
        """Route one assertion; returns the name of the store that took it
        (``"*"`` for a broadcast group assertion).

        Group assertions are broadcast (membership supports navigation from
        any store); p-assertions go to their full replica set (the owner at
        R=1), and every *other* store gains a cross-link to the owner.

        A member-down failure journals the missing member's copy for
        :meth:`repair`; at R>1 the call then raises
        :class:`PartialCommitError` (a broadcast still acks while at least
        ``replicas`` live members hold it), at R=1 the transport fault
        propagates unchanged.

        All live shares commit **concurrently** (the fan-out pool), then
        the outcomes are aggregated in the sequential loop's target order,
        so the journal, degraded marks and error fields are identical to
        the one-at-a-time path.  On an error the sequential loop would
        have raised out of, shares the loop would never have attempted
        may already have landed — unobservable through the ack semantics:
        the write is still not acknowledged, and a retry converges via
        duplicate-skip exactly as for any in-doubt batch.
        """
        if isinstance(assertion, GroupAssertion):
            targets = list(self._names)
            route_key = assertion.member
            label = "*"
        else:
            targets = self.write_set(assertion.interaction_key)
            route_key = assertion.interaction_key
            label = targets[0]
        committed: List[str] = []
        causes: Dict[str, BaseException] = {}
        with self._lock:
            degraded = set(self._degraded) if self.replicas > 1 else set()
        for name in targets:
            if name in degraded:
                self._journal(name, [assertion])
                causes[name] = Fault(
                    "worker-unavailable",
                    f"member {name!r} is marked degraded",
                    detail={"worker": name},
                )
        results = self.fanout.scatter(
            [name for name in targets if name not in degraded],
            lambda name: self._commit_share(name, [assertion]),
        )
        for result in results:
            name = result.target
            if result.error is None:
                committed.append(name)
                continue
            exc = result.error
            if _is_unavailable(exc):
                self.mark_degraded(name)
                self._journal(name, [assertion])
                causes[name] = exc
                if self.replicas == 1:
                    raise exc  # unreplicated: fail fast, as a plain store would
                continue
            raise exc
        if causes and label != "*":
            raise PartialCommitError(
                f"write to {sorted(causes)} did not persist (committed on "
                f"{committed or 'no members'}); journaled for repair, "
                f"not acknowledged",
                committed=committed,
                missing=sorted(causes),
                causes=causes,
            )
        if causes and len(committed) < self.replicas:
            raise PartialCommitError(
                f"broadcast persisted on only {len(committed)} member(s), "
                f"below the replication floor {self.replicas}; journaled "
                f"for repair, not acknowledged",
                committed=committed,
                missing=sorted(causes),
                causes=causes,
            )
        with self._lock:
            self.records_routed += 1
        self._note_link(route_key, self.owner_of(route_key))
        return label

    def put_many(self, assertions: Iterable[Assertion]) -> List[str]:
        """Route a batch: one group commit per member store.

        Assertions are partitioned by member (group assertions broadcast;
        p-assertions go to every member of their replica set), then each
        store takes its share in a single
        :meth:`~ProvenanceStoreInterface.put_many` call — per-store
        relative order is preserved.  Returns each assertion's placement
        (the replica set's owner, or ``"*"`` for broadcasts).

        If a member store rejects part of its batch the exception
        propagates; cross-links and ``records_routed`` are then recorded
        exactly for the assertions whose *full* target set durably stored
        them (including the accepted prefix of a failing store's batch,
        just as a put loop would have linked each stored assertion before
        failing) — the navigation tables never point at a store that did
        not take the data, and never miss data a store did take.

        Member-down handling at R>1: the dead member's share is journaled
        for :meth:`repair`, the *other* members' shares still commit (so a
        retry of the batch converges via duplicate-skip), and the call
        raises :class:`PartialCommitError` — the batch is never partially
        acked.  At R=1 a transport fault aborts and propagates unchanged.

        Member shares group-commit **concurrently** on the fan-out pool;
        outcomes are aggregated in sorted member order, reproducing the
        sequential loop's journal, degraded marks and
        :class:`PartialCommitError` fields exactly.  Where the sequential
        loop aborted mid-iteration, later members' shares may now have
        committed before the same error surfaces — the batch is equally
        unacked/in-doubt either way, and the ``finally`` accounting below
        already probes failed members for what actually landed.
        """
        per_store: Dict[str, List[Assertion]] = {name: [] for name in self._names}
        plan: List[Tuple[Assertion, str, Tuple[str, ...]]] = []
        for assertion in assertions:
            if isinstance(assertion, GroupAssertion):
                targets = tuple(self._names)
                for name in targets:
                    per_store[name].append(assertion)
                plan.append((assertion, "*", targets))
            else:
                targets = tuple(self.write_set(assertion.interaction_key))
                for name in targets:
                    per_store[name].append(assertion)
                plan.append((assertion, targets[0], targets))
        committed: set = set()
        failed: set = set()
        causes: Dict[str, BaseException] = {}
        try:
            with self._lock:
                degraded = set(self._degraded) if self.replicas > 1 else set()
            work: List[str] = []
            for name in self._names:
                share = per_store[name]
                if not share:
                    committed.add(name)
                    continue
                if name in degraded:
                    failed.add(name)
                    self._journal(name, share)
                    causes[name] = Fault(
                        "worker-unavailable",
                        f"member {name!r} is marked degraded",
                        detail={"worker": name},
                    )
                    continue
                work.append(name)
            results = self.fanout.scatter(
                work, lambda name: self._commit_share(name, per_store[name])
            )
            # Aggregate EVERY member's outcome before raising: a fatal
            # (non-journalable) error must not hide which other members
            # committed, or the accounting below would under-count and
            # the link tables would miss data a store really took.
            fatal: Optional[BaseException] = None
            for result in results:
                name = result.target
                if result.error is None:
                    committed.add(name)
                    continue
                failed.add(name)
                exc = result.error
                if self.replicas > 1 and _is_unavailable(exc):
                    self.mark_degraded(name)
                    self._journal(name, per_store[name])
                    causes[name] = exc
                    continue
                if fatal is None:  # first in sorted member order
                    fatal = exc
            if fatal is not None:
                raise fatal
        finally:
            for assertion, owner, targets in plan:
                if owner == "*":
                    placed = all(
                        name in committed or self._holds(name, assertion)
                        for name in self._names
                    )
                else:
                    placed = all(
                        name in committed
                        or (name in failed and self._holds(name, assertion))
                        for name in targets
                    )
                if placed:
                    with self._lock:
                        self.records_routed += 1
                    route_key = (
                        assertion.member
                        if owner == "*"
                        else assertion.interaction_key
                    )
                    self._note_link(route_key, self.owner_of(route_key))
        if causes:
            raise PartialCommitError(
                f"batch share(s) for {sorted(causes)} did not persist "
                f"(committed on {sorted(committed)}); journaled for "
                f"repair, not acknowledged",
                committed=sorted(committed),
                missing=sorted(causes),
                causes=causes,
            )
        return [owner for _, owner, _ in plan]

    def _holds(self, store_name: str, assertion: Assertion) -> bool:
        """Whether ``store_name`` durably holds ``assertion`` (post-failure).

        A member that cannot even be asked (down mid-batch) holds nothing
        we can vouch for — report False rather than fail the accounting.
        """
        store = self._stores[store_name]
        try:
            if isinstance(assertion, GroupAssertion):
                return assertion.member in store.group_members(assertion.group_id)
            if isinstance(assertion, InteractionPAssertion):
                found = store.interaction_passertions(assertion.interaction_key)
            else:
                found = store.actor_state_passertions(assertion.interaction_key)
        except BaseException as exc:
            if _is_unavailable(exc):
                return False
            raise
        return any(p.store_key == assertion.store_key for p in found)

    def _note_link(self, key: InteractionKey, owner: str) -> None:
        with self._lock:
            for name in self._names:
                if name != owner:
                    self._links[name][key] = owner

    def cross_links(self, store_name: str) -> List[CrossLink]:
        """The navigation table held at ``store_name``."""
        with self._lock:
            table = self._links.get(store_name)
            if table is None:
                raise KeyError(f"unknown store {store_name!r}")
            items = sorted(table.items())
        return [
            CrossLink(interaction_key=key, store=owner) for key, owner in items
        ]

    def resolve(self, start_store: str, key: InteractionKey) -> str:
        """Navigate: from ``start_store``, find where ``key`` lives.

        Returns ``start_store`` itself when the records are local; otherwise
        follows the cross-link.
        """
        store = self.store(start_store)
        if store.interaction_passertions(key) or store.actor_state_passertions(key):
            return start_store
        with self._lock:
            owner = self._links[start_store].get(key)
        if owner is None:
            raise KeyError(
                f"no records or cross-link for {key} at store {start_store!r}"
            )
        return owner

    # -- membership changes (live migration) -----------------------------------
    def migration_participants(self) -> List[str]:
        """Members involved in the in-flight migration (empty when idle).

        The supervisor consults this before quarantining a flapping
        worker: a migration participant keeps getting restarts, because
        quarantining it mid-stream would wedge the transition.
        """
        if not self.placement.in_transition:
            return []
        return self.placement.all_members()

    def rebalance_to(
        self,
        spec: PlacementSpec,
        *,
        page: int = 256,
        on_phase: Optional[Callable[[str], None]] = None,
    ) -> MigrationReport:
        """Live-migrate to a new placement rule over the current members.

        The general entry point (:meth:`add_member` / :meth:`decommission`
        build their specs and call it): begins the transition (writes
        dual-commit from that instant), streams every moving key from its
        current owner to the members gaining it, drains the write tail,
        then atomically cuts over — or rolls the placement back on any
        failure.  Re-running a failed rebalance resumes via
        duplicate-skip.  Cross-link tables are recomputed for the new
        owners at cutover.
        """
        report = rebalance(self, spec, page=page, on_phase=on_phase)
        self._relink()
        return report

    def _relink(self) -> None:
        """Repoint every cross-link table at the current owners."""
        with self._lock:
            keys = {
                key for table in self._links.values() for key in table
            }
            for name in self._names:
                self._links[name] = {}
        for key in keys:
            self._note_link(key, self.owner_of(key))

    def add_member(
        self,
        name: str,
        store: ProvenanceStoreInterface,
        *,
        page: int = 256,
        on_phase: Optional[Callable[[str], None]] = None,
    ) -> MigrationReport:
        """Register a new member store and live-migrate its share onto it.

        On failure the member is deregistered and the placement rolled
        back (any records already streamed onto it are harmless debris a
        retry re-deduplicates); the caller still owns the store object.
        """
        if name in self._stores:
            raise ValueError(f"store {name!r} is already a member")
        self._stores[name] = store
        self._names = sorted(self._stores)
        self._links[name] = {}
        spec = self.placement.current.with_members(self._names)
        try:
            return self.rebalance_to(spec, page=page, on_phase=on_phase)
        except BaseException as exc:
            if getattr(exc, "committed", False):
                # The cutover happened before the failure surfaced: the
                # new member IS in the routing rule now, so deregistering
                # it would route keys at a missing store.  Keep it.
                raise
            self._stores.pop(name, None)
            self._links.pop(name, None)
            self._names = sorted(self._stores)
            raise

    def decommission(
        self,
        name: str,
        *,
        page: int = 256,
        on_phase: Optional[Callable[[str], None]] = None,
    ) -> MigrationReport:
        """Live-migrate a member's share off it, then drop it from the fleet.

        The member must be reachable — it is the stream's source for the
        keys it owns.  After the cutover the store is removed from
        routing (the caller closes or retires the store object; fleet
        factories attach that via ``_member_retire``).  Shrinking below
        the replication factor raises before anything moves.
        """
        if name not in self._stores:
            raise KeyError(f"unknown store {name!r}")
        remaining = [member for member in self._names if member != name]
        spec = self.placement.current.with_members(remaining)
        try:
            report = self.rebalance_to(spec, page=page, on_phase=on_phase)
        except BaseException as exc:
            if getattr(exc, "committed", False):
                # Cutover happened: the member is already out of the
                # routing rule, so finish dropping it before re-raising.
                self._drop_member(name)
            raise
        self._drop_member(name)
        return report

    def _drop_member(self, name: str) -> None:
        store = self._stores.pop(name)
        self._names = sorted(self._stores)
        with self._lock:
            self._links.pop(name, None)
            self._degraded.discard(name)
            self._suspect.discard(name)
            self._pending.pop(name, None)
            self._gen_floor.pop(name, None)
        retire = getattr(self, "_member_retire", None)
        if retire is not None:
            retire(name, store)

    def add_worker(
        self,
        name: Optional[str] = None,
        *,
        page: int = 256,
        on_phase: Optional[Callable[[str], None]] = None,
    ) -> Tuple[str, MigrationReport]:
        """Grow a factory-built fleet by one member, live.

        Only available on routers built by
        :func:`sharded_store_fleet`, which attach a member factory (an
        in-process backend builder, or ``ProcessFleet.add_worker`` for
        the process transport).  Returns the new member's name and the
        migration report.
        """
        factory = getattr(self, "_member_factory", None)
        if factory is None:
            raise RuntimeError(
                "this router has no member factory; build it with "
                "sharded_store_fleet() or use add_member(name, store)"
            )
        name, store = factory(name)
        try:
            report = self.add_member(name, store, page=page, on_phase=on_phase)
        except BaseException as exc:
            if not getattr(exc, "committed", False):
                abort = getattr(self, "_member_abort", None)
                if abort is not None:
                    abort(name, store)
            raise
        return name, report


class FederatedQueryClient:
    """Answers store-interface queries over all members of a router.

    Federation-wide merges (:meth:`interaction_keys`, :meth:`counts`) are
    memoized under the router's generation vector: a merged result is served
    from cache iff no member store advanced since it was built (and never
    while any member is down — down members poison the vector per
    observation, see :meth:`StoreRouter.generation_vector`).

    With router replication (R > 1) every per-key read fails over across
    the key's replica set: a member that does not answer is marked
    degraded and the next replica is asked, so one worker's death costs a
    read nothing but a fast-timeout probe.  Replicas the supervisor just
    restored are *suspect* until a generation probe confirms they report
    at least the freshest generation this router ever observed from them
    (:meth:`StoreRouter.confirm_fresh`) — reads prefer their peers until
    then, so a rejoined-but-behind replica cannot serve a stale answer.
    """

    def __init__(
        self, router: StoreRouter, hedge_after_s: Optional[float] = None
    ):
        self.router = router
        #: opt-in hedge delay for per-key reads: when the preferred
        #: replica has not answered within this many seconds, the next
        #: replica is fired too and the first success wins (see
        #: :meth:`_read_replicas`).  Defaults to the router's fleet-level
        #: setting; None or 0 means no hedging.
        self.hedge_after_s = (
            router.hedge_after_s if hedge_after_s is None else hedge_after_s
        )
        #: guards the merge caches and counters against concurrent
        #: readers (hedge legs and fan-out workers report through here).
        self._lock = threading.Lock()
        self._keys_cache: Optional[
            Tuple[GenerationVector, List[InteractionKey]]
        ] = None
        self._counts_cache: Optional[Tuple[GenerationVector, StoreCounts]] = None
        self.cache_hits = 0
        #: reads answered by a non-primary replica after a failover.
        self.failovers = 0

    # -- replica selection ----------------------------------------------------
    def _read_order(self, targets: List[str]) -> List[str]:
        """Replicas in preference order: live and fresh first.

        Degraded members go last (a read may still try them as a final
        resort — transport probes are fast and they might have quietly
        recovered); suspect members are probed via
        :meth:`StoreRouter.confirm_fresh` and demoted while behind.
        """
        with self.router._lock:
            degraded = set(self.router._degraded)
            suspect = set(self.router._suspect)
        preferred: List[str] = []
        demoted: List[str] = []
        for name in targets:
            if name in degraded:
                demoted.append(name)
            elif name in suspect and not self.router.confirm_fresh(name):
                demoted.append(name)
            else:
                preferred.append(name)
        return preferred + demoted

    def _read_replicas(self, key: InteractionKey, read: Callable) -> object:
        """Run ``read(store)`` against the key's replica set with failover.

        During a migration the preference order is the *current* replica
        set (the authority until cutover) followed by the pending-only
        members — which hold every dual-committed write plus the streamed
        prefix, so a mid-migration key is effectively both-owners for
        availability without ever preferring the incomplete copy.

        With ``hedge_after_s`` set (and more than one candidate), the
        failover loop becomes a staged race: the preferred replica is
        asked first, the next one fires only if no answer arrives in
        time, and the first success wins — one slow worker stops setting
        the read tail.  A replica that *fails* (rather than stalls) is
        marked degraded exactly as in the sequential loop.
        """
        targets = self.router.read_set(key)
        order = self._read_order(targets)
        hedge = self.hedge_after_s
        if (
            hedge is not None
            and hedge > 0
            and len(order) > 1
            and not self.router.fanout.sequential
        ):
            return self._read_hedged(key, targets, order, read, hedge)
        last: Optional[BaseException] = None
        for index, name in enumerate(order):
            store = self.router.store(name)
            try:
                result = read(store)
            except BaseException as exc:
                if not _is_unavailable(exc):
                    raise
                self.router.mark_degraded(name)
                last = exc
                continue
            if index > 0:
                with self._lock:
                    self.failovers += 1
            return result
        raise Fault(
            "worker-unavailable",
            f"every replica of {targets} is unreachable for {key}",
            detail={
                "replicas": ",".join(targets),
                **(getattr(last, "detail", None) or {}),
            },
        ) from last

    def _read_hedged(
        self,
        key: InteractionKey,
        targets: List[str],
        order: List[str],
        read: Callable,
        hedge: float,
    ) -> object:
        outcome = self.router.fanout.hedged(
            order,
            lambda name: read(self.router.store(name)),
            hedge,
            retryable=_is_unavailable,
        )
        last: Optional[BaseException] = None
        for index, exc in sorted(outcome.errors.items()):
            if _is_unavailable(exc):
                self.router.mark_degraded(order[index])
                last = exc
        if outcome.fatal is not None:
            raise outcome.fatal
        if outcome.winner is None:
            raise Fault(
                "worker-unavailable",
                f"every replica of {targets} is unreachable for {key}",
                detail={
                    "replicas": ",".join(targets),
                    **(getattr(last, "detail", None) or {}),
                },
            ) from last
        if outcome.winner > 0:
            with self._lock:
                self.failovers += 1
        return outcome.value

    def _any_live(self, read: Callable) -> object:
        """Run ``read(store)`` against any live member (broadcast data)."""
        last: Optional[BaseException] = None
        for name in self._read_order(self.router.store_names):
            try:
                return read(self.router.store(name))
            except BaseException as exc:
                if not _is_unavailable(exc):
                    raise
                self.router.mark_degraded(name)
                last = exc
        raise Fault(
            "worker-unavailable",
            "no member store is reachable",
        ) from last

    def interaction_keys(self) -> List[InteractionKey]:
        vector = self.router.generation_vector()
        with self._lock:
            if self._keys_cache is not None and self._keys_cache[0].fresh(
                vector
            ):
                self.cache_hits += 1
                return list(self._keys_cache[1])
        keys: set = set()
        down: List[str] = []
        results = self.router.fanout.scatter(
            self.router.store_names,
            lambda name: self.router.store(name).interaction_keys(),
        )
        for result in results:
            if result.error is not None:
                if not _is_unavailable(result.error):
                    raise result.error
                self.router.mark_degraded(result.target)
                down.append(result.target)
                continue
            keys.update(result.value)
        if down and not self._union_complete(down):
            raise Fault(
                "worker-unavailable",
                f"members {down} are down and some replica set has no "
                f"live member; a keys merge would silently omit records",
                detail={"down": ",".join(down)},
            )
        merged = sorted(keys)
        with self._lock:
            self._keys_cache = (vector, merged)
        return list(merged)

    def _union_complete(self, down: List[str]) -> bool:
        """Is the live-member union still exhaustive?

        The union over live members covers every key iff no replica set
        the current placement can produce is entirely down — enumerated
        from the placement itself (consecutive windows under modulo,
        ring-walk sets under consistent hashing), so the check stays
        correct whatever the mode.
        """
        down_set = set(down) | set(self.router.degraded_members)
        for replica_set in self.router.placement.current.possible_replica_sets():
            if all(member in down_set for member in replica_set):
                return False
        return True

    def interaction_passertions(
        self, key: InteractionKey, view: Optional[ViewKind] = None
    ) -> List[InteractionPAssertion]:
        return self._read_replicas(
            key, lambda store: store.interaction_passertions(key, view)
        )

    def actor_state_passertions(
        self,
        key: InteractionKey,
        view: Optional[ViewKind] = None,
        state_type: Optional[str] = None,
    ) -> List[ActorStatePAssertion]:
        return self._read_replicas(
            key,
            lambda store: store.actor_state_passertions(key, view, state_type),
        )

    def group_members(self, group_id: str) -> List[InteractionKey]:
        # Groups are broadcast; any live store can answer.
        return self._any_live(lambda store: store.group_members(group_id))

    def groups_of(self, key: InteractionKey) -> List[str]:
        return self._any_live(lambda store: store.groups_of(key))

    def group_ids(self, kind: Optional[str] = None) -> List[str]:
        return self._any_live(lambda store: store.group_ids(kind))

    def group_kinds(self, group_ids=None) -> Dict[str, str]:
        return self._any_live(lambda store: store.group_kinds(group_ids))

    def passertion_counts(self, key: InteractionKey) -> Tuple[int, int]:
        """Both of one key's p-assertion counts from one live replica.

        A single store round trip (the per-key ``passertion-counts``
        query) where asking for the two lists separately costs two —
        the unit of work :meth:`counts` batches through the fan-out
        pool on the replicated path.
        """
        return self._read_replicas(
            key, lambda store: tuple(store.passertion_counts(key))
        )

    def counts(self) -> StoreCounts:
        """Aggregate counts (group assertions counted once, not per replica).

        Under pristine R=1 placement this sums per-member counts.  At
        R>1 — or once the fleet has ever rebalanced (the append-only
        members keep a moved key's old copy beside the new owner's) — a
        member sum would multi-count, so counts are computed per key from
        one live replica of its set (one :meth:`passertion_counts` round
        trip per key, batched concurrently through the fan-out pool),
        amortized by the generation-vector cache.
        """
        vector = self.router.generation_vector()
        with self._lock:
            if self._counts_cache is not None and self._counts_cache[0].fresh(
                vector
            ):
                self.cache_hits += 1
                return self._counts_cache[1]
        if self.router.replicas == 1 and self.router.placement.epoch == 0:
            inter = state = 0
            records: set = set()
            for name in self.router.store_names:
                store = self.router.store(name)
                c = store.counts()
                inter += c.interaction_passertions
                state += c.actor_state_passertions
                records.update(store.interaction_keys())
            groups = self._any_live(lambda store: store.counts()).group_assertions
            merged = StoreCounts(
                interaction_passertions=inter,
                actor_state_passertions=state,
                group_assertions=groups,
                interaction_records=len(records),
            )
        else:
            keys = self.interaction_keys()
            inter = state = 0
            results = self.router.fanout.scatter(
                keys, self.passertion_counts
            )
            for result in results:
                if result.error is not None:
                    raise result.error
                inter += result.value[0]
                state += result.value[1]
            groups = self._any_live(lambda store: store.counts()).group_assertions
            merged = StoreCounts(
                interaction_passertions=inter,
                actor_state_passertions=state,
                group_assertions=groups,
                interaction_records=len(keys),
            )
        with self._lock:
            self._counts_cache = (vector, merged)
        return merged


class FederatedStoreAdapter:
    """The whole fleet behind one store-interface surface.

    Duck-typed like :class:`~repro.fleet.remote.RemoteStore`: writes go
    through the router (replication, dual-commit during migrations),
    reads through a :class:`FederatedQueryClient` (replica failover,
    generation-vector merges), so a :class:`~repro.store.service.PReServActor`
    — and therefore a whole :class:`~repro.app.experiment.Experiment` —
    can serve a multi-member fleet without knowing it is one.  The
    freshness token is the router's generation vector (placement epoch
    included), so client result caches invalidate on member writes *and*
    on migration cutovers.
    """

    def __init__(self, router: StoreRouter):
        self.router = router
        self.federated = FederatedQueryClient(router)
        #: interface parity — maintenance is owned member-side.
        self.maintenance = None

    # -- write path -----------------------------------------------------------
    def put(self, assertion: Assertion) -> None:
        self.router.put(assertion)

    def put_many(self, assertions: Iterable[Assertion]) -> int:
        batch = list(assertions)
        self.router.put_many(batch)
        return len(batch)

    def pipelined_ingest(self, *args: object, **kwargs: object):
        raise NotImplementedError(
            "pipelined ingest does not span a fleet; pipeline inside the "
            "member stores (pipeline_depth on the fleet factory) instead"
        )

    # -- read path ------------------------------------------------------------
    def interaction_keys(self) -> List[InteractionKey]:
        return self.federated.interaction_keys()

    def interaction_passertions(
        self, key: InteractionKey, view: Optional[ViewKind] = None
    ) -> List[InteractionPAssertion]:
        return self.federated.interaction_passertions(key, view)

    def actor_state_passertions(
        self,
        key: InteractionKey,
        view: Optional[ViewKind] = None,
        state_type: Optional[str] = None,
    ) -> List[ActorStatePAssertion]:
        return self.federated.actor_state_passertions(key, view, state_type)

    def group_members(self, group_id: str) -> List[InteractionKey]:
        return self.federated.group_members(group_id)

    def groups_of(self, key: InteractionKey) -> List[str]:
        return self.federated.groups_of(key)

    def group_ids(self, kind: Optional[str] = None) -> List[str]:
        return self.federated.group_ids(kind)

    def group_kinds(self, group_ids=None) -> Dict[str, str]:
        return self.federated.group_kinds(group_ids)

    def passertion_counts(self, key: InteractionKey) -> Tuple[int, int]:
        return self.federated.passertion_counts(key)

    def counts(self) -> StoreCounts:
        return self.federated.counts()

    # -- cache freshness -------------------------------------------------------
    @property
    def generation(self) -> int:
        """A monotonic federation-wide write counter (sum of member
        generations); prefer :meth:`generation_token`, which also tracks
        placement epochs and member outages."""
        return sum(
            generation
            for generation in self.router.generations().values()
            if generation is not None
        )

    def generation_token(self, scope: Optional[str] = None) -> object:
        return self.router.generation_vector()

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        self.router.close()


def _retire_store_dir(root: Path, name: str) -> Optional[Path]:
    """Move a decommissioned member's directory out of the fleet layout.

    ``store-NN`` directories are what the reopen count-check globs, so a
    removed member's data must stop matching — it is renamed to
    ``retired-<name>`` (kept, not deleted: decommissioning routes keys
    away, it does not destroy history).
    """
    source = root / name
    if not source.exists():
        return None
    target = root / f"retired-{name}"
    suffix = 0
    while target.exists():
        suffix += 1
        target = root / f"retired-{name}.{suffix}"
    source.rename(target)
    return target


def sharded_store_fleet(
    root: "Path | str",
    members: int = 2,
    shards: int = 1,
    sync: bool = True,
    auto_compact: bool = False,
    transport: str = "inprocess",
    pipeline_depth: int = 1,
    commit_barrier_s: float = 0.0,
    replicas: int = 1,
    fault_rules: Optional[Dict[str, tuple]] = None,
    placement: str = "modulo",
    fanout_workers: Optional[int] = None,
    hedge_after_s: Optional[float] = None,
) -> StoreRouter:
    """A §7 deployment in one call: a router over KVLog-backed members.

    Each member store lives under ``root/store-NN`` with its own
    (optionally sharded) log, so the two scaling axes compose: the router
    parallelises submission *across* stores, ``shards`` parallelises group
    commits *within* each store.

    ``transport`` selects where the member stores run — the two layouts
    are identical on disk, so a fleet written with one transport reopens
    with the other:

    ``"inprocess"`` (default)
        Members are :class:`~repro.store.backends.KVLogBackend` instances
        in this process; every call is a direct method call.
    ``"process"``
        Members are worker *processes* (one
        :class:`~repro.fleet.manager.ProcessFleet` child per member, each
        hosting a PReServ actor over its own backend) reached through the
        Envelope socket transport; the router holds
        :class:`~repro.fleet.remote.RemoteStore` proxies and
        ``router.close()`` tears the whole fleet down (terminate/join +
        socket cleanup).  ``pipeline_depth`` configures each worker's
        ingest pipeline, and ``commit_barrier_s`` models a per-group-commit
        device stall (see :func:`repro.fleet.worker.attach_commit_barrier`)
        — both apply to the in-process transport too, for like-for-like
        baselines.

    ``auto_compact=True`` attaches background compaction: in-process, **one**
    shared :class:`~repro.store.maintenance.CompactionScheduler` across all
    members (a single maintenance budget for the whole fleet); per-worker
    schedulers in process mode (each child owns its maintenance).  Tear the
    fleet down with :meth:`StoreRouter.close`.

    ``replicas=R`` (R > 1) turns on R-way replica sets in the router:
    every interaction's records persist on R members before a write acks
    (see :class:`StoreRouter`), and federated reads fail over within the
    set.  ``fault_rules`` (process transport only) maps worker names to
    scripted :class:`~repro.fleet.faults.FaultRule` tuples for
    deterministic crash drills.

    ``fanout_workers`` sizes the router's scatter-gather pool (capped at
    the member count; default ``min(members, 8)``): replica commits,
    broadcasts and federated merges run concurrently across members.
    Pass ``0`` for the sequential parity mode — byte-identical behavior,
    one member at a time.  ``hedge_after_s`` opts federated per-key reads
    into hedging: a read whose preferred replica has not answered within
    that many seconds fires the next replica too and takes the first
    success, bounding the read tail under one slow worker.

    ``placement`` selects the placement rule: ``"modulo"`` (default) is
    the legacy hash-mod-N successor rule, kept for byte-identical
    reproduction of the paper figures; ``"ring"`` is consistent-hash
    placement, under which :meth:`StoreRouter.add_worker` /
    :meth:`StoreRouter.decommission` move only ~1/N of the keys.  The
    rule is persisted to ``root/placement.json`` and verified on every
    reopen — a root whose recorded placement disagrees with the requested
    membership, replication factor or mode fails loudly with
    :class:`~repro.store.placement.PlacementMismatchError` instead of
    silently misrouting.
    """
    from repro.store.backends import KVLogBackend
    from repro.store.maintenance import CompactionScheduler

    if members < 1:
        raise ValueError("fleet needs at least one member store")
    if transport not in ("inprocess", "process"):
        raise ValueError(
            f"unknown transport {transport!r}; use 'inprocess' or 'process'"
        )
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    existing = sorted(
        p.name for p in root.glob("store-*") if p.name[6:].isdigit()
    )
    if existing and len(existing) != members:
        raise ValueError(
            f"{root} holds {len(existing)} member stores but "
            f"members={members}; reopen with members={len(existing)} "
            f"(rerouting keys across a different member count would "
            f"strand existing records)"
        )
    # Reopen under the *recorded* member names (a decommissioned fleet
    # has gaps in its store-NN numbering); fresh roots get 00..N-1.
    names = existing or [f"store-{i:02d}" for i in range(members)]
    pmap = check_or_init_placement(
        root,
        PlacementSpec(
            members=tuple(names), replicas=replicas, mode=placement
        ),
    )
    if transport == "process":
        from repro.fleet.manager import ProcessFleet

        fleet = ProcessFleet(
            root,
            members=members,
            shards=shards,
            sync=sync,
            auto_compact=auto_compact,
            pipeline_depth=pipeline_depth,
            commit_barrier_s=commit_barrier_s,
            fault_rules=fault_rules,
        )
        router = StoreRouter(
            fleet.stores(),
            on_close=lambda: fleet.close(raise_errors=False),
            placement=pmap,
            fanout_workers=fanout_workers,
            hedge_after_s=hedge_after_s,
        )
        router.fleet = fleet  # type: ignore[attr-defined]

        def _process_factory(name: Optional[str] = None):
            worker = fleet.add_worker(name)
            return worker, fleet.store(worker)

        def _process_retire(name: str, store: object) -> None:
            fleet.decommission(name)
            _retire_store_dir(root, name)

        def _process_abort(name: str, store: object) -> None:
            try:
                fleet.decommission(name)
            except BaseException:
                pass
            _retire_store_dir(root, name)

        router._member_factory = _process_factory  # type: ignore[attr-defined]
        router._member_retire = _process_retire  # type: ignore[attr-defined]
        router._member_abort = _process_abort  # type: ignore[attr-defined]
        return router
    scheduler = CompactionScheduler() if auto_compact else None

    def _build_member(name: str) -> ProvenanceStoreInterface:
        # One path per member whatever the layout (file when shards=1,
        # directory otherwise), so reopening an existing fleet with the
        # wrong shard count hits KVLogBackend's layout guard instead of
        # silently standing up empty stores beside the old data.
        store = KVLogBackend(root / name, sync=sync, shards=shards)
        if commit_barrier_s > 0:
            from repro.fleet.worker import attach_commit_barrier

            attach_commit_barrier(store, commit_barrier_s)
        if scheduler is not None:
            scheduler.register(store, name)
            store.maintenance = scheduler
        return store

    stores: Dict[str, ProvenanceStoreInterface] = {
        name: _build_member(name) for name in names
    }
    if scheduler is not None:
        scheduler.start()
    router = StoreRouter(
        stores,
        placement=pmap,
        fanout_workers=fanout_workers,
        hedge_after_s=hedge_after_s,
    )

    def _inprocess_factory(name: Optional[str] = None):
        if name is None:
            index = 0
            while (
                f"store-{index:02d}" in router._stores
                or (root / f"store-{index:02d}").exists()
            ):
                index += 1
            name = f"store-{index:02d}"
        elif name in router._stores:
            raise ValueError(f"store {name!r} is already a member")
        return name, _build_member(name)

    def _inprocess_retire(name: str, store: object) -> None:
        try:
            store.close()  # type: ignore[attr-defined]
        finally:
            _retire_store_dir(root, name)

    def _inprocess_abort(name: str, store: object) -> None:
        try:
            store.close()  # type: ignore[attr-defined]
        except BaseException:
            pass
        _retire_store_dir(root, name)

    router._member_factory = _inprocess_factory  # type: ignore[attr-defined]
    router._member_retire = _inprocess_retire  # type: ignore[attr-defined]
    router._member_abort = _inprocess_abort  # type: ignore[attr-defined]
    return router


def consolidate(
    router: StoreRouter, target: ProvenanceStoreInterface
) -> Tuple[int, int]:
    """§7's consolidation facility: merge all member stores into ``target``.

    A thin wrapper over the migration engine's everything-to-one-dest
    stream (:func:`repro.store.migration.consolidate_into` — the bespoke
    merge walk this module used to carry is gone).  Returns
    ``(p_assertions_moved, group_assertions_moved)``; broadcast group
    assertions are deduplicated.  Under pristine R=1 placement a
    duplicate p-assertion (impossible under routing) is reported as an
    error; with replication or after any rebalance, duplicates are
    expected copies and are deduplicated, each p-assertion counted once.
    Because the stream pages over the resync surface when available,
    consolidation now also works against socket-served process fleets.
    """
    return consolidate_into(router, target)
