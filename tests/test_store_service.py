"""Tests for PReServ plug-ins, translator and the store actor over the bus."""

from __future__ import annotations

import pytest

from repro.core.passertion import (
    GroupAssertion,
    GroupKind,
    InteractionKey,
    InteractionPAssertion,
    ViewKind,
)
from repro.core.prep import PrepAck, PrepQuery, PrepRecord, PrepResult
from repro.soa.bus import MessageBus
from repro.soa.envelope import Fault
from repro.soa.xmldoc import XmlElement
from repro.store.backends import MemoryBackend
from repro.store.plugins import QueryPlugIn, StorePlugIn
from repro.store.service import MessageTranslator, PReServActor

from tests.test_store_backends import ga, ipa, key, spa


@pytest.fixture
def deployment():
    bus = MessageBus()
    backend = MemoryBackend()
    actor = PReServActor(backend)
    bus.register(actor)
    return bus, backend, actor


def record_via_bus(bus, assertion):
    return bus.call(
        "client", "preserv", "record", PrepRecord(assertion).to_xml()
    )


def query_via_bus(bus, query_type, **params):
    response = bus.call(
        "client",
        "preserv",
        "query",
        PrepQuery(query_type=query_type, params=params).to_xml(),
    )
    return PrepResult.from_xml(response)


class TestTranslator:
    def test_routes_by_body_element(self):
        translator = MessageTranslator([StorePlugIn(), QueryPlugIn()])
        routes = translator.routes()
        assert routes["prep-record"] == "StorePlugIn"
        assert routes["prep-query"] == "QueryPlugIn"

    def test_unrouted_body_faults(self):
        translator = MessageTranslator([StorePlugIn()])
        with pytest.raises(Fault, match="no-plugin"):
            translator.dispatch(XmlElement("mystery"), MemoryBackend())

    def test_duplicate_route_rejected(self):
        translator = MessageTranslator([StorePlugIn()])
        with pytest.raises(ValueError):
            translator.register(StorePlugIn())


class TestRecordPort:
    def test_single_record_acked(self, deployment):
        bus, backend, _ = deployment
        response = record_via_bus(bus, ipa(1))
        ack = PrepAck.from_xml(response)
        assert ack.ok and ack.count == 1
        assert backend.counts().interaction_passertions == 1

    def test_batch_record(self, deployment):
        bus, backend, _ = deployment
        batch = XmlElement("prep-record-batch")
        for i in range(4):
            batch.add(PrepRecord(ipa(i)).to_xml())
        ack = PrepAck.from_xml(bus.call("client", "preserv", "record", batch))
        assert ack.count == 4
        assert backend.counts().interaction_passertions == 4

    def test_duplicate_submission_faults(self, deployment):
        bus, _, _ = deployment
        record_via_bus(bus, ipa(1))
        with pytest.raises(Fault, match="duplicate-assertion"):
            record_via_bus(bus, ipa(1))

    def test_wrong_body_on_record_port_faults(self, deployment):
        bus, _, _ = deployment
        with pytest.raises(Fault, match="bad-request"):
            bus.call("client", "preserv", "record", XmlElement("prep-query"))


class TestQueryPort:
    def fill(self, bus):
        for i in range(3):
            record_via_bus(bus, ipa(i, ViewKind.SENDER))
            record_via_bus(bus, ipa(i, ViewKind.RECEIVER))
            record_via_bus(bus, spa(i))
            record_via_bus(bus, ga(i))

    def test_interactions_query(self, deployment):
        bus, _, _ = deployment
        self.fill(bus)
        result = query_via_bus(bus, "interactions")
        keys = [InteractionKey.from_xml(el) for el in result.items]
        assert keys == [key(0), key(1), key(2)]

    def test_interaction_query_with_view(self, deployment):
        bus, _, _ = deployment
        self.fill(bus)
        result = query_via_bus(
            bus,
            "interaction",
            id=key(1).interaction_id,
            sender="c",
            receiver=key(1).receiver,
            view="sender",
        )
        assert len(result.items) == 1

    def test_actor_state_query_with_type(self, deployment):
        bus, _, _ = deployment
        self.fill(bus)
        result = query_via_bus(
            bus,
            "actor-state",
            **{
                "id": key(2).interaction_id,
                "sender": "c",
                "receiver": key(2).receiver,
                "state-type": "script",
            },
        )
        assert len(result.items) == 1

    def test_record_query_returns_full_interaction_record(self, deployment):
        bus, _, _ = deployment
        self.fill(bus)
        result = query_via_bus(
            bus,
            "record",
            id=key(1).interaction_id,
            sender="c",
            receiver=key(1).receiver,
        )
        # 2 interaction p-assertions + 1 actor-state.
        assert len(result.items) == 3

    def test_by_group_and_groups(self, deployment):
        bus, _, _ = deployment
        self.fill(bus)
        members = query_via_bus(bus, "by-group", group="session-A")
        assert len(members.items) == 3
        groups = query_via_bus(bus, "groups", kind="session")
        assert [g.attrs["id"] for g in groups.items] == ["session-A"]

    def test_count_query(self, deployment):
        bus, _, _ = deployment
        self.fill(bus)
        counts = query_via_bus(bus, "count").items[0]
        assert counts.attrs["interaction-records"] == "3"
        assert counts.attrs["interaction-passertions"] == "6"

    def test_unknown_query_type_faults(self, deployment):
        bus, _, _ = deployment
        with pytest.raises(Fault, match="unknown-query"):
            query_via_bus(bus, "teleport")

    def test_missing_params_fault(self, deployment):
        bus, _, _ = deployment
        with pytest.raises(Fault, match="missing parameter"):
            query_via_bus(bus, "interaction", id="only-id")

    def test_wrong_body_on_query_port_faults(self, deployment):
        bus, _, _ = deployment
        with pytest.raises(Fault, match="bad-request"):
            bus.call("client", "preserv", "query", XmlElement("prep-record"))

    def test_empty_store_queries(self, deployment):
        bus, _, _ = deployment
        assert query_via_bus(bus, "interactions").items == []
        assert query_via_bus(bus, "by-group", group="none").items == []
