"""Tests for the distributed-store scaling harness and CLI additions."""

from __future__ import annotations

import pytest

from repro.figures.cli import main
from repro.figures.distributed import (
    run_scaling,
    scaling_table,
    simulate_submission,
)


class TestScalingHarness:
    def test_single_store_is_serial_pipeline(self):
        point = simulate_submission(1, n_submitters=4, n_records=100)
        assert point.makespan_s == pytest.approx(100 * 0.018, rel=0.01)

    def test_more_stores_more_throughput(self):
        points = run_scaling(store_counts=(1, 2, 4), n_submitters=8, n_records=400)
        rates = [p.records_per_second for p in points]
        assert rates == sorted(rates)
        assert rates[1] > 1.5 * rates[0]

    def test_submitter_bound_when_fewer_submitters_than_stores(self):
        """With 1 submitter, extra stores cannot help at all."""
        one = simulate_submission(1, n_submitters=1, n_records=100)
        many = simulate_submission(8, n_submitters=1, n_records=100)
        assert many.makespan_s == pytest.approx(one.makespan_s, rel=0.01)

    def test_custom_service_time(self):
        point = simulate_submission(
            1, n_submitters=1, n_records=10, service_time_s=0.5
        )
        assert point.makespan_s == pytest.approx(5.0, rel=0.01)

    def test_deterministic(self):
        a = simulate_submission(3, n_submitters=5, n_records=200)
        b = simulate_submission(3, n_submitters=5, n_records=200)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_submission(0)
        with pytest.raises(ValueError):
            simulate_submission(1, n_submitters=0)

    def test_table_renders(self):
        points = run_scaling(store_counts=(1, 2), n_submitters=4, n_records=50)
        text = scaling_table(points)
        assert "speedup" in text
        assert "1.00x" in text


class TestCliScaling:
    def test_scaling_command(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "records/s" in out
