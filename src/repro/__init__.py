"""repro: reproduction of Groth et al., "Recording and Using Provenance in a
Protein Compressibility Experiment" (HPDC 2005).

The package reimplements, in pure Python, the paper's full stack:

* the **p-assertion provenance model** and **PReP** recording protocol
  (:mod:`repro.core`),
* the **PReServ** provenance store with memory / filesystem / embedded-
  database backends (:mod:`repro.store`),
* the **Grimoires**-style registry with semantic annotations
  (:mod:`repro.registry`),
* the **protein compressibility** Grid application — synthetic RefSeq,
  reduced-alphabet encoding, real from-scratch compressors, the Figure 1/2
  workflow (:mod:`repro.bio`, :mod:`repro.compress`, :mod:`repro.app`),
* the **grid substrate** (Condor/DAGMan-style scheduling on a discrete-
  event simulator) and the **SOA substrate** (XML, envelopes, message bus)
  (:mod:`repro.grid`, :mod:`repro.simkit`, :mod:`repro.soa`),
* the paper's two **use cases** and the **figure harnesses**
  (:mod:`repro.usecases`, :mod:`repro.figures`).

Quickstart::

    from repro.app import Experiment, ExperimentConfig

    exp = Experiment(ExperimentConfig(record_scripts=True))
    result = exp.run()
    print(result.compressibility("gz-like"), result.records_submitted)
"""

__version__ = "1.0.0"

from repro.app.experiment import Experiment, ExperimentConfig, ExperimentResult
from repro.core.recorder import RecordingMode

__all__ = [
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "RecordingMode",
    "__version__",
]
