"""Bioinformatics substrate: sequences, synthetic RefSeq, groupings, stats.

Implements the domain side of the paper's Section 2: amino-acid sequences,
FASTA handling, a versioned synthetic stand-in for the RefSeq database,
amino-acid grouping schemes (reduced alphabets), group encoding, sequence
shuffling, and the compressibility statistics (Collate Sizes / Average).
"""

from repro.bio.alphabet import (
    AMINO_ACIDS,
    NUCLEOTIDES,
    SequenceKind,
    classify_sequence,
    is_amino_acid_sequence,
    is_nucleotide_sequence,
    validate_sequence,
)
from repro.bio.fasta import FastaRecord, parse_fasta, write_fasta
from repro.bio.refseq import RefSeqDatabase, SequenceRecord
from repro.bio.groupings import GroupingScheme, get_grouping, available_groupings
from repro.bio.encode import encode_by_groups, encode_nucleotides_by_codon_groups
from repro.bio.shuffle import permutations_of, shuffle_sequence
from repro.bio.analysis import (
    CompressibilityResult,
    SizesTable,
    SizeRow,
    average_results,
    compressibility,
)
from repro.bio.entropy import (
    block_entropy,
    compression_entropy_estimate,
    markov_entropy_rate,
    redundancy,
    shannon_entropy,
    symbol_entropy,
)

__all__ = [
    "AMINO_ACIDS",
    "CompressibilityResult",
    "FastaRecord",
    "GroupingScheme",
    "NUCLEOTIDES",
    "RefSeqDatabase",
    "SequenceKind",
    "SequenceRecord",
    "SizeRow",
    "SizesTable",
    "available_groupings",
    "average_results",
    "block_entropy",
    "classify_sequence",
    "compression_entropy_estimate",
    "markov_entropy_rate",
    "redundancy",
    "shannon_entropy",
    "symbol_entropy",
    "compressibility",
    "encode_by_groups",
    "encode_nucleotides_by_codon_groups",
    "get_grouping",
    "is_amino_acid_sequence",
    "is_nucleotide_sequence",
    "parse_fasta",
    "permutations_of",
    "shuffle_sequence",
    "validate_sequence",
    "write_fasta",
]
