"""Tests for the p-assertion data model and its XML mapping."""

from __future__ import annotations

import pytest

from repro.core.passertion import (
    ActorStatePAssertion,
    GroupAssertion,
    GroupKind,
    InteractionKey,
    InteractionPAssertion,
    ViewKind,
    parse_passertion,
)
from repro.core.validation import (
    validate_group_assertion_xml,
    validate_passertion_xml,
)
from repro.soa.xmldoc import XmlElement, parse_xml


def make_key(i: int = 1) -> InteractionKey:
    return InteractionKey(interaction_id=f"msg-{i}", sender="client", receiver="svc")


def make_content(text: str = "payload") -> XmlElement:
    el = XmlElement("content-doc")
    el.add(text)
    return el


class TestInteractionKey:
    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError):
            InteractionKey(interaction_id="", sender="a", receiver="b")
        with pytest.raises(ValueError):
            InteractionKey(interaction_id="m", sender="", receiver="b")

    def test_xml_roundtrip(self):
        key = make_key()
        assert InteractionKey.from_xml(key.to_xml()) == key

    def test_wrong_element_rejected(self):
        with pytest.raises(ValueError):
            InteractionKey.from_xml(XmlElement("nope"))

    def test_hashable_and_ordered(self):
        keys = {make_key(1), make_key(2), make_key(1)}
        assert len(keys) == 2
        assert sorted(keys) == [make_key(1), make_key(2)]


class TestInteractionPAssertion:
    def make(self) -> InteractionPAssertion:
        return InteractionPAssertion(
            interaction_key=make_key(),
            view=ViewKind.SENDER,
            asserter="client",
            local_id="pa-1",
            operation="compress",
            content=make_content(),
        )

    def test_xml_roundtrip(self):
        pa = self.make()
        restored = parse_passertion(parse_xml(pa.to_xml().serialize()))
        assert isinstance(restored, InteractionPAssertion)
        assert restored.interaction_key == pa.interaction_key
        assert restored.view == pa.view
        assert restored.operation == "compress"
        assert restored.content.text == "payload"

    def test_store_key_includes_all_identity_parts(self):
        pa = self.make()
        assert pa.store_key == (make_key(), "sender", "client", "pa-1")

    def test_empty_asserter_rejected(self):
        with pytest.raises(ValueError):
            InteractionPAssertion(
                interaction_key=make_key(),
                view=ViewKind.SENDER,
                asserter="",
                local_id="x",
                operation="op",
                content=make_content(),
            )

    def test_valid_against_validator(self):
        assert validate_passertion_xml(self.make().to_xml()) == []


class TestActorStatePAssertion:
    def make(self) -> ActorStatePAssertion:
        return ActorStatePAssertion(
            interaction_key=make_key(),
            view=ViewKind.RECEIVER,
            asserter="svc",
            local_id="pa-2",
            state_type="script",
            content=make_content("#!/bin/sh"),
        )

    def test_xml_roundtrip(self):
        pa = self.make()
        restored = parse_passertion(parse_xml(pa.to_xml().serialize()))
        assert isinstance(restored, ActorStatePAssertion)
        assert restored.state_type == "script"
        assert restored.content.text == "#!/bin/sh"

    def test_empty_state_type_rejected(self):
        with pytest.raises(ValueError):
            ActorStatePAssertion(
                interaction_key=make_key(),
                view=ViewKind.RECEIVER,
                asserter="svc",
                local_id="x",
                state_type="",
                content=make_content(),
            )

    def test_valid_against_validator(self):
        assert validate_passertion_xml(self.make().to_xml()) == []


class TestGroupAssertion:
    def make(self, seq=3) -> GroupAssertion:
        return GroupAssertion(
            group_id="session-1",
            kind=GroupKind.THREAD,
            member=make_key(),
            asserter="client",
            sequence=seq,
        )

    def test_xml_roundtrip(self):
        ga = self.make()
        restored = GroupAssertion.from_xml(parse_xml(ga.to_xml().serialize()))
        assert restored == ga

    def test_roundtrip_without_sequence(self):
        ga = self.make(seq=None)
        restored = GroupAssertion.from_xml(ga.to_xml())
        assert restored.sequence is None

    def test_negative_sequence_rejected(self):
        with pytest.raises(ValueError):
            self.make(seq=-1)

    def test_valid_against_validator(self):
        assert validate_group_assertion_xml(self.make().to_xml()) == []


class TestParseErrors:
    def test_unknown_kind_rejected(self):
        el = InteractionPAssertion(
            interaction_key=make_key(),
            view=ViewKind.SENDER,
            asserter="a",
            local_id="x",
            operation="op",
            content=make_content(),
        ).to_xml()
        el.attrs["kind"] = "mystery"
        with pytest.raises(ValueError, match="unknown p-assertion kind"):
            parse_passertion(el)

    def test_empty_content_rejected(self):
        el = parse_xml(
            '<p-assertion kind="interaction">'
            '<interaction-key id="m" sender="a" receiver="b"/>'
            "<view>sender</view><asserter>a</asserter>"
            "<local-id>x</local-id><operation>op</operation>"
            "<content/></p-assertion>"
        )
        with pytest.raises(ValueError, match="empty"):
            parse_passertion(el)


class TestValidator:
    def test_reports_all_problems(self):
        el = parse_xml('<p-assertion kind="interaction"><view>weird</view></p-assertion>')
        problems = validate_passertion_xml(el)
        joined = " | ".join(problems)
        assert "interaction-key" in joined
        assert "invalid view" in joined
        assert "asserter" in joined
        assert "content" in joined

    def test_wrong_root(self):
        assert validate_passertion_xml(XmlElement("other"))

    def test_group_validator_checks_kind_and_sequence(self):
        el = parse_xml(
            '<group-assertion id="g" kind="bogus" sequence="x">'
            '<interaction-key id="m" sender="a" receiver="b"/>'
            "<asserter>a</asserter></group-assertion>"
        )
        problems = validate_group_assertion_xml(el)
        joined = " | ".join(problems)
        assert "invalid kind" in joined
        assert "non-numeric sequence" in joined
