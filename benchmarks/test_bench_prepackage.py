"""A5 — pre-packaged p-assertions ablation (§7).

"Static analysis of workflows would be useful to pre-package some of the
p-assertions to be recorded, leaving less to perform at runtime."  This
bench quantifies the runtime saving: producing a record document from a
compiled template (two string substitutions) vs constructing and
serializing the XML from scratch per record.
"""

from __future__ import annotations

import pytest

from repro.core.passertion import ViewKind
from repro.core.prepackage import (
    PrepackagedTemplates,
    analyse_workflow,
    build_from_scratch,
)
from repro.grid.dag import Activity, WorkflowDag


@pytest.fixture(scope="module")
def workflow_templates():
    dag = WorkflowDag("compressibility")
    dag.add_activity(Activity("collate"))
    dag.add_activity(Activity("encode"), after=["collate"])
    dag.add_activity(Activity("compress"), after=["encode"])
    dag.add_activity(Activity("measure"), after=["compress"])
    dag.add_activity(Activity("add_size"), after=["measure"])
    return analyse_workflow(dag)


def test_bench_record_prep_from_scratch(benchmark, workflow_templates):
    template = workflow_templates[2]
    counter = iter(range(10_000_000))

    def build():
        i = next(counter)
        return build_from_scratch(template, ViewKind.SENDER, f"m-{i}", f"d-{i}")

    text = benchmark(build)
    assert "compress" in text


def test_bench_record_prep_prepackaged(benchmark, workflow_templates, report):
    pkg = PrepackagedTemplates(workflow_templates, session_id="bench")
    counter = iter(range(10_000_000))

    def instantiate():
        i = next(counter)
        return pkg.instantiate("compress", ViewKind.SENDER, f"m-{i}", f"d-{i}")

    text = benchmark(instantiate)
    assert "compress" in text

    # Quantify the saving once, outside the timed region.
    import time

    n = 2000
    start = time.perf_counter()
    for i in range(n):
        pkg.instantiate("compress", ViewKind.SENDER, f"x-{i}", f"d-{i}")
    fast = time.perf_counter() - start
    template = workflow_templates[2]
    start = time.perf_counter()
    for i in range(n):
        build_from_scratch(template, ViewKind.SENDER, f"x-{i}", f"d-{i}")
    slow = time.perf_counter() - start
    speedup = slow / fast
    report(
        "A5: pre-packaged p-assertions",
        f"from-scratch record prep:  {slow / n * 1e6:.1f} us/record\n"
        f"pre-packaged record prep:  {fast / n * 1e6:.1f} us/record\n"
        f"speedup: {speedup:.1f}x",
    )
    assert speedup > 2.0
