"""Replica-set semantics of the router and federated reads (in-process).

The write-ack matrix under test (see README's failure-semantics table):
an R-replicated p-assertion write acks only when all R copies persist; a
member-down partial commit journals the missing share and raises
:class:`~repro.store.distributed.PartialCommitError`; a retried in-doubt
batch converges (duplicate rejections are skipped at R > 1); federated
reads fail over inside the replica set and never double-count replicas.

Everything here runs against in-process ``MemoryBackend`` members with a
simulated-outage wrapper, so the replication logic is tested at memory
speed; the process-fleet (socket + SIGKILL) variants live in
``test_fleet_supervisor.py``.
"""

from __future__ import annotations

import pytest

from repro.soa.envelope import Fault
from repro.store.backends import MemoryBackend
from repro.store.distributed import (
    FederatedQueryClient,
    PartialCommitError,
    StoreRouter,
    consolidate,
)
from repro.store.interface import DuplicateAssertionError

from tests.test_store_backends import ga, ipa, key, spa


class FlakyStore(MemoryBackend):
    """A member with a switchable simulated outage (the transport's shape).

    While ``down``, every remote-meaningful operation raises the
    transport's member-down signature,
    ``Fault("worker-unavailable", ...)`` — exactly what an
    :class:`~repro.fleet.remote.RemoteStore` surfaces when its worker
    process is gone.
    """

    def __init__(self, name: str = "?"):
        super().__init__()
        self.flaky_name = name
        self.down = False

    def _guard(self):
        if self.down:
            raise Fault(
                "worker-unavailable",
                f"simulated outage of {self.flaky_name!r}",
                detail={"worker": self.flaky_name, "attempts": "1"},
            )

    def put(self, assertion):
        self._guard()
        return super().put(assertion)

    def put_many(self, assertions):
        self._guard()
        return super().put_many(assertions)

    def interaction_keys(self):
        self._guard()
        return super().interaction_keys()

    def interaction_passertions(self, key, view=None):
        self._guard()
        return super().interaction_passertions(key, view)

    def actor_state_passertions(self, key, view=None, state_type=None):
        self._guard()
        return super().actor_state_passertions(key, view, state_type)

    def group_members(self, group_id):
        self._guard()
        return super().group_members(group_id)

    def counts(self):
        self._guard()
        return super().counts()

    @property
    def generation(self):
        self._guard()
        return super().generation


def make_replicated(n=4, replicas=2):
    stores = {f"store-{i:02d}": FlakyStore(f"store-{i:02d}") for i in range(n)}
    return StoreRouter(stores, replicas=replicas), stores


class TestReplicaPlacement:
    def test_replica_count_validated(self):
        stores = {f"s{i}": MemoryBackend() for i in range(2)}
        with pytest.raises(ValueError):
            StoreRouter(dict(stores), replicas=0)
        with pytest.raises(ValueError):
            StoreRouter(dict(stores), replicas=3)

    def test_replica_set_shape(self):
        router, _ = make_replicated(n=4, replicas=2)
        for i in range(30):
            rs = router.replica_set(key(i))
            assert len(rs) == 2
            assert len(set(rs)) == 2
            assert rs[0] == router.owner_of(key(i))

    def test_successor_placement_is_ring_adjacent(self):
        router, _ = make_replicated(n=4, replicas=3)
        names = router.store_names
        for i in range(30):
            rs = router.replica_set(key(i))
            start = names.index(rs[0])
            assert rs == [names[(start + j) % 4] for j in range(3)]

    def test_replicas_default_preserves_owner_only(self):
        router, stores = make_replicated(n=3, replicas=1)
        owner = router.put(ipa(1))
        holders = [
            name for name, s in stores.items()
            if s.interaction_passertions(key(1))
        ]
        assert holders == [owner]


class TestReplicatedWrites:
    def test_put_writes_all_replicas(self):
        router, stores = make_replicated()
        router.put(ipa(1))
        rs = router.replica_set(key(1))
        for name, store in stores.items():
            held = bool(store.interaction_passertions(key(1)))
            assert held == (name in rs)

    def test_put_many_matches_put_loop_placement(self):
        router_a, stores_a = make_replicated()
        router_b, stores_b = make_replicated()
        batch = [ipa(i) for i in range(12)] + [ga(0), spa(3)]
        for a in batch:
            router_a.put(a)
        labels = router_b.put_many(batch)
        from repro.core.passertion import GroupAssertion

        assert labels == [
            "*"
            if isinstance(a, GroupAssertion)
            else router_b.replica_set(a.interaction_key)[0]
            for a in batch
        ]
        for name in stores_a:
            assert stores_a[name].counts() == stores_b[name].counts()
        assert router_a.records_routed == router_b.records_routed

    def test_partial_commit_raises_and_journals(self):
        router, stores = make_replicated()
        target = ipa(1)
        rs = router.replica_set(key(1))
        stores[rs[1]].down = True
        with pytest.raises(PartialCommitError) as excinfo:
            router.put(target)
        assert excinfo.value.committed == [rs[0]]
        assert excinfo.value.missing == [rs[1]]
        assert router.pending_repairs() == {rs[1]: 1}
        assert rs[1] in router.degraded_members
        # The live replica holds the share; the write was still NOT acked.
        assert stores[rs[0]].interaction_passertions(key(1))

    def test_repair_flushes_journal_after_restore(self):
        router, stores = make_replicated()
        rs = router.replica_set(key(1))
        stores[rs[1]].down = True
        with pytest.raises(PartialCommitError):
            router.put(ipa(1))
        stores[rs[1]].down = False
        router.mark_restored(rs[1])
        pushed = router.repair(rs[1])
        assert pushed == 1
        assert router.pending_repairs() == {}
        assert stores[rs[1]].interaction_passertions(key(1))

    def test_retry_converges_after_restore(self):
        """The acked-write guarantee: retrying an in-doubt batch acks it."""
        router, stores = make_replicated()
        batch = [ipa(i) for i in range(8)]
        victim = router.replica_set(key(0))[1]
        stores[victim].down = True
        with pytest.raises(PartialCommitError):
            router.put_many(batch)
        stores[victim].down = False
        router.mark_restored(victim)
        labels = router.put_many(batch)  # duplicate-skip convergence
        assert len(labels) == 8
        for a in batch:
            for member in router.replica_set(a.interaction_key):
                held = stores[member].interaction_passertions(a.interaction_key)
                assert [p for p in held if p.store_key == a.store_key]

    def test_degraded_member_is_journaled_without_dialing(self):
        router, stores = make_replicated()
        rs = router.replica_set(key(5))
        router.mark_degraded(rs[0])
        with pytest.raises(PartialCommitError):
            router.put(ipa(5))
        assert router.pending_repairs() == {rs[0]: 1}
        # The degraded store was never dialed (no outage simulated, but
        # also no data written to it).
        assert not stores[rs[0]].interaction_passertions(key(5))

    def test_broadcast_acks_above_replication_floor(self):
        """A group assertion acks while >= R live members hold it."""
        router, stores = make_replicated(n=4, replicas=2)
        stores["store-03"].down = True
        label = router.put(ga(1))  # 3 of 4 committed, floor is 2: acked
        assert label == "*"
        assert router.pending_repairs() == {"store-03": 1}

    def test_r1_duplicate_still_propagates(self):
        """At R=1 duplicates are a client error, not a retry artifact."""
        router, _ = make_replicated(n=3, replicas=1)
        router.put(ipa(1))
        with pytest.raises(DuplicateAssertionError):
            router.put(ipa(1))


class TestFailoverReads:
    def test_read_fails_over_to_live_replica(self):
        router, stores = make_replicated()
        router.put(ipa(1))
        queries = FederatedQueryClient(router)
        rs = router.replica_set(key(1))
        stores[rs[0]].down = True
        held = queries.interaction_passertions(key(1))
        assert len(held) == 1
        assert queries.failovers == 1
        assert rs[0] in router.degraded_members

    def test_all_replicas_down_raises_with_detail(self):
        router, stores = make_replicated()
        router.put(ipa(1))
        queries = FederatedQueryClient(router)
        for name in router.replica_set(key(1)):
            stores[name].down = True
        with pytest.raises(Fault) as excinfo:
            queries.interaction_passertions(key(1))
        assert excinfo.value.code == "worker-unavailable"
        assert "replicas" in excinfo.value.detail

    def test_group_reads_use_any_live_member(self):
        router, stores = make_replicated()
        router.put(ipa(1))
        router.put(ga(1))
        queries = FederatedQueryClient(router)
        stores[router.store_names[0]].down = True
        assert queries.group_members("session-A") == [key(1)]

    def test_counts_do_not_double_count_replicas(self):
        router, _ = make_replicated(n=4, replicas=2)
        for i in range(10):
            router.put(ipa(i))
        router.put(ga(0))
        queries = FederatedQueryClient(router)
        counts = queries.counts()
        assert counts.interaction_passertions == 10
        assert counts.group_assertions == 1
        assert counts.interaction_records == 10

    def test_keys_union_survives_one_down_member(self):
        router, stores = make_replicated(n=4, replicas=2)
        for i in range(20):
            router.put(ipa(i))
        queries = FederatedQueryClient(router)
        stores["store-01"].down = True
        keys = queries.interaction_keys()
        assert len(keys) == 20

    def test_keys_union_refuses_when_replica_set_fully_dead(self):
        router, stores = make_replicated(n=3, replicas=1)
        for i in range(10):
            router.put(ipa(i))
        queries = FederatedQueryClient(router)
        stores["store-01"].down = True  # R=1: that member's keys are gone
        with pytest.raises(Fault) as excinfo:
            queries.interaction_keys()
        assert excinfo.value.code == "worker-unavailable"

    def test_suspect_member_needs_freshness_probe(self):
        router, stores = make_replicated()
        router.put(ipa(1))
        rs = router.replica_set(key(1))
        router.generations()  # record the freshness floor
        router.mark_degraded(rs[0])
        router.mark_restored(rs[0])
        assert rs[0] in router.suspect_members
        # The member answers with its real (>= floor) generation: cleared.
        assert router.confirm_fresh(rs[0])
        assert rs[0] not in router.suspect_members

    def test_stale_suspect_member_stays_demoted(self):
        router, stores = make_replicated()
        router.put(ipa(1))
        rs = router.replica_set(key(1))
        router.generations()
        router.mark_degraded(rs[0])
        router.mark_restored(rs[0])
        # Simulate a rejoined-but-behind replica: raise its floor past
        # anything it can report.
        router._gen_floor[rs[0]] = 10_000
        assert not router.confirm_fresh(rs[0])
        assert rs[0] in router.suspect_members
        # Reads still answer — from the fresh peer.
        queries = FederatedQueryClient(router)
        assert queries.interaction_passertions(key(1))


class TestDownMemberCaching:
    def test_generations_reports_none_for_down_members(self):
        router, stores = make_replicated()
        stores["store-02"].down = True
        gens = router.generations()
        assert gens["store-02"] is None
        assert all(
            isinstance(g, int) for n, g in gens.items() if n != "store-02"
        )
        assert "store-02" in router.degraded_members

    def test_down_member_poisons_the_generation_vector(self):
        """No cached federated merge may revalidate during an outage."""
        router, stores = make_replicated()
        stores["store-02"].down = True
        v1 = router.generation_vector()
        v2 = router.generation_vector()
        assert not v1.fresh(v2)

    def test_vector_is_stable_again_once_all_members_answer(self):
        router, stores = make_replicated()
        v1 = router.generation_vector()
        assert v1.fresh(router.generation_vector())


class TestReplicatedConsolidate:
    def test_consolidate_dedupes_replicas(self):
        router, _ = make_replicated(n=4, replicas=2)
        for i in range(10):
            router.put(ipa(i))
        router.put(ga(0))
        target = MemoryBackend()
        moved_p, moved_g = consolidate(router, target)
        assert moved_p == 10
        assert moved_g == 1
        assert target.counts().interaction_passertions == 10
