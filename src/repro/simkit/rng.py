"""Deterministic randomness helpers.

Every stochastic component (sequence synthesis, shuffling, scheduler jitter)
draws from a named stream derived from one master seed, so that adding a new
consumer of randomness never perturbs existing streams — runs stay exactly
reproducible as the system grows.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, stream: str) -> int:
    """Derive a 64-bit child seed for a named stream from a master seed.

    Uses SHA-256 over ``"<master>/<stream>"`` so that distinct stream names
    give statistically independent seeds and the mapping is stable across
    Python versions and platforms (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{master_seed}/{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of named, independently-seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the RNG for ``name``, creating it deterministically on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose master seed derives from this one."""
        return RngRegistry(derive_seed(self.master_seed, f"fork/{name}"))
