#!/usr/bin/env python
"""Provenance beyond one run: distribution, consolidation, curation.

The paper's §7 sketches the store's future: parallel submission into
several PReServ instances with cross-linked documentation, a consolidation
facility, and long-term curation.  This example exercises all three against
real recorded provenance:

1. run two experiments; 2. distribute their provenance across three store
instances; 3. navigate via cross-links; 4. consolidate back into one store;
5. apply a retention policy archiving the older session; 6. verify and
restore the archive.

Run:  python examples/provenance_lifecycle.py
"""

from __future__ import annotations

from pathlib import Path
import tempfile

from repro.app import Experiment, ExperimentConfig
from repro.core.query import build_trace
from repro.store.backends import MemoryBackend
from repro.store.curation import (
    RetentionPolicy,
    apply_retention,
    import_archive,
    verify_archive,
)
from repro.store.distributed import (
    FederatedQueryClient,
    StoreRouter,
    consolidate,
)


def main() -> None:
    exp = Experiment(
        ExperimentConfig(sample_bytes=2500, n_permutations=3, record_scripts=True)
    )
    print("running two experiments...")
    run_old = exp.run()
    run_new = exp.run()
    total = exp.backend.counts()
    print(f"  provenance recorded: {total.total} assertions, "
          f"{total.interaction_records} interaction records")

    print("\n1. distributing across three PReServ instances")
    router = StoreRouter({f"preserv-{i}": MemoryBackend() for i in range(3)})
    for assertion in exp.backend.all_assertions():
        router.put(assertion)
    for name in router.store_names:
        counts = router.store(name).counts()
        links = len(router.cross_links(name))
        print(f"  {name}: {counts.interaction_records} interaction records, "
              f"{links} cross-links to other stores")

    print("\n2. navigating via cross-links")
    some_key = exp.backend.interaction_keys()[0]
    start = router.store_names[0]
    home = router.resolve(start, some_key)
    print(f"  from {start}, interaction {some_key.interaction_id} "
          f"resolves to {home}")
    fed = FederatedQueryClient(router)
    assert fed.counts().interaction_records == total.interaction_records
    print(f"  federated query sees all {fed.counts().interaction_records} records")

    print("\n3. consolidating into a single store")
    merged = MemoryBackend()
    moved_p, moved_g = consolidate(router, merged)
    print(f"  moved {moved_p} p-assertions and {moved_g} group assertions")
    trace = build_trace(merged, run_new.session_id)
    assert trace.undocumented() == []
    print(f"  trace of {run_new.session_id} intact after consolidation")

    with tempfile.TemporaryDirectory(prefix="repro-lifecycle-") as tmp:
        archive = Path(tmp) / "cold-sessions.xml"
        print("\n4. curation: archiving the older session")
        policy = RetentionPolicy(
            should_archive=lambda s: s == run_old.session_id,
            archivist="example-curator",
        )
        archived, count = apply_retention(merged, policy, archive)
        print(f"  archived sessions {archived}: {count} assertions -> {archive.name}")

        print("\n5. verifying and restoring the archive")
        assert verify_archive(archive) == count
        print(f"  integrity check passed ({count} assertions, checksum OK)")
        restored = MemoryBackend()
        import_archive(archive, restored)
        old_trace = build_trace(restored, run_old.session_id)
        assert old_trace.undocumented() == []
        print(f"  restored store reconstructs the archived session's trace "
              f"({len(old_trace.interactions)} interactions)")

    print("\nprovenance survived distribution, consolidation and curation. QED.")


if __name__ == "__main__":
    main()
