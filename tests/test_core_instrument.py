"""Tests for the provenance bus interceptor."""

from __future__ import annotations

import pytest

from repro.core.instrument import ProvenanceInterceptor
from repro.core.passertion import ViewKind
from repro.core.recorder import ProvenanceRecorder, RecordingMode
from repro.soa.bus import MessageBus
from repro.soa.xmldoc import XmlElement
from repro.store.backends import MemoryBackend
from repro.store.service import PReServActor
from tests.test_soa_bus import EchoService


@pytest.fixture
def deployment():
    bus = MessageBus()
    backend = MemoryBackend()
    bus.register(PReServActor(backend))
    bus.register(EchoService())
    recorder = ProvenanceRecorder(bus, mode=RecordingMode.SYNCHRONOUS)
    return bus, backend, recorder


def call_echo(bus, text="hello", headers=None):
    payload = XmlElement("data")
    payload.add(text)
    return bus.call("client", "echo", "echo", payload, extra_headers=headers or {})


class TestInterceptor:
    def test_documents_both_views(self, deployment):
        bus, backend, recorder = deployment
        interceptor = ProvenanceInterceptor(recorder, session_id="s-1")
        bus.add_interceptor(interceptor)
        call_echo(bus)
        keys = backend.interaction_keys()
        assert len(keys) == 1
        passertions = backend.interaction_passertions(keys[0])
        views = {p.view for p in passertions}
        assert views == {ViewKind.SENDER, ViewKind.RECEIVER}
        # Asserters match the paper's model: each side asserts its own view.
        by_view = {p.view: p.asserter for p in passertions}
        assert by_view[ViewKind.SENDER] == "client"
        assert by_view[ViewKind.RECEIVER] == "echo"

    def test_session_membership_recorded(self, deployment):
        bus, backend, recorder = deployment
        bus.add_interceptor(ProvenanceInterceptor(recorder, session_id="s-42"))
        call_echo(bus)
        call_echo(bus)
        assert len(backend.group_members("s-42")) == 2
        assert backend.group_ids(kind="session") == ["s-42"]

    def test_store_calls_not_self_documented(self, deployment):
        """Recording to the store must not recursively document itself."""
        bus, backend, recorder = deployment
        bus.add_interceptor(ProvenanceInterceptor(recorder, session_id="s-1"))
        call_echo(bus)
        counts = backend.counts()
        # Exactly one interaction documented (the echo), none for preserv.
        assert counts.interaction_records == 1
        for key in backend.interaction_keys():
            assert key.receiver == "echo"

    def test_thread_header_creates_sequenced_thread_group(self, deployment):
        bus, backend, recorder = deployment
        bus.add_interceptor(ProvenanceInterceptor(recorder, session_id="s-1"))
        call_echo(bus, headers={"thread": "t-1"})
        call_echo(bus, headers={"thread": "t-1"})
        members = backend.group_members("t-1")
        assert len(members) == 2
        assert backend.group_kind("t-1") == "thread"

    def test_caused_by_header_recorded_as_state(self, deployment):
        bus, backend, recorder = deployment
        bus.add_interceptor(ProvenanceInterceptor(recorder, session_id="s-1"))
        call_echo(bus, headers={"caused-by": "msg-a, msg-b"})
        key = backend.interaction_keys()[0]
        states = backend.actor_state_passertions(key, state_type="caused-by")
        assert len(states) == 1
        messages = [m.text for m in states[0].content.find_all("message")]
        assert messages == ["msg-a", "msg-b"]

    def test_script_recording_when_enabled(self, deployment):
        bus, backend, recorder = deployment
        interceptor = ProvenanceInterceptor(
            recorder,
            session_id="s-1",
            script_provider=lambda ep: f"#!/bin/sh\n# {ep}\n" if ep == "echo" else None,
            record_scripts=True,
        )
        bus.add_interceptor(interceptor)
        call_echo(bus)
        key = backend.interaction_keys()[0]
        scripts = backend.actor_state_passertions(key, state_type="script")
        assert len(scripts) == 1
        assert "# echo" in scripts[0].content.text
        assert scripts[0].asserter == "echo"

    def test_no_scripts_when_disabled(self, deployment):
        bus, backend, recorder = deployment
        bus.add_interceptor(
            ProvenanceInterceptor(
                recorder,
                session_id="s-1",
                script_provider=lambda ep: "#!/bin/sh",
                record_scripts=False,
            )
        )
        call_echo(bus)
        key = backend.interaction_keys()[0]
        assert backend.actor_state_passertions(key, state_type="script") == []

    def test_records_per_interaction_matches_paper(self, deployment):
        """2 interaction p-assertions + 1 session group per call (base mode)."""
        bus, backend, recorder = deployment
        interceptor = ProvenanceInterceptor(recorder, session_id="s-1")
        bus.add_interceptor(interceptor)
        call_echo(bus)
        counts = backend.counts()
        assert counts.interaction_passertions == 2
        assert counts.group_assertions == 1
        assert interceptor.interactions_documented == 1

    def test_faulting_calls_still_documented(self, deployment):
        """Failures are part of the process; provenance must capture them."""
        from repro.soa.envelope import Fault

        bus, backend, recorder = deployment
        bus.add_interceptor(ProvenanceInterceptor(recorder, session_id="s-1"))
        call_echo(bus)  # one successful call first
        payload = XmlElement("data")
        payload.add("x")
        with pytest.raises(Fault):
            bus.call("client", "echo", "fail", payload)
        keys = backend.interaction_keys()
        operations = set()
        for key in keys:
            for pa in backend.interaction_passertions(key):
                operations.add(pa.operation)
        assert "fail" in operations

    def test_input_digests_recorded_from_stamped_payload(self, deployment):
        bus, backend, recorder = deployment
        bus.add_interceptor(ProvenanceInterceptor(recorder, session_id="s-1"))
        payload = XmlElement("data", attrs={"digest": "abc123"})
        payload.element("nested", "x", digest="def456")
        payload.add("body")
        bus.call("client", "echo", "echo", payload)
        key = backend.interaction_keys()[0]
        states = backend.actor_state_passertions(key, state_type="input-digests")
        assert len(states) == 1
        digests = [d.text for d in states[0].content.find_all("digest")]
        assert digests == ["abc123", "def456"]

    def test_no_digest_state_for_unstamped_payload(self, deployment):
        bus, backend, recorder = deployment
        bus.add_interceptor(ProvenanceInterceptor(recorder, session_id="s-1"))
        call_echo(bus)
        key = backend.interaction_keys()[0]
        assert backend.actor_state_passertions(key, state_type="input-digests") == []

    def test_excluded_endpoints_configurable(self, deployment):
        bus, backend, recorder = deployment
        bus.add_interceptor(
            ProvenanceInterceptor(
                recorder, session_id="s-1", exclude_endpoints=("echo", "preserv")
            )
        )
        call_echo(bus)
        assert backend.counts().total == 0
