"""Micro-benchmark and ablation harness tests."""

from __future__ import annotations

import pytest

from repro.figures.ablation import (
    backends_table,
    compressibility_table,
    granularity_table,
    run_backends,
    run_compressibility,
    run_granularity,
)
from repro.figures.microbench import (
    microbench_table,
    pregenerated_record,
    run_microbench,
)
from repro.figures.cli import build_parser, main


class TestMicrobench:
    def test_modelled_round_trip_matches_paper(self):
        result = run_microbench(messages=50)
        assert result.modelled_per_record_s == pytest.approx(0.018, rel=0.05)

    def test_real_recording_is_fast_and_positive(self):
        result = run_microbench(messages=50)
        assert 0 < result.real_per_record_s < 0.05

    def test_pregenerated_records_distinct(self):
        a, b = pregenerated_record(0), pregenerated_record(1)
        assert a.assertion.interaction_key != b.assertion.interaction_key

    def test_table_renders(self):
        assert "ms/record" in microbench_table(run_microbench(messages=10))

    def test_validation(self):
        with pytest.raises(ValueError):
            run_microbench(messages=0)


class TestGranularityAblation:
    def test_overhead_constant_per_permutation_model(self):
        """With per-permutation recording costs, batching doesn't change the
        recording overhead *ratio* much, but tiny batches explode total time
        through scheduling overhead — the paper's granularity argument."""
        points = run_granularity(batch_sizes=(1, 10, 100), n_permutations=200)
        by_batch = {p.permutations_per_script: p for p in points}
        # Tiny batches pay serialized per-job dispatch overhead on every
        # permutation (matchmaking itself overlaps across queued jobs).
        assert by_batch[1].none_s > by_batch[100].none_s * 1.08
        # Total time decreases monotonically with batch size.
        ordered = [by_batch[b].none_s for b in (1, 10, 100)]
        assert ordered == sorted(ordered, reverse=True)
        # All overheads stay positive and bounded.
        for p in points:
            assert 0 < p.overhead < 0.2

    def test_table_renders(self):
        assert "perms/script" in granularity_table(
            run_granularity(batch_sizes=(10, 100), n_permutations=100)
        )


class TestBackendAblation:
    def test_all_backends_benchmarked(self, tmp_path):
        points = run_backends(tmp_path, records=40)
        assert [p.backend for p in points] == ["memory", "filesystem", "kvlog"]
        for p in points:
            assert p.records == 40
            assert p.record_s > 0
        # Persistent backends report reopen cost; memory does not.
        assert points[0].reopen_s is None
        assert points[1].reopen_s is not None
        assert points[2].reopen_s is not None

    def test_memory_fastest(self, tmp_path):
        points = {p.backend: p for p in run_backends(tmp_path, records=40)}
        assert points["memory"].record_s <= points["filesystem"].record_s

    def test_table_renders(self, tmp_path):
        assert "records/s" in backends_table(run_backends(tmp_path, records=10))


class TestCompressibilityAblation:
    @pytest.fixture(scope="class")
    def points(self):
        return run_compressibility(
            codecs=("gz-like", "gzip"),
            groupings=("hp2", "identity20"),
            sample_bytes=1200,
            n_permutations=3,
        )

    def test_grid_covered(self, points):
        combos = {(p.grouping, p.codec) for p in points}
        assert combos == {
            ("hp2", "gz-like"),
            ("hp2", "gzip"),
            ("identity20", "gz-like"),
            ("identity20", "gzip"),
        }

    def test_structured_sample_more_compressible_under_grouping(self, points):
        """The paper's scientific narrative: on the full 20-letter alphabet
        protein is (nearly) incompressible relative to its permutations
        [Nevill-Manning & Witten], but recoding with a reduced alphabet
        exposes structure [Sampath] — compressibility drops below 1."""
        for p in points:
            if p.grouping == "hp2":
                assert p.compressibility < 0.999, (p.grouping, p.codec)
            else:  # identity20: no reduction, near-incompressible
                assert 0.97 < p.compressibility < 1.03, (p.grouping, p.codec)

    def test_reduced_alphabet_lowers_ratio(self, points):
        """hp2 recoding compresses better than the full 20-letter alphabet."""
        hp2 = next(p for p in points if (p.grouping, p.codec) == ("hp2", "gzip"))
        iden = next(
            p for p in points if (p.grouping, p.codec) == ("identity20", "gzip")
        )
        assert hp2.sample_ratio < iden.sample_ratio

    def test_table_renders(self, points):
        assert "compressibility" in compressibility_table(points)


class TestCli:
    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("micro", "fig4", "fig5", "granularity", "backends", "compress", "all"):
            assert cmd in text

    def test_micro_command_runs(self, capsys):
        assert main(["micro", "--messages", "10"]) == 0
        out = capsys.readouterr().out
        assert "ms/record" in out

    def test_fig4_command_runs(self, capsys):
        assert main(["fig4"]) == 0
        assert "no-recording" in capsys.readouterr().out

    def test_compress_command_runs(self, capsys):
        assert (
            main(["compress", "--sample-bytes", "600", "--permutations", "2"]) == 0
        )
        assert "grouping" in capsys.readouterr().out
