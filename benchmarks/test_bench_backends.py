"""A2 — store backend ablation.

PReServ's layered design (Figure 3) makes backends pluggable; this bench
compares record throughput and reopen/replay cost of the memory, filesystem
and kvlog (embedded database) backends.
"""

from __future__ import annotations

import pytest

from repro.figures.ablation import backends_table, run_backends
from repro.figures.microbench import pregenerated_record
from repro.store.backends import FileSystemBackend, KVLogBackend, MemoryBackend


@pytest.fixture(scope="module")
def points(tmp_path_factory):
    return run_backends(tmp_path_factory.mktemp("backends"), records=300)


def test_bench_backend_comparison(benchmark, points, report):
    benchmark.pedantic(
        lambda: [p.records_per_second for p in points], rounds=1, iterations=1
    )
    report("A2: store backend ablation", backends_table(points))
    by_name = {p.backend: p for p in points}
    assert by_name["memory"].record_s <= by_name["filesystem"].record_s
    for p in points:
        benchmark.extra_info[f"{p.backend}_rps"] = round(p.records_per_second)


@pytest.mark.parametrize("backend_name", ["memory", "filesystem", "kvlog"])
def test_bench_record_throughput(benchmark, backend_name, tmp_path):
    if backend_name == "memory":
        backend = MemoryBackend()
    elif backend_name == "filesystem":
        backend = FileSystemBackend(tmp_path / "fs")
    else:
        backend = KVLogBackend(tmp_path / "kv.db")
    records = [pregenerated_record(i) for i in range(20_000)]
    counter = iter(range(20_000))

    def put_one():
        backend.put(records[next(counter)].assertion)

    benchmark.pedantic(put_one, rounds=200, iterations=1)
    backend.close()


def test_bench_kvlog_reopen(benchmark, tmp_path):
    """Replay cost: rebuilding indexes from the log on open."""
    path = tmp_path / "kv.db"
    backend = KVLogBackend(path)
    for i in range(500):
        backend.put(pregenerated_record(i).assertion)
    backend.close()

    def reopen():
        b = KVLogBackend(path)
        n = b.counts().interaction_passertions
        b.close()
        return n

    assert benchmark.pedantic(reopen, rounds=5, iterations=1) == 500
