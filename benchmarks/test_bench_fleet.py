"""A10 — out-of-process store fleet: process workers vs the in-process bus.

The paper's §7 scalability answer is parallel submission into *several
provenance store instances*; PR 6's :mod:`repro.fleet` deploys those
instances as worker processes behind the Envelope socket transport.  This
bench regenerates the fleet sweep and asserts its shape:

* concurrent ingest into a 4-worker process fleet reaches at least 1.5x
  the single-process baseline (same store stack, same documents, same
  modeled commit barrier — see :mod:`repro.figures.fleet` for why the
  barrier makes the comparison device-honest and keeps the assertion
  meaningful on single-core hosts);
* the 2-worker smoke (the CI configuration) stores every record and
  leaves nothing behind: no live worker processes, no socket directory —
  the orphan guard for CI.
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path

from repro.figures.fleet import (
    availability_table,
    fleet_sweep_table,
    run_availability_drill,
    run_fleet_sweep,
)

#: acceptance bar: 4-worker process fleet vs the in-process baseline.
SPEEDUP_BAR = 1.5
#: perf assertions on timing-bound paths flake under machine noise; the
#: bar must hold on at least one of this many sweep attempts.
MAX_ATTEMPTS = 3


def _fleet_children():
    """Live worker processes spawned by this process (the orphan check)."""
    return [
        p for p in multiprocessing.active_children()
        if p.name.startswith("preserv-")
    ]


def test_bench_fleet_scaling(benchmark, tmp_path, report):
    attempts = []
    points = None
    try:
        for attempt in range(MAX_ATTEMPTS):
            points = run_fleet_sweep(tmp_path / f"attempt-{attempt}")
            by = {(p.transport, p.workers): p for p in points}
            base = by[("bus", 1)].records_per_s
            ratio = by[("process", 4)].records_per_s / base
            attempts.append(round(ratio, 2))
            if ratio >= SPEEDUP_BAR:
                break
    finally:
        # Whatever happened, no worker may outlive its sweep.
        for child in _fleet_children():  # pragma: no cover - failure path
            child.terminate()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report("A10: out-of-process store fleet", fleet_sweep_table(points))
    for p in points:
        benchmark.extra_info[f"{p.transport}_{p.workers}_rps"] = round(
            p.records_per_s
        )
    benchmark.extra_info["speedup_attempts"] = attempts
    assert any(ratio >= SPEEDUP_BAR for ratio in attempts), (
        f"no sweep reached a 4-worker process-fleet speedup >= "
        f"{SPEEDUP_BAR}x over the in-process baseline across "
        f"{MAX_ATTEMPTS} attempts (got {attempts})"
    )
    assert not _fleet_children(), "sweep left live worker processes behind"


def test_bench_fleet_smoke_two_workers(benchmark, tmp_path, report):
    """The CI smoke: 2 workers, small batches, correctness + cleanup only.

    No perf bar — CI machines are noisy and small — but the sweep itself
    verifies every record landed, and this test verifies the fleet cleaned
    up completely (no orphan workers, no socket debris), even though the
    sweep tears fleets down inside the run.
    """
    sockets_before = sorted(Path("/tmp").glob("preserv-fleet-*"))
    points = run_fleet_sweep(
        tmp_path,
        worker_counts=(2,),
        sessions=2,
        batches_per_session=4,
        records_per_batch=8,
        commit_barrier_ms=2.0,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report("A10 smoke: 2-worker fleet", fleet_sweep_table(points))
    assert {(p.transport, p.workers) for p in points} == {
        ("bus", 1),
        ("process", 2),
    }
    for p in points:
        assert p.records == 2 * 4 * 8
        assert p.elapsed_s > 0
    # Orphan guard: every worker process joined and every fleet socket
    # directory this run created was removed.
    assert not _fleet_children(), "smoke left live worker processes behind"
    sockets_after = sorted(Path("/tmp").glob("preserv-fleet-*"))
    assert sockets_after == sockets_before, (
        f"smoke left socket directories behind: "
        f"{[str(p) for p in sockets_after if p not in sockets_before]}"
    )


#: recovery must complete well inside the drill, with CI-host slack.
RECOVERY_BOUND_S = 30.0


def test_bench_fleet_availability_drill(benchmark, tmp_path, report):
    """Availability under a mid-stream worker crash (R=2 replication).

    A supervised 2-worker R=2 fleet takes concurrent batch writes and
    reads while one worker is SIGKILLed.  The drill itself verifies zero
    acked-write loss byte-identically; this bench additionally pins the
    operational envelope: the read error rate is exactly 0 (failover,
    not luck) and the supervisor restores replication in bounded time.
    """
    sockets_before = sorted(Path("/tmp").glob("preserv-fleet-*"))
    try:
        drill = run_availability_drill(
            tmp_path,
            workers=2,
            replicas=2,
            batches=10,
            records_per_batch=4,
            kill_after_batches=3,
        )
    finally:
        for child in _fleet_children():  # pragma: no cover - failure path
            child.terminate()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report("A10 availability: crash drill", availability_table(drill))
    benchmark.extra_info["reads"] = drill.reads
    benchmark.extra_info["read_failures"] = drill.read_failures
    benchmark.extra_info["failovers"] = drill.failovers
    benchmark.extra_info["recovery_s"] = round(drill.recovery_s, 3)
    assert drill.read_error_rate == 0.0, (
        f"{drill.read_failures}/{drill.reads} reads failed during the drill"
    )
    assert drill.verified_records == drill.acked_records == 40
    assert 0.0 < drill.recovery_s < RECOVERY_BOUND_S, (
        f"recovery took {drill.recovery_s:.2f}s "
        f"(bound {RECOVERY_BOUND_S:.0f}s)"
    )
    # Orphan guards, as for the smoke: no workers, no socket debris.
    assert not _fleet_children(), "drill left live worker processes behind"
    sockets_after = sorted(Path("/tmp").glob("preserv-fleet-*"))
    assert sockets_after == sockets_before, (
        f"drill left socket directories behind: "
        f"{[str(p) for p in sockets_after if p not in sockets_before]}"
    )
