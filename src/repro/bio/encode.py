"""Group encoding: the Encode by Groups activity.

Replaces each amino acid by its group's symbol under a
:class:`~repro.bio.groupings.GroupingScheme`.  Also provides the nucleotide
codon-group encoding mentioned in Section 3 ("each codon triplet can be
replaced with a symbol representing a group of codons") — used by tests to
construct the semantically-wrong-but-syntactically-fine UC2 scenario.

Note the deliberate absence of input-kind checking here: exactly as in the
paper, a nucleotide sequence flows through amino-acid group encoding without
error because {A, C, G, T} is a subset of the amino-acid alphabet.  Catching
that is the job of the provenance-based semantic validation, not this code.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.bio.alphabet import validate_sequence, NUCLEOTIDES
from repro.bio.groupings import GROUP_SYMBOLS, GroupingScheme


def encode_by_groups(sequence: str, scheme: GroupingScheme) -> str:
    """Recode ``sequence`` with the reduced alphabet of ``scheme``.

    Raises ``ValueError`` if the sequence contains symbols that are not
    amino-acid codes at all (nucleotide input does *not* raise — see module
    docstring).
    """
    table = {aa: scheme.symbol_for(aa) for aa in {c for c in sequence}}
    return "".join(table[c] for c in sequence)


def encode_nucleotides_by_codon_groups(
    sequence: str, codon_groups: Sequence[Sequence[str]]
) -> str:
    """Recode a nucleotide sequence codon-triplet by codon-triplet.

    ``codon_groups`` partitions (a subset of) the 64 codons; each triplet is
    replaced by its group's symbol.  Trailing bases that do not form a full
    codon are an error, as is a codon not covered by the partition.
    """
    validate_sequence(sequence, NUCLEOTIDES)
    if len(sequence) % 3:
        raise ValueError(
            f"sequence length {len(sequence)} is not a whole number of codons"
        )
    table: Dict[str, str] = {}
    for gi, group in enumerate(codon_groups):
        for codon in group:
            if len(codon) != 3:
                raise ValueError(f"codon {codon!r} is not a triplet")
            validate_sequence(codon, NUCLEOTIDES)
            if codon in table:
                raise ValueError(f"codon {codon!r} assigned to two groups")
            table[codon] = GROUP_SYMBOLS[gi]
    out = []
    for i in range(0, len(sequence), 3):
        codon = sequence[i : i + 3]
        try:
            out.append(table[codon])
        except KeyError:
            raise ValueError(f"codon {codon!r} not covered by the partition") from None
    return "".join(out)
