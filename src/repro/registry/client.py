"""Bus client for the registry: one network call per method.

The semantic validator's cost structure — about 10 registry invocations per
interaction validated — is the origin of Figure 5's ~11x slope ratio, so the
client deliberately performs exactly one bus call per method and counts them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.registry.ontology import Ontology
from repro.registry.wsdl import (
    MessagePart,
    OperationDescription,
    PartKey,
    ServiceDescription,
)
from repro.soa.bus import MessageBus
from repro.soa.xmldoc import XmlElement


class RegistryClient:
    """Typed wrapper over the registry actor's operations."""

    def __init__(
        self,
        bus: MessageBus,
        registry_endpoint: str = "registry",
        client_endpoint: str = "registry-client",
    ):
        self.bus = bus
        self.registry_endpoint = registry_endpoint
        self.client_endpoint = client_endpoint
        self.calls = 0

    def _call(self, op_name: str, **attrs: str) -> XmlElement:
        self.calls += 1
        return self.bus.call(
            source=self.client_endpoint,
            target=self.registry_endpoint,
            operation=op_name,
            payload=XmlElement("request", attrs=dict(attrs)),
        )

    def lookup_service(self, service: str) -> Dict[str, str]:
        el = self._call("lookup_service", service=service)
        return dict(el.attrs)

    def get_interface(self, service: str) -> ServiceDescription:
        return ServiceDescription.from_xml(self._call("get_interface", service=service))

    def get_operation(self, service: str, operation: str) -> OperationDescription:
        return OperationDescription.from_xml(
            self._call("get_operation", service=service, operation=operation)
        )

    def get_message(
        self, service: str, operation: str, direction: str
    ) -> List[MessagePart]:
        el = self._call(
            "get_message", service=service, operation=operation, direction=direction
        )
        return [MessagePart.from_xml(p) for p in el.find_all("part")]

    def get_part(self, key: PartKey) -> str:
        el = self._call("get_part", key=key.as_string())
        return el.attrs["key"]

    def get_metadata(self, key: PartKey) -> Dict[str, str]:
        el = self._call("get_metadata", key=key.as_string())
        return {e.attrs["name"]: e.text for e in el.find_all("entry")}

    def semantic_type(self, key: PartKey) -> Optional[str]:
        """Convenience over :meth:`get_metadata`: the part's semantic type."""
        return self.get_metadata(key).get("semantic-type")

    def find_by_metadata(self, name: str, value: str) -> List[PartKey]:
        el = self._call("find_by_metadata", name=name, value=value)
        return [PartKey.parse(p.attrs["key"]) for p in el.find_all("part-ref")]

    def get_ontology(self) -> Ontology:
        return Ontology.from_xml(self._call("get_ontology"))

    def subsumes(self, general: str, specific: str) -> bool:
        el = self._call("subsumes", general=general, specific=specific)
        return el.attrs["result"] == "true"
