"""Tests for the compressor registry and stdlib-backed codecs."""

from __future__ import annotations

import pytest

from repro.compress import (
    Bz2Compressor,
    StoredCompressor,
    ZlibCompressor,
    available_compressors,
    compressed_size,
    get_compressor,
    register_compressor,
)
from repro.compress.api import Compressor


class TestRegistry:
    def test_expected_codecs_registered(self):
        names = available_compressors()
        for expected in ("gz-like", "bz-like", "ppm-like", "gzip", "bzip2", "stored"):
            assert expected in names

    def test_lookup_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="available"):
            get_compressor("lzma-like")

    def test_duplicate_registration_rejected(self):
        class Dup(StoredCompressor):
            name = "stored"

        with pytest.raises(ValueError):
            register_compressor(Dup())

    def test_replace_flag_allows_override(self):
        original = get_compressor("stored")

        class Replacement(StoredCompressor):
            name = "stored"

        try:
            register_compressor(Replacement(), replace=True)
            assert isinstance(get_compressor("stored"), Replacement)
        finally:
            register_compressor(original, replace=True)

    def test_unnamed_codec_rejected(self):
        class NoName(Compressor):
            def compress(self, data):
                return data

            def decompress(self, blob):
                return blob

        with pytest.raises(ValueError):
            register_compressor(NoName())

    def test_compressed_size_helper(self):
        assert compressed_size("stored", b"12345") == 5


class TestStdCodecs:
    @pytest.mark.parametrize("name", ["gzip", "bzip2", "stored"])
    def test_roundtrip(self, name):
        codec = get_compressor(name)
        data = b"standard library codecs " * 40
        assert codec.decompress(codec.compress(data)) == data

    def test_zlib_level_validation(self):
        with pytest.raises(ValueError):
            ZlibCompressor(level=10)

    def test_bz2_level_validation(self):
        with pytest.raises(ValueError):
            Bz2Compressor(level=0)

    def test_stored_is_identity(self):
        data = b"\x00\x01\x02"
        codec = StoredCompressor()
        assert codec.compress(data) == data
        assert codec.ratio(data) == 1.0


class TestCrossCodecAgreement:
    """All codecs must agree that structure compresses and noise does not."""

    STRUCTURED = b"0001" * 800
    CODECS = ("gz-like", "bz-like", "ppm-like", "gzip", "bzip2")

    @pytest.mark.parametrize("name", CODECS)
    def test_structured_data_compresses(self, name):
        codec = get_compressor(name)
        assert codec.compressed_size(self.STRUCTURED) < len(self.STRUCTURED)

    @pytest.mark.parametrize("name", CODECS)
    def test_ratio_definition(self, name):
        codec = get_compressor(name)
        ratio = codec.ratio(self.STRUCTURED)
        assert ratio == codec.compressed_size(self.STRUCTURED) / len(self.STRUCTURED)
