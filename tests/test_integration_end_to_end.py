"""Integration scenarios crossing every layer of the system.

Each test tells one complete story: run real workflows on a persistent
store, survive restarts, answer the survey's provenance questions, and
exercise the §7 extensions against real (not synthetic) provenance.
"""

from __future__ import annotations

import pytest

from repro.app.experiment import Experiment, ExperimentConfig
from repro.core.client import ProvenanceQueryClient
from repro.core.query import build_trace, data_lineage, used_as_input
from repro.core.recorder import Journal, ProvenanceRecorder, RecordingMode
from repro.registry.client import RegistryClient
from repro.store.backends import KVLogBackend, MemoryBackend
from repro.store.curation import export_archive, import_archive
from repro.store.distributed import FederatedQueryClient, StoreRouter, consolidate
from repro.usecases.comparison import categorise_scripts, compare_sessions
from repro.usecases.semantic import validate_session


class TestPersistentProvenanceLifecycle:
    """Provenance must outlive the application — the store's core promise."""

    def test_run_close_reopen_query(self, small_db, tmp_path):
        store_path = tmp_path / "preserv.db"
        config = ExperimentConfig(
            sample_bytes=1200,
            n_permutations=2,
            record_scripts=True,
            store_backend="kvlog",
            store_path=store_path,
        )
        exp = Experiment(config, db=small_db)
        result = exp.run()
        session = result.session_id
        counts = exp.backend.counts()
        exp.close()

        # A completely new process: reopen the store and reason over it.
        reopened = KVLogBackend(store_path)
        assert reopened.counts() == counts
        trace = build_trace(reopened, session)
        assert trace.undocumented() == []
        lineage = data_lineage(trace, result.run.message_ids["average"])
        assert result.run.message_ids["collate"] in lineage
        reopened.close()

    def test_crashed_run_recovered_from_journal(self, small_db, tmp_path):
        """Async journal on disk + replay: no provenance lost to a crash."""
        journal_path = tmp_path / "journal.log"
        config = ExperimentConfig(
            sample_bytes=1200,
            n_permutations=2,
            record_scripts=True,
            journal_path=journal_path,
        )
        exp = Experiment(config, db=small_db)
        # Run the workflow but "crash" before the flush.
        interceptor_session = exp.new_session()
        from repro.core.instrument import ProvenanceInterceptor

        interceptor = ProvenanceInterceptor(
            recorder=exp.recorder,
            session_id=interceptor_session,
            script_provider=exp.script_for,
            record_scripts=True,
        )
        exp.bus.add_interceptor(interceptor)
        try:
            exp.workflow.run(
                session_id=interceptor_session,
                sample_bytes=config.sample_bytes,
                n_permutations=config.n_permutations,
            )
        finally:
            exp.bus.remove_interceptor(interceptor)
        pending = exp.recorder.pending
        assert pending > 0
        exp.recorder.journal.close()  # crash: nothing flushed

        # Recovery into a fresh store.
        recovered_store = MemoryBackend()
        from repro.soa.bus import MessageBus
        from repro.store.service import PReServActor

        bus = MessageBus()
        bus.register(PReServActor(recovered_store))
        recorder = ProvenanceRecorder(
            bus, mode=RecordingMode.ASYNCHRONOUS, journal=Journal.load(journal_path)
        )
        assert recorder.flush() == pending
        trace = build_trace(recovered_store, interceptor_session)
        assert trace.undocumented() == []


class TestSurveyQuestions:
    """The survey's [11] provenance questions against real runs."""

    def test_was_this_data_item_used_as_input(self, experiment_factory):
        exp = experiment_factory(n_permutations=1)
        result = exp.run()
        trace = build_trace(exp.backend, result.session_id)
        # The encoded sample's digest must appear as an input of the sample
        # measure chain's compression call.
        hits = used_as_input(trace, result.run.encoded_digest)
        sample_chain = [c for c in result.run.chains if c.label == "sample"][0]
        assert sample_chain.compress_id in hits

    def test_which_inputs_produced_this_output(self, experiment_factory):
        exp = experiment_factory(n_permutations=2)
        result = exp.run()
        trace = build_trace(exp.backend, result.session_id)
        lineage = data_lineage(trace, result.run.message_ids["average"])
        # Every measure chain feeds the final average.
        for chain in result.run.chains:
            assert chain.collate_id in lineage

    def test_same_process_question_two_experiments(self, experiment_factory):
        exp = experiment_factory(n_permutations=1, release=1)
        r1 = exp.run()
        r2 = exp.run()
        cat = categorise_scripts(ProvenanceQueryClient(exp.bus))
        assert compare_sessions(cat, r1.session_id, r2.session_id).same_process


class TestDistributedProvenanceWithRealRuns:
    def test_real_run_distributed_and_consolidated(self, experiment_factory):
        exp = experiment_factory(n_permutations=2)
        result = exp.run()
        # Re-route the recorded corpus across three stores.
        router = StoreRouter({f"s{i}": MemoryBackend() for i in range(3)})
        for assertion in exp.backend.all_assertions():
            router.put(assertion)
        fed = FederatedQueryClient(router)
        assert fed.counts().interaction_records == exp.backend.counts().interaction_records
        # Consolidate back and verify the trace is intact.
        merged = MemoryBackend()
        consolidate(router, merged)
        trace = build_trace(merged, result.session_id)
        assert trace.undocumented() == []
        assert data_lineage(trace, result.run.message_ids["average"])

    def test_archive_roundtrip_preserves_usecases(self, experiment_factory, tmp_path):
        """Curated provenance still answers UC1 and UC2 after restore."""
        exp = experiment_factory(n_permutations=1, release=1)
        r1 = exp.run()
        exp.encode.reconfigure("dayhoff6", version="2.0")
        r2 = exp.run()
        path = tmp_path / "archive.xml"
        export_archive(exp.backend, path)

        # Restore into a brand-new deployment's store.
        restored_exp = experiment_factory(n_permutations=1)
        import_archive(path, restored_exp.backend)
        cat = categorise_scripts(ProvenanceQueryClient(restored_exp.bus))
        comparison = compare_sessions(cat, r1.session_id, r2.session_id)
        assert comparison.changed_services() == ["encode-by-groups"]

        store = ProvenanceQueryClient(restored_exp.bus, client_endpoint="it-store")
        registry = RegistryClient(restored_exp.bus, client_endpoint="it-registry")
        report = validate_session(store, registry, r1.session_id)
        assert report.valid


class TestScaleSmoke:
    def test_larger_run_all_invariants(self, experiment_factory):
        """A bigger run: every invariant at once."""
        exp = experiment_factory(
            sample_bytes=3000, n_permutations=6, codecs=("gz-like", "gzip")
        )
        result = exp.run()
        counts = exp.backend.counts()
        # 2 + (1 + n) * 3 * codecs + n + 2 interactions.
        n, k = 6, 2
        assert counts.interaction_records == 2 + (1 + n) * 3 * k + n + 2
        trace = build_trace(exp.backend, result.session_id)
        assert trace.undocumented() == []
        for codec in ("gz-like", "gzip"):
            assert 0.0 < result.compressibility(codec) < 1.5
