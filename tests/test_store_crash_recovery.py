"""Crash-recovery and durability tests for the persistent backends.

Simulated crashes (kill before rename, partial trailing write, stray
debris) must never lose a committed segment and never prevent the store
from reopening; fsync discipline and the ``sync=False`` opt-outs are
asserted by counting the actual fsync calls.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.store.backends import FileSystemBackend, KVLogBackend, MemoryBackend
from repro.store.checkpoint import list_snapshots, snapshot_dir_for
from repro.store.interface import DuplicateAssertionError
from repro.store.kvlog import CorruptRecordError, KVLog
from repro.store.sharding import _SEQ, ShardedKVLog

from tests.test_store_backends import ga, ipa, key, spa


def fill(store, n=6):
    for i in range(n):
        store.put(ipa(i))
    store.put_many([spa(i) for i in range(n)] + [ga(0)])


def state(store):
    return (store.counts(), store.interaction_keys(), store.group_ids())


class TestFileSystemReplayRobustness:
    def test_stray_files_are_ignored(self, tmp_path):
        store = FileSystemBackend(tmp_path / "fs")
        fill(store)
        expected = state(store)
        store.close()
        # Debris a crash, an editor, or an operator can leave behind.
        (tmp_path / "fs" / "README.xml").write_text("<notes>not ours</notes>")
        (tmp_path / "fs" / "backup-00000001.xml").write_text("<old/>")
        (tmp_path / "fs" / "notes.txt").write_text("unrelated")
        reopened = FileSystemBackend(tmp_path / "fs")
        assert state(reopened) == expected
        reopened.close()

    def test_leftover_tmp_from_crash_before_rename_is_ignored(self, tmp_path):
        store = FileSystemBackend(tmp_path / "fs")
        fill(store)
        expected = state(store)
        next_name = f"{store._seq:08d}"
        store.close()
        # Crash before os.replace: the tmp file exists, the .xml does not.
        (tmp_path / "fs" / f"{next_name}.tmp").write_text("<segment count='3'><trunca")
        reopened = FileSystemBackend(tmp_path / "fs")
        assert state(reopened) == expected
        # The store keeps accepting writes at the interrupted sequence.
        reopened.put(ipa(90))
        reopened.close()
        final = FileSystemBackend(tmp_path / "fs")
        assert key(90) in final.interaction_keys()
        final.close()

    @pytest.mark.parametrize("tail", ["", "<segment count='2'><pa", "\x00\x00\x00"])
    def test_torn_trailing_file_is_tolerated(self, tmp_path, tail):
        store = FileSystemBackend(tmp_path / "fs")
        fill(store)
        expected = state(store)
        next_name = f"{store._seq:08d}.xml"
        store.close()
        # Crash mid-write after the rename was already visible (or a torn
        # page): the *trailing* segment is unparsable.
        (tmp_path / "fs" / next_name).write_text(tail)
        reopened = FileSystemBackend(tmp_path / "fs")
        assert state(reopened) == expected
        reopened.close()

    def test_mid_sequence_corruption_refuses_to_replay(self, tmp_path):
        store = FileSystemBackend(tmp_path / "fs")
        fill(store)
        store.close()
        segments = sorted((tmp_path / "fs").glob("*.xml"))
        assert len(segments) >= 2
        segments[0].write_text("<segment count='1'><torn")  # not the last one
        with pytest.raises(CorruptRecordError, match="mid-sequence"):
            FileSystemBackend(tmp_path / "fs")

    def test_committed_segments_survive_torn_tail(self, tmp_path):
        """The crash-recovery contract end to end: everything acknowledged
        before the crash replays; the torn tail never blocks reopening."""
        store = FileSystemBackend(tmp_path / "fs", segment_size=4)
        store.put_many([ipa(i) for i in range(8)])  # two committed segments
        store.put(ipa(50))
        expected = state(store)
        next_name = f"{store._seq:08d}.xml"
        store.close()
        (tmp_path / "fs" / next_name).write_text("<segment coun")  # torn write
        reopened = FileSystemBackend(tmp_path / "fs", segment_size=4)
        assert state(reopened) == expected
        reopened.close()


class TestFsyncDiscipline:
    @pytest.fixture
    def fsync_counter(self, monkeypatch):
        calls = []
        real = os.fsync

        def counting(fd):
            calls.append(fd)
            return real(fd)

        monkeypatch.setattr(os, "fsync", counting)
        return calls

    def test_filesystem_write_fsyncs_file_and_directory(
        self, tmp_path, fsync_counter
    ):
        store = FileSystemBackend(tmp_path / "fs")
        fsync_counter.clear()
        store.put(ipa(1))
        # One fsync for the segment file, one for the directory entry.
        assert len(fsync_counter) == 2
        store.close()

    def test_filesystem_sync_false_skips_fsync(self, tmp_path, fsync_counter):
        store = FileSystemBackend(tmp_path / "fs", sync=False)
        fsync_counter.clear()
        store.put(ipa(1))
        store.put_many([ipa(2), ipa(3)])
        assert fsync_counter == []
        store.close()
        reopened = FileSystemBackend(tmp_path / "fs", sync=False)
        assert reopened.counts().interaction_passertions == 3
        reopened.close()

    def test_kvlog_compact_fsyncs_replacement_and_directory(
        self, tmp_path, fsync_counter
    ):
        log = KVLog(tmp_path / "db")
        for i in range(10):
            log.put(b"hot", b"v%d" % i)
        fsync_counter.clear()
        log.compact()
        # The rewritten log file and its directory, before/after the rename.
        assert len(fsync_counter) == 2
        assert log.get(b"hot") == b"v9"
        log.close()

    def test_kvlog_creation_fsyncs_directory_entry(self, tmp_path, fsync_counter):
        fsync_counter.clear()
        log = KVLog(tmp_path / "fresh.db")
        assert len(fsync_counter) == 1  # the new file's directory entry
        fsync_counter.clear()
        log.close()
        reopened = KVLog(tmp_path / "fresh.db")  # existing file: no dir fsync
        assert fsync_counter == []
        reopened.close()

    def test_kvlog_compact_sync_false_skips_fsync(self, tmp_path, fsync_counter):
        log = KVLog(tmp_path / "db", sync=False)
        for i in range(10):
            log.put(b"hot", b"v%d" % i)
        fsync_counter.clear()
        log.compact()
        assert fsync_counter == []
        log.close()

    def test_compact_crash_before_rename_leaves_old_log(self, tmp_path, monkeypatch):
        log = KVLog(tmp_path / "db")
        for i in range(10):
            log.put(b"k%d" % i, b"v%d" % i)
        expected = dict(log.items())

        def crash(*args, **kwargs):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            log.compact()
        monkeypatch.undo()
        # No temp debris, and the *live* log keeps serving reads and writes
        # — a failed compaction must not leave the handle half-closed.
        assert list(tmp_path.glob("*.compact")) == []
        assert dict(log.items()) == expected
        log.put(b"after", b"crash")
        assert log.get(b"after") == b"crash"
        log.close()
        with KVLog(tmp_path / "db") as reopened:
            expected[b"after"] = b"crash"
            assert dict(reopened.items()) == expected

    def test_compact_dir_sync_failure_still_switches_to_new_file(
        self, tmp_path, monkeypatch
    ):
        import repro.store.kvlog as kvlog_mod

        log = KVLog(tmp_path / "db")
        for i in range(10):
            log.put(b"hot", b"v%d" % i)

        def failing_dir_sync(path):
            raise OSError("simulated EIO on directory sync")

        monkeypatch.setattr(kvlog_mod, "fsync_dir", failing_dir_sync)
        with pytest.raises(OSError, match="EIO"):
            log.compact()
        monkeypatch.undo()
        # The rename already happened, so the handle must now be on the
        # compacted file — writes after the failure must reach disk, not
        # the unlinked pre-compaction inode.
        log.put(b"after", b"failure")
        log.close()
        with KVLog(tmp_path / "db") as reopened:
            assert reopened.get(b"hot") == b"v9"
            assert reopened.get(b"after") == b"failure"

    def test_new_store_directory_chain_is_fsynced(self, tmp_path, fsync_counter):
        fsync_counter.clear()
        store = FileSystemBackend(tmp_path / "deep" / "nested" / "fs")
        # Two created directory levels + the fs root itself, each fsynced
        # into its parent (exact count depends on the chain length; what
        # matters is that creation is not fsync-free).
        assert len(fsync_counter) >= 3
        store.close()
        fsync_counter.clear()
        unsynced = FileSystemBackend(tmp_path / "other" / "fs", sync=False)
        assert fsync_counter == []
        unsynced.close()


class TestPutManyErrorChaining:
    class ExplodingPersist(MemoryBackend):
        def __init__(self):
            super().__init__()
            self.explode = False

        def _persist_many(self, assertions):
            if self.explode:
                raise RuntimeError("backend persist failed")

    def test_index_error_not_masked_by_persist_error(self):
        store = self.ExplodingPersist()
        store.put(ipa(1))
        store.explode = True
        # The duplicate stops the batch *and* the prefix persist fails: the
        # caller must still see the duplicate, with the persist failure
        # chained as its cause.
        with pytest.raises(DuplicateAssertionError) as excinfo:
            store.put_many([ipa(2), ipa(1), ipa(3)])
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert "persist failed" in str(excinfo.value.__cause__)

    def test_index_error_alone_still_propagates(self):
        store = self.ExplodingPersist()
        store.put(ipa(1))
        with pytest.raises(DuplicateAssertionError) as excinfo:
            store.put_many([ipa(2), ipa(1)])
        assert excinfo.value.__cause__ is None

    def test_persist_error_alone_still_propagates(self):
        store = self.ExplodingPersist()
        store.explode = True
        with pytest.raises(RuntimeError, match="persist failed"):
            store.put_many([ipa(1), ipa(2)])


# -- dead-byte accounting invariant ------------------------------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "put_many", "delete", "compact"]),
        st.lists(
            st.tuples(
                st.binary(min_size=1, max_size=5),
                st.binary(min_size=0, max_size=16),
            ),
            min_size=1,
            max_size=6,
        ),
    ),
    max_size=30,
)


@given(ops=_ops)
@settings(max_examples=40, deadline=None)
def test_property_dead_bytes_identical_after_reopen(tmp_path_factory, ops):
    """The in-process dead-byte counter equals the one a reopen recomputes,
    whatever mix of put/put_many/delete/compact produced the log."""
    path = tmp_path_factory.mktemp("deadbytes") / "db"
    with KVLog(path, sync=False) as log:
        for op, pairs in ops:
            if op == "put":
                log.put(*pairs[0])
            elif op == "put_many":
                log.put_many(pairs)
            elif op == "compact":
                log.compact()
            else:
                log.delete(pairs[0][0])
        live_counter = log.dead_bytes
        live_items = dict(log.items())
    with KVLog(path, sync=False) as reopened:
        assert reopened.dead_bytes == live_counter
        assert dict(reopened.items()) == live_items


@given(ops=_ops)
@settings(max_examples=25, deadline=None)
def test_property_sharded_dead_bytes_identical_after_reopen(
    tmp_path_factory, ops
):
    """The sharded layout upholds the same invariant, per shard and in sum,
    with compactions mixed into the op stream."""
    root = tmp_path_factory.mktemp("deadbytes-sharded") / "db"
    with ShardedKVLog(root, shards=3, sync=False) as log:
        for i, (op, pairs) in enumerate(ops):
            if op == "put":
                log.put(*pairs[0])
            elif op == "put_many":
                log.put_many(pairs)
            elif op == "compact":
                log.compact(shard=i % 3)
            else:
                log.delete(pairs[0][0])
        live_counter = log.shard_dead_bytes()
        live_items = dict(log.scan())
    with ShardedKVLog(root, shards=3, sync=False) as reopened:
        assert dict(reopened.scan()) == live_items
        assert reopened.shard_dead_bytes() == live_counter


class TestCheckpointCrashWindows:
    """Crash simulations for every window of the checkpoint protocol.

    The protocol is: write ``snapshot-*.psnap.tmp`` → fsync → rename →
    fsync dir → truncate the covered log prefix (per shard).  A crash in
    any window must reopen to the exact pre-crash committed state —
    never a lost record, never a duplicate, never a refused open.
    """

    @staticmethod
    def full_state(store):
        return (
            store.counts(),
            store.interaction_keys(),
            store.group_ids(),
            store.sequence_watermark(),
            store.scan_suffix(after=0, limit=10_000),
        )

    def test_crash_before_snapshot_rename_leaves_swept_debris(self, tmp_path):
        # Window: tmp snapshot written, crash before os.replace.  The
        # .psnap.tmp debris must be swept at open and never loaded.
        path = tmp_path / "kv.db"
        store = KVLogBackend(path, sync=False)
        fill(store)
        expected = self.full_state(store)
        store.close()
        ckpt_dir = snapshot_dir_for(path)
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        debris = ckpt_dir / "snapshot-0000000000000099.psnap.tmp"
        debris.write_bytes(b"PSNAP1\n\x00\x00\x00\x08torn hea")
        reopened = KVLogBackend(path, sync=False)
        assert self.full_state(reopened) == expected
        assert reopened.checkpoint_stats.recovery_mode == "full-replay"
        assert not debris.exists()
        reopened.close()

    @pytest.mark.parametrize("shards", [1, 4])
    def test_crash_after_snapshot_before_truncation(
        self, tmp_path, monkeypatch, shards
    ):
        # Window: the snapshot is durable (renamed) but the crash lands
        # before the covered prefix is truncated.  Reopen must use the
        # snapshot and replay the *whole* remaining log tail without
        # duplicating the records the snapshot already covers.
        path = tmp_path / "kv.db"
        store = KVLogBackend(path, sync=False, shards=shards, checkpoint_retain=1)
        fill(store)
        monkeypatch.setattr(KVLogBackend, "_truncate_below", lambda self, wm: 0)
        store.checkpoint()
        store.put(ipa(90))  # post-snapshot tail
        expected = self.full_state(store)
        store.close()
        reopened = KVLogBackend(path, sync=False, shards=shards)
        assert self.full_state(reopened) == expected
        assert reopened.checkpoint_stats.recovery_mode == "snapshot+tail"
        assert reopened.checkpoint_stats.tail_records == 1
        reopened.close()

    def test_crash_mid_truncation_across_shards(self, tmp_path, monkeypatch):
        # Window: truncation crashes after rewriting some shards but not
        # others.  Replay skips snapshot-covered records per shard, so a
        # half-truncated log reopens to the identical state.
        path = tmp_path / "kv.db"
        store = KVLogBackend(path, sync=False, shards=4, checkpoint_retain=1)
        fill(store)
        monkeypatch.setattr(KVLogBackend, "_truncate_below", lambda self, wm: 0)
        store.checkpoint()
        watermark = store.sequence_watermark()
        store.put(ipa(90))
        expected = self.full_state(store)
        # Simulate the partial pass: only shards 0 and 2 got truncated.
        def keep(key, value):
            return _SEQ.unpack_from(value)[0] > watermark

        for i in (0, 2):
            store._log._shards[i].truncate_prefix(keep)
        store.close()
        reopened = KVLogBackend(path, sync=False, shards=4)
        assert self.full_state(reopened) == expected
        assert reopened.checkpoint_stats.recovery_mode == "snapshot+tail"
        reopened.close()

    def test_torn_snapshot_falls_back_to_full_replay(self, tmp_path):
        # Window: a torn page corrupts the only (renamed) snapshot.  The
        # fallback ladder must reject it and replay the full log — which
        # is intact, because truncation is retention-gated and a corrupt
        # rung never counts toward the retention set.
        path = tmp_path / "kv.db"
        store = KVLogBackend(path, sync=False)  # default retain=2
        fill(store)
        store.checkpoint()
        expected = self.full_state(store)
        store.close()
        (snapshot,) = list_snapshots(snapshot_dir_for(path))
        data = snapshot.read_bytes()
        snapshot.write_bytes(data[: len(data) // 2])
        reopened = KVLogBackend(path, sync=False)
        assert self.full_state(reopened) == expected
        assert reopened.checkpoint_stats.recovery_mode == "full-replay"
        reopened.close()

    def test_filesystem_backend_snapshot_crash_windows(self, tmp_path):
        # The directory-layout backend shares the mixin: debris sweep and
        # corrupt-snapshot fallback hold there too.
        root = tmp_path / "fs"
        store = FileSystemBackend(root, sync=False)
        fill(store)
        store.checkpoint()
        expected = self.full_state(store)
        store.close()
        ckpt_dir = snapshot_dir_for(root)
        (ckpt_dir / "snapshot-0000000000000042.psnap.tmp").write_bytes(b"junk")
        (snapshot,) = list_snapshots(ckpt_dir)
        snapshot.write_bytes(snapshot.read_bytes()[:16])
        reopened = FileSystemBackend(root, sync=False)
        assert self.full_state(reopened) == expected
        assert reopened.checkpoint_stats.recovery_mode == "full-replay"
        assert not list(ckpt_dir.glob("*.psnap.tmp"))
        reopened.close()


def test_kvlog_backend_survives_torn_batch_after_fsync_fixes(tmp_path):
    """Regression guard: the KVLog backend's own crash story still holds
    with the compaction fsyncs in place."""
    path = tmp_path / "kv.db"
    store = KVLogBackend(path)
    store.put_many([ipa(1), ipa(2), ipa(3)])
    store.compact()
    store.close()
    data = path.read_bytes()
    path.write_bytes(data[:-9])  # tear the last record
    reopened = KVLogBackend(path)
    assert reopened.counts().interaction_passertions == 2
    reopened.put(ipa(3))
    reopened.close()
    final = KVLogBackend(path)
    assert final.counts().interaction_passertions == 3
    final.close()
