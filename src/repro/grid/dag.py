"""Workflow DAG model.

Activities are named nodes with parameters and a ``script`` reference (the
paper categorises provenance by the script a service ran); edges are data
dependencies.  The DAG validates acyclicity and provides the orderings the
schedulers need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import networkx as nx


class CycleError(ValueError):
    """The workflow graph contains a dependency cycle."""


@dataclass(frozen=True)
class Activity:
    """One workflow activity."""

    name: str
    script: str = ""
    params: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("activity name must be non-empty")

    @property
    def param_dict(self) -> Dict[str, str]:
        return dict(self.params)

    def with_params(self, **params: str) -> "Activity":
        merged = dict(self.params)
        merged.update(params)
        return Activity(
            name=self.name, script=self.script, params=tuple(sorted(merged.items()))
        )


class WorkflowDag:
    """A named DAG of activities."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("workflow name must be non-empty")
        self.name = name
        self._graph = nx.DiGraph()
        self._activities: Dict[str, Activity] = {}

    # -- construction --------------------------------------------------------
    def add_activity(
        self, activity: Activity, after: Iterable[str] = ()
    ) -> Activity:
        if activity.name in self._activities:
            raise ValueError(f"duplicate activity {activity.name!r}")
        self._activities[activity.name] = activity
        self._graph.add_node(activity.name)
        for dep in after:
            self.add_dependency(dep, activity.name)
        return activity

    def add_dependency(self, upstream: str, downstream: str) -> None:
        for node in (upstream, downstream):
            if node not in self._activities:
                raise KeyError(f"unknown activity {node!r}")
        self._graph.add_edge(upstream, downstream)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(upstream, downstream)
            raise CycleError(
                f"dependency {upstream!r} -> {downstream!r} creates a cycle"
            )

    # -- inspection --------------------------------------------------------
    def activity(self, name: str) -> Activity:
        try:
            return self._activities[name]
        except KeyError:
            raise KeyError(f"unknown activity {name!r}") from None

    def activities(self) -> List[Activity]:
        return [self._activities[n] for n in sorted(self._activities)]

    def names(self) -> List[str]:
        return sorted(self._activities)

    def dependencies_of(self, name: str) -> List[str]:
        self.activity(name)
        return sorted(self._graph.predecessors(name))

    def dependents_of(self, name: str) -> List[str]:
        self.activity(name)
        return sorted(self._graph.successors(name))

    def sources(self) -> List[str]:
        return sorted(n for n in self._graph.nodes if self._graph.in_degree(n) == 0)

    def sinks(self) -> List[str]:
        return sorted(n for n in self._graph.nodes if self._graph.out_degree(n) == 0)

    def topological_order(self) -> List[str]:
        return list(nx.lexicographical_topological_sort(self._graph))

    def levels(self) -> List[List[str]]:
        """Antichains of activities runnable together (generation order)."""
        return [sorted(gen) for gen in nx.topological_generations(self._graph)]

    def __len__(self) -> int:
        return len(self._activities)

    def __contains__(self, name: str) -> bool:
        return name in self._activities

    def subgraph_closure(self, targets: Iterable[str]) -> "WorkflowDag":
        """The sub-DAG needed to produce ``targets`` (ancestors closure)."""
        wanted = set()
        for target in targets:
            self.activity(target)
            wanted.add(target)
            wanted |= nx.ancestors(self._graph, target)
        sub = WorkflowDag(name=f"{self.name}:closure")
        for name in sorted(wanted):
            sub.add_activity(self._activities[name])
        for upstream, downstream in self._graph.edges:
            if upstream in wanted and downstream in wanted:
                sub.add_dependency(upstream, downstream)
        return sub
