"""SOAP-style message envelopes.

Every message on the bus is an :class:`Envelope`: a header block (routing
and provenance metadata as flat key/value pairs) and an XML body.  PReServ's
"SOAP Message Translator" strips the envelope and dispatches the body to a
plug-in, exactly as in the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.soa.xmldoc import XmlElement, parse_xml


class Fault(Exception):
    """A service-side failure transported back to the caller.

    ``detail`` is an optional flat string map of diagnostic context —
    which worker failed, at what address, after how many attempts — so an
    operator reading the fault can tell *which* member of a fleet broke,
    not just that one did.  It round-trips through the wire form and is
    never part of fault identity (handlers dispatch on ``code`` alone).
    """

    def __init__(
        self, code: str, reason: str, detail: Optional[Dict[str, str]] = None
    ):
        super().__init__(f"{code}: {reason}")
        self.code = code
        self.reason = reason
        self.detail: Dict[str, str] = dict(detail or {})

    def to_xml(self) -> XmlElement:
        el = XmlElement("fault")
        el.element("code", self.code)
        el.element("reason", self.reason)
        if self.detail:
            detail_el = el.element("detail")
            for key in sorted(self.detail):
                detail_el.element("entry", self.detail[key], key=key)
        return el

    @classmethod
    def from_xml(cls, el: XmlElement) -> "Fault":
        detail: Dict[str, str] = {}
        detail_el = el.find("detail")
        if detail_el is not None:
            for entry in detail_el.find_all("entry"):
                detail[entry.attrs["key"]] = entry.text
        return cls(
            code=el.require("code").text,
            reason=el.require("reason").text,
            detail=detail or None,
        )


@dataclass
class Envelope:
    """A message: headers + body.

    Headers carry transport-level metadata (source, target, operation,
    message id); the body is the application payload.
    """

    headers: Dict[str, str] = field(default_factory=dict)
    body: Optional[XmlElement] = None

    REQUIRED_HEADERS = ("source", "target", "operation", "message-id")

    def validate(self) -> None:
        missing = [h for h in self.REQUIRED_HEADERS if h not in self.headers]
        if missing:
            raise ValueError(f"envelope missing headers: {missing}")
        if self.body is None:
            raise ValueError("envelope has no body")

    @property
    def source(self) -> str:
        return self.headers["source"]

    @property
    def target(self) -> str:
        return self.headers["target"]

    @property
    def operation(self) -> str:
        return self.headers["operation"]

    @property
    def message_id(self) -> str:
        return self.headers["message-id"]

    def to_xml(self) -> XmlElement:
        root = XmlElement("envelope")
        header_el = root.element("header")
        for key in sorted(self.headers):
            header_el.element("entry", self.headers[key], key=key)
        body_el = root.element("body")
        if self.body is not None:
            body_el.add(self.body)
        return root

    @classmethod
    def from_xml(cls, el: XmlElement) -> "Envelope":
        if el.name != "envelope":
            raise ValueError(f"expected <envelope>, got <{el.name}>")
        headers: Dict[str, str] = {}
        for entry in el.require("header").find_all("entry"):
            headers[entry.attrs["key"]] = entry.text
        body_el = el.require("body")
        inner = next(body_el.iter_elements(), None)
        return cls(headers=headers, body=inner)

    def serialize(self) -> str:
        return self.to_xml().serialize()

    @classmethod
    def deserialize(cls, text: str) -> "Envelope":
        return cls.from_xml(parse_xml(text))

    def byte_size(self) -> int:
        """Serialized size, used by the latency model for bandwidth costs."""
        return len(self.serialize().encode("utf-8"))
