"""Tests for the from-scratch XML document model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.soa.xmldoc import XmlElement, parse_xml, xml_escape


class TestBuild:
    def test_invalid_element_name_rejected(self):
        with pytest.raises(ValueError):
            XmlElement("1bad")
        with pytest.raises(ValueError):
            XmlElement("")
        with pytest.raises(ValueError):
            XmlElement("has space")

    def test_invalid_attr_name_rejected(self):
        with pytest.raises(ValueError):
            XmlElement("ok", attrs={"bad attr": "v"})

    def test_element_helper_with_name_attribute(self):
        el = XmlElement("root")
        child = el.element("param", "value", name="key")
        assert child.attrs == {"name": "key"}
        assert child.text == "value"

    def test_add_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            XmlElement("root").add(42)

    def test_navigation(self):
        root = XmlElement("root")
        root.element("a", "1")
        root.element("b", "2")
        root.element("a", "3")
        assert root.find("a").text == "1"
        assert [e.text for e in root.find_all("a")] == ["1", "3"]
        assert root.find("missing") is None
        with pytest.raises(KeyError):
            root.require("missing")

    def test_path(self):
        root = XmlElement("root")
        root.element("a").element("b", "deep")
        assert root.path("a", "b").text == "deep"
        assert root.path("a", "zz") is None


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert XmlElement("empty").serialize() == "<empty/>"

    def test_attributes_sorted_and_escaped(self):
        el = XmlElement("e", attrs={"b": 'say "hi"', "a": "1 < 2"})
        assert el.serialize() == '<e a="1 &lt; 2" b="say &quot;hi&quot;"/>'

    def test_text_escaped(self):
        el = XmlElement("e")
        el.add("a & b < c")
        assert el.serialize() == "<e>a &amp; b &lt; c</e>"

    def test_escape_helper(self):
        assert xml_escape("<&>'\"") == "&lt;&amp;&gt;&apos;&quot;"

    def test_byte_size_counts_utf8(self):
        el = XmlElement("e")
        el.add("héllo")
        assert el.byte_size() == len(el.serialize().encode("utf-8"))


class TestParse:
    def test_simple_document(self):
        el = parse_xml('<root a="1"><child>text</child></root>')
        assert el.name == "root"
        assert el.attrs == {"a": "1"}
        assert el.find("child").text == "text"

    def test_xml_declaration_skipped(self):
        el = parse_xml('<?xml version="1.0"?><root/>')
        assert el.name == "root"

    def test_comments_skipped(self):
        el = parse_xml("<!-- top --><root><!-- inner --><a/></root>")
        assert el.find("a") is not None

    def test_entities_decoded(self):
        el = parse_xml("<e>a &amp; b &lt; &#65; &#x42;</e>")
        assert el.text == "a & b < A B"

    def test_mismatched_tags_rejected(self):
        with pytest.raises(ValueError, match="mismatched"):
            parse_xml("<a><b></a></b>")

    def test_unterminated_element_rejected(self):
        with pytest.raises(ValueError, match="unterminated"):
            parse_xml("<a><b>")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_xml('<a x="1" x="2"/>')

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(ValueError, match="quoted"):
            parse_xml("<a x=1/>")

    def test_content_after_root_rejected(self):
        with pytest.raises(ValueError, match="after document element"):
            parse_xml("<a/><b/>")

    def test_unknown_entity_rejected(self):
        with pytest.raises(ValueError, match="unknown entity"):
            parse_xml("<a>&nope;</a>")

    def test_error_reports_line_number(self):
        with pytest.raises(ValueError, match="line 3"):
            parse_xml("<a>\n<b>\n<c></b>\n</a>")


# -- property-based round trips ------------------------------------------

_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.-]{0,8}", fullmatch=True)
_texts = st.text(
    alphabet=st.characters(
        min_codepoint=32, max_codepoint=0x2FF, blacklist_characters="\x7f"
    ),
    min_size=1,
    max_size=30,
).filter(lambda s: s.strip())


def _elements(depth: int) -> st.SearchStrategy:
    attrs = st.dictionaries(_names, _texts | st.just(""), max_size=3)
    if depth == 0:
        children = st.lists(_texts, max_size=2)
    else:
        children = st.lists(_texts | _elements(depth - 1), max_size=3)

    return st.builds(
        lambda name, attrs, kids: _mk(name, attrs, kids), _names, attrs, children
    )


def _mk(name, attrs, kids):
    el = XmlElement(name, attrs=dict(attrs))
    for kid in kids:
        el.add(kid)
    return el


def _normalize(el: XmlElement) -> XmlElement:
    """Merge adjacent text children (XML cannot distinguish them)."""
    out = XmlElement(el.name, attrs=dict(el.attrs))
    pending = ""
    for child in el.children:
        if isinstance(child, str):
            pending += child
        else:
            if pending:
                out.add(pending)
                pending = ""
            out.add(_normalize(child))
    if pending:
        out.add(pending)
    return out


class TestRoundtripProperties:
    @given(_elements(depth=2))
    def test_serialize_parse_roundtrip(self, el):
        assert parse_xml(el.serialize()) == _normalize(el)

    @given(_texts)
    def test_text_content_roundtrip(self, text):
        el = XmlElement("t")
        el.add(text)
        assert parse_xml(el.serialize()).text == text

    @given(st.dictionaries(_names, _texts, max_size=5))
    def test_attribute_roundtrip(self, attrs):
        el = XmlElement("t", attrs=attrs)
        assert parse_xml(el.serialize()).attrs == attrs
