"""Tests for bit-level I/O and varints."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.compress.bitio import (
    BitReader,
    BitWriter,
    pack_varints,
    read_varint,
    unpack_varints,
    write_varint,
)


class TestBitWriter:
    def test_msb_first_order(self):
        w = BitWriter()
        for bit in (1, 0, 1, 0, 0, 0, 0, 0):
            w.write_bit(bit)
        assert w.getvalue() == bytes([0b10100000])

    def test_partial_byte_zero_padded(self):
        w = BitWriter()
        w.write_bit(1)
        assert w.getvalue() == bytes([0b10000000])

    def test_write_bits_width(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bits(0b01, 2)
        assert w.getvalue() == bytes([0b10101000])

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(8, 3)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(0, -1)

    def test_bit_length_tracks_written_bits(self):
        w = BitWriter()
        w.write_bits(0, 11)
        assert w.bit_length == 11

    def test_unary(self):
        w = BitWriter()
        w.write_unary(3)
        r = BitReader(w.getvalue())
        assert r.read_unary() == 3


class TestBitReader:
    def test_roundtrip_bits(self):
        w = BitWriter()
        w.write_bits(0x2BAD, 16)
        r = BitReader(w.getvalue())
        assert r.read_bits(16) == 0x2BAD

    def test_read_past_end_raises(self):
        r = BitReader(b"\xff")
        r.read_bits(8)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_read_bit_padded_returns_zero_past_end(self):
        r = BitReader(b"")
        assert [r.read_bit_padded() for _ in range(5)] == [0] * 5

    def test_start_byte_offset(self):
        r = BitReader(b"\x00\xff", start_byte=1)
        assert r.read_bits(8) == 0xFF

    @given(st.lists(st.integers(0, 1), min_size=0, max_size=200))
    def test_roundtrip_arbitrary_bitstrings(self, bits):
        w = BitWriter()
        for b in bits:
            w.write_bit(b)
        r = BitReader(w.getvalue())
        assert [r.read_bit() for _ in range(len(bits))] == bits


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**63 - 1])
    def test_roundtrip(self, value):
        encoded = write_varint(value)
        decoded, offset = read_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            write_varint(-1)

    def test_truncated_raises(self):
        encoded = write_varint(300)
        with pytest.raises(EOFError):
            read_varint(encoded[:-1])

    def test_single_byte_for_small_values(self):
        assert len(write_varint(127)) == 1
        assert len(write_varint(128)) == 2

    @given(st.lists(st.integers(0, 2**40), min_size=0, max_size=30))
    def test_pack_unpack_lists(self, values):
        blob = pack_varints(values)
        decoded, offset = unpack_varints(blob, len(values))
        assert decoded == values
        assert offset == len(blob)
