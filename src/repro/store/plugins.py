"""PReServ plug-ins: message handlers behind the SOAP translator.

"Based on the port that the message was sent to, the SOAP Message Translator
strips off the HTTP and SOAP Headers and passes the contents of the SOAP
body to an appropriate PlugIn, which must conform to the schemas distributed
with PReServ." (Section 5, Figure 3)

* :class:`StorePlugIn` handles ``prep-record`` (and batch) submissions,
* :class:`QueryPlugIn` handles ``prep-query`` retrieval requests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Tuple

from repro.core.passertion import InteractionKey, ViewKind
from repro.core.prep import PrepAck, PrepQuery, PrepRecord, PrepResult
from repro.soa.envelope import Fault
from repro.soa.xmldoc import XmlElement
from repro.store.interface import DuplicateAssertionError, ProvenanceStoreInterface


class PlugIn(ABC):
    """A handler for one family of body documents."""

    #: element names this plug-in accepts.
    handles: Tuple[str, ...] = ()

    @abstractmethod
    def handle(
        self, body: XmlElement, backend: ProvenanceStoreInterface
    ) -> XmlElement:
        """Process ``body`` against ``backend`` and return the response body."""


class StorePlugIn(PlugIn):
    """Records p-assertions (singly or batched) into the backend."""

    handles = ("prep-record", "prep-record-batch")

    def handle(
        self, body: XmlElement, backend: ProvenanceStoreInterface
    ) -> XmlElement:
        if body.name == "prep-record":
            records = [PrepRecord.from_xml(body)]
        else:
            records = [PrepRecord.from_xml(el) for el in body.find_all("prep-record")]
        try:
            # Bulk ingest: the whole submission becomes one backend group
            # commit (put_many persists singles via the same path).
            stored = backend.put_many([record.assertion for record in records])
        except DuplicateAssertionError as exc:
            raise Fault("duplicate-assertion", str(exc)) from exc
        return PrepAck(status="ok", count=stored).to_xml()


class QueryPlugIn(PlugIn):
    """Serves PReP queries from the backend's Provenance Store Interface."""

    handles = ("prep-query",)

    def handle(
        self, body: XmlElement, backend: ProvenanceStoreInterface
    ) -> XmlElement:
        query = PrepQuery.from_xml(body)
        handler = getattr(self, f"_q_{query.query_type.replace('-', '_')}", None)
        if handler is None:
            raise Fault("unknown-query", f"no such query type {query.query_type!r}")
        try:
            items = handler(query, backend)
        except KeyError as exc:
            raise Fault("bad-query", f"missing parameter: {exc}") from exc
        return PrepResult(items=items).to_xml()

    # -- individual query types ----------------------------------------------
    @staticmethod
    def _key_from_params(query: PrepQuery) -> InteractionKey:
        return InteractionKey(
            interaction_id=query.params["id"],
            sender=query.params["sender"],
            receiver=query.params["receiver"],
        )

    @staticmethod
    def _view_from_params(query: PrepQuery) -> ViewKind | None:
        view = query.params.get("view")
        return ViewKind(view) if view else None

    def _q_interaction(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        key = self._key_from_params(query)
        found = backend.interaction_passertions(key, self._view_from_params(query))
        return [p.to_xml() for p in found]

    def _q_interactions(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        return [key.to_xml() for key in backend.interaction_keys()]

    def _q_record(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        """The full interaction record: every p-assertion about one key."""
        key = self._key_from_params(query)
        items = [p.to_xml() for p in backend.interaction_passertions(key)]
        items.extend(p.to_xml() for p in backend.actor_state_passertions(key))
        return items

    def _q_actor_state(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        key = self._key_from_params(query)
        found = backend.actor_state_passertions(
            key,
            view=self._view_from_params(query),
            state_type=query.params.get("state-type"),
        )
        return [p.to_xml() for p in found]

    def _q_by_group(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        members = backend.group_members(query.params["group"])
        return [m.to_xml() for m in members]

    def _q_groups(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        kind = query.params.get("kind")
        out = []
        for gid in backend.group_ids(kind):
            out.append(
                XmlElement(
                    "group",
                    attrs={"id": gid, "kind": backend.group_kind(gid) or ""},
                )
            )
        return out

    def _q_groups_of(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        key = self._key_from_params(query)
        return [
            XmlElement("group", attrs={"id": gid, "kind": backend.group_kind(gid) or ""})
            for gid in backend.groups_of(key)
        ]

    def _q_count(
        self, query: PrepQuery, backend: ProvenanceStoreInterface
    ) -> List[XmlElement]:
        counts = backend.counts()
        el = XmlElement(
            "store-counts",
            attrs={
                "interaction-passertions": str(counts.interaction_passertions),
                "actor-state-passertions": str(counts.actor_state_passertions),
                "group-assertions": str(counts.group_assertions),
                "interaction-records": str(counts.interaction_records),
            },
        )
        return [el]
