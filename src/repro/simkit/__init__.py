"""Discrete-event simulation kernel used to model Grid execution.

The paper's evaluation ran on a physical testbed (Windows XP PCs, VMWare,
100 Mb ethernet).  This package provides the virtual substrate we substitute
for that testbed: a deterministic discrete-event simulator with

* :class:`~repro.simkit.kernel.Simulator` — the event loop / virtual clock,
* generator-based :class:`~repro.simkit.kernel.Process` coroutines,
* :class:`~repro.simkit.resources.Resource` slot pools (CPU slots, Condor
  worker slots),
* :class:`~repro.simkit.hosts.Host` / :class:`~repro.simkit.hosts.Network`
  latency+bandwidth models,
* seeded randomness helpers in :mod:`repro.simkit.rng`.

All simulated timings in the figure harnesses flow through this kernel so
that figure regeneration is exactly reproducible.
"""

from repro.simkit.kernel import (
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.simkit.resources import Resource, Store
from repro.simkit.hosts import Host, Link, Network
from repro.simkit.rng import RngRegistry, derive_seed

__all__ = [
    "Event",
    "Host",
    "Interrupt",
    "Link",
    "Network",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "derive_seed",
]
