"""A7 — query-path caching: repeated-query throughput, cached vs uncached.

The query port's hot traffic is repetition: navigators re-issue the same
``prep-query`` documents against a store that changes rarely between reads.
This bench populates a 2000-interaction-record store and replays a hot
query mix (full listing, counts, session membership, interaction records)
through two ``QueryPlugIn`` instances — one with the generation-validated
:class:`~repro.store.querycache.QueryCache`, one without — and through the
Figure-4b concurrent-client sweep.

Shape criteria:

* cached repeated-query throughput is at least 2x the uncached path at
  2000 interaction records (measured well above that: the cached path
  skips parse, dispatch, index walk and result building);
* cached and uncached responses stay byte-identical over the mix;
* the Figure-5 query-scaling criteria still hold with the cache in the
  read path: both use-case curves linear with r > 0.99.
"""

from __future__ import annotations

import time

import pytest

from repro.figures.fig4b import fig4b_table, hot_query_bodies, run_fig4b
from repro.figures.fig5 import run_fig5
from repro.figures.stats import format_table
from repro.figures.synthstore import populate_store
from repro.store.backends import MemoryBackend
from repro.store.plugins import QueryPlugIn

#: the acceptance bar's store size.
STORE_RECORDS = 2000
#: hot-mix repetitions per timing pass.
REPEATS = 30


@pytest.fixture(scope="module")
def store():
    backend = MemoryBackend()
    spec = populate_store(
        backend, STORE_RECORDS, script_for=lambda service: None, session_size=50
    )
    assert spec.interaction_records == STORE_RECORDS
    return backend, spec


def hot_mix(backend, spec):
    """The shared Figure-4b working set (frozen, as a re-sending client)."""
    return hot_query_bodies(spec.sessions, backend.interaction_keys(), per_kind=4)


def replay(plugin, backend, bodies, repeats=REPEATS):
    start = time.perf_counter()
    for _ in range(repeats):
        for body in bodies:
            plugin.handle(body, backend)
    return time.perf_counter() - start


def test_bench_repeated_query_cache_speedup(benchmark, store, report):
    backend, spec = store
    bodies = hot_mix(backend, spec)
    cached = QueryPlugIn()
    uncached = QueryPlugIn(enable_cache=False)

    # Byte-identical responses before any timing claims.
    for body in bodies:
        assert (
            cached.handle(body, backend).serialize()
            == uncached.handle(body, backend).serialize()
        )

    uncached_s = replay(uncached, backend, bodies)
    cached_s = replay(cached, backend, bodies)
    benchmark.pedantic(
        lambda: replay(cached, backend, bodies, repeats=5), rounds=3, iterations=1
    )

    n_queries = REPEATS * len(bodies)
    speedup = uncached_s / cached_s
    stats = cached.cache.stats
    report(
        "A7: query cache — repeated-query throughput at 2000 records",
        format_table(
            ["path", "queries/s", "total (s)"],
            [
                ["uncached", f"{n_queries / uncached_s:.0f}", f"{uncached_s:.3f}"],
                ["cached", f"{n_queries / cached_s:.0f}", f"{cached_s:.3f}"],
            ],
        )
        + f"\nspeedup: {speedup:.1f}x   "
        f"result hits: {stats.result_hits}   plan hits: {stats.plan_hits}",
    )
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["uncached_qps"] = round(n_queries / uncached_s)
    benchmark.extra_info["cached_qps"] = round(n_queries / cached_s)

    # Acceptance bar: >= 2x at 2000 interaction records.
    assert speedup >= 2.0, f"cached speedup {speedup:.2f}x < 2x"
    assert stats.result_hits >= n_queries - len(bodies)


def test_bench_fig5_criteria_hold_with_cache(benchmark, report):
    """Figure-5 slope criteria survive the query-path overhaul."""
    series = benchmark.pedantic(
        lambda: run_fig5(sizes=(250, 500, 1000, 1500, 2000)),
        rounds=1,
        iterations=1,
    )
    script_fit = series.script_fit()
    semantic_fit = series.semantic_fit()
    benchmark.extra_info["script_r"] = round(script_fit.correlation, 5)
    benchmark.extra_info["semantic_r"] = round(semantic_fit.correlation, 5)
    assert script_fit.is_linear and script_fit.correlation > 0.99
    assert semantic_fit.is_linear and semantic_fit.correlation > 0.99


def test_bench_fig4b_concurrent_clients(benchmark, report):
    """The Figure-4b sweep: ops/sec vs N clients, single store and router."""
    sweep = benchmark.pedantic(
        lambda: run_fig4b(
            client_counts=(1, 2, 4, 8, 16), store_counts=(1, 4), ops_per_client=30
        ),
        rounds=1,
        iterations=1,
    )
    report("E2b: Figure 4b — concurrent-client throughput", fig4b_table(sweep))
    for n_stores, points in sweep.items():
        assert all(p.ops == p.records + p.queries for p in points)
        # more clients never reduce total completed work
        assert [p.ops for p in points] == sorted(p.ops for p in points)
    single = {p.clients: p for p in sweep[1]}
    routed = {p.clients: p for p in sweep[4]}
    # at high concurrency the 4-member router out-serves the single store
    assert routed[16].ops_per_second > single[16].ops_per_second
