#!/usr/bin/env python
"""Use case 1 walkthrough: why did two runs of the same experiment differ?

The paper's §3 scenario: a bioinformatician downloads the same sequence
data twice (the database release is pinned, so the bytes are identical),
runs the compressibility experiment both times — and gets different
results.  Provenance answers *why*: between the runs, the Encode-by-Groups
service was reconfigured from the hp2 grouping to dayhoff6, and the scripts
recorded as actor-state p-assertions prove it.

Run:  python examples/execution_comparison.py
"""

from __future__ import annotations

from repro.app import Experiment, ExperimentConfig
from repro.core.client import ProvenanceQueryClient
from repro.usecases.comparison import categorise_scripts, compare_sessions


def main() -> None:
    config = ExperimentConfig(
        sample_bytes=3000,
        n_permutations=4,
        grouping="hp2",
        record_scripts=True,   # scripts must be recorded for UC1
        release=1,             # pin the database release: same data both runs
    )
    experiment = Experiment(config)

    print("run 1: compressibility experiment with encode grouping 'hp2'")
    run1 = experiment.run()
    value1 = run1.compressibility("gz-like")
    print(f"  result: {value1:.4f}   (session {run1.session_id})")

    # Someone upgrades the encoding service between the runs...
    experiment.encode.reconfigure("dayhoff6", version="2.0")

    print("run 2: same data (release pinned), same workflow, re-run")
    run2 = experiment.run()
    value2 = run2.compressibility("gz-like")
    print(f"  result: {value2:.4f}   (session {run2.session_id})")

    print(f"\nB compares the two experiment results and notices a difference:")
    print(f"  {value1:.4f} vs {value2:.4f}")

    print("\nB queries the provenance store to find out why...")
    categorisation = categorise_scripts(ProvenanceQueryClient(experiment.bus))
    print(f"  scanned {categorisation.interactions_scanned} interaction records "
          f"({categorisation.store_calls} store invocations)")
    comparison = compare_sessions(
        categorisation, run1.session_id, run2.session_id
    )

    if comparison.same_process:
        print("  verdict: both runs used the same scientific process.")
    else:
        print("  verdict: the runs did NOT use the same process.")
        for service in comparison.changed_services():
            fps_a, fps_b = comparison.changed[service]
            print(f"  changed service: {service}")
            for fp in sorted(fps_a):
                print(f"    run 1 script [{fp}]:")
                for line in categorisation.categories[fp].content.splitlines():
                    print(f"      | {line}")
            for fp in sorted(fps_b):
                print(f"    run 2 script [{fp}]:")
                for line in categorisation.categories[fp].content.splitlines():
                    print(f"      | {line}")
        print(f"  unchanged services: {', '.join(comparison.unchanged)}")

    assert comparison.changed_services() == ["encode-by-groups"]
    print("\nProvenance pinpointed the reconfigured algorithm. QED.")


if __name__ == "__main__":
    main()
